"""X10 (extension): the cost of the observability layer.

The acceptance bar for the tracing work was "near-zero cost when
disabled": with the default :class:`NullTracer` installed, the
instrumented hot path must stay within a few percent of what an
uninstrumented build would do.  Post-change we cannot time the
pre-change binary, so the benchmark brackets the question from two
sides:

* **macro** -- wall-clock for a batch of plan+execute cycles under the
  NullTracer vs. under a recording :class:`Tracer`.  The Null column is
  today's default cost; the delta to the recording column is the *full*
  price of tracing, an upper bound on what the null path could possibly
  be hiding.
* **micro** -- the per-call price of one disabled ``tracer.span(...)``
  block and one disabled ``trace_event`` vs. an empty context manager,
  in nanoseconds.  At ~10 source calls per query even a microsecond
  per span is orders of magnitude below the bar.

The headline assertions: the recording tracer's *total* overhead on
the macro workload stays under 25%, and the disabled span/event
primitives cost < 5 us per call -- far below 5% of any source call.
"""

from __future__ import annotations

import time
import timeit
from contextlib import nullcontext

from benchmarks.conftest import QUICK
from repro.experiments.report import Table
from repro.mediator import Mediator
from repro.perf.schema import Bar, Tolerance
from repro.observability import (
    MetricsRegistry,
    Tracer,
    get_tracer,
    use_metrics,
    use_tracer,
)
from repro.observability.trace import trace_event
from repro.source.library import standard_catalog

_QUERIES = [
    "SELECT title FROM bookstore WHERE author = 'Carl Jung' "
    "or author = 'Sigmund Freud'",
    "SELECT model FROM car_guide WHERE make = 'BMW' and price < 40000",
    "SELECT owner FROM bank WHERE account_no = 42",
    "SELECT title FROM bookstore WHERE subject = 'philosophy' "
    "and title contains 'dream'",
]

_ROUNDS = 30 if QUICK else 200
_MICRO_CALLS = 200_000 if QUICK else 1_000_000


def _mediator() -> Mediator:
    mediator = Mediator()
    for source in standard_catalog(seed=1999).values():
        mediator.add_source(source)
    return mediator


def _run_batch(mediator: Mediator, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        for query in _QUERIES:
            mediator.ask(query)
    return time.perf_counter() - start


def _macro(rounds: int) -> dict:
    """Batch wall-clock: NullTracer (default) vs recording Tracer."""
    mediator = _mediator()
    _run_batch(mediator, 2)  # warm caches, stats, lazy imports
    with use_metrics(MetricsRegistry()):
        t_null = _run_batch(mediator, rounds)
    with use_metrics(MetricsRegistry()):
        with use_tracer(Tracer()) as tracer:
            t_traced = _run_batch(mediator, rounds)
        spans = len(tracer.finished_spans())
    return {
        "null_s": t_null,
        "traced_s": t_traced,
        "overhead": (t_traced - t_null) / t_null,
        "spans": spans,
    }


def _micro() -> dict:
    """Per-call cost of the disabled primitives, in nanoseconds."""
    tracer = get_tracer()  # module default: the NullTracer
    assert not tracer.enabled
    import logging

    logger = logging.getLogger("repro.bench.x10")

    def null_span():
        with tracer.span("bench", key=1):
            pass

    def empty_context():
        with nullcontext():
            pass

    def null_event():
        trace_event(logger, logging.DEBUG, "bench %s", 1,
                    event="bench", key=1)

    results = {}
    for name, fn in [("empty_ctx", empty_context), ("null_span", null_span),
                     ("null_event", null_event)]:
        best = min(timeit.repeat(fn, number=_MICRO_CALLS, repeat=3))
        results[name] = best / _MICRO_CALLS * 1e9
    return results


def _table() -> tuple[Table, dict, dict]:
    macro = _macro(_ROUNDS)
    micro = _micro()
    table = Table(
        "X10: tracing overhead -- disabled (NullTracer) vs recording",
        ["measure", "value", "unit"],
        notes=(
            f"Macro: {_ROUNDS} rounds x {len(_QUERIES)} queries of "
            "plan+execute on the standard catalog; null_s is the default "
            "(disabled-tracing) build, traced_s records every span.  The "
            "delta bounds anything the disabled path could cost.  Micro: "
            "best-of-3 per-call cost of the disabled primitives vs an "
            "empty context manager."
        ),
    )
    table.add("macro null tracer", round(macro["null_s"], 4), "s")
    table.add("macro recording tracer", round(macro["traced_s"], 4), "s")
    table.add("macro overhead", round(macro["overhead"] * 100, 2), "%")
    table.add("macro spans recorded", macro["spans"], "spans")
    table.add("micro empty context", round(micro["empty_ctx"], 1), "ns/call")
    table.add("micro null span", round(micro["null_span"], 1), "ns/call")
    table.add("micro null event", round(micro["null_event"], 1), "ns/call")
    return table, macro, micro


# ----------------------------------------------------------------------


def test_x10_trace_overhead(record_table, record_bench):
    table, macro, micro = _table()
    record_table("x10", table)
    record_bench(
        "x10",
        metrics={
            "macro.overhead": macro["overhead"],
            "macro.spans": macro["spans"],
            "micro.empty_ctx_ns": micro["empty_ctx"],
            "micro.null_span_ns": micro["null_span"],
            "micro.null_event_ns": micro["null_event"],
        },
        bars={
            "macro.overhead": Bar("<=", 0.25),
            "micro.null_span_ns": Bar("<=", 5_000.0),
            "micro.null_event_ns": Bar("<=", 5_000.0),
        },
        tolerances={
            # Machine-dependent timings: the bars are the real gate, the
            # tolerance only flags an order-of-magnitude blowup.
            "micro.null_span_ns": Tolerance("lower", rel=3.0),
            "micro.null_event_ns": Tolerance("lower", rel=3.0),
        },
    )
    # Even FULL tracing stays cheap relative to planning + execution;
    # the disabled path can only be cheaper than this.
    assert macro["overhead"] < 0.25, (
        f"recording tracer cost {macro['overhead']:.1%} on the macro batch"
    )
    assert macro["spans"] > 0
    # The disabled primitives are sub-microsecond-scale no-ops: a
    # generous 5 us/call ceiling keeps the assertion robust on loaded
    # CI boxes while still catching an accidental allocation/lock on
    # the null path.
    assert micro["null_span"] < 5_000
    assert micro["null_event"] < 5_000


def test_x10_null_span_allocates_nothing():
    tracer = get_tracer()
    first = tracer.span("a", x=1)
    second = tracer.span("b")
    assert first is second  # one shared context manager, zero per-call state


def test_x10_bench_null_traced_ask(benchmark):
    mediator = _mediator()
    query = _QUERIES[0]
    mediator.ask(query)  # warm
    benchmark(lambda: mediator.ask(query))
