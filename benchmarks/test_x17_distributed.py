"""X17 (extension): the price and the proof of distributed observability.

Four questions, one results table:

* **propagation cost** -- ``TraceContext.inject`` / ``extract`` on the
  per-request path of every cross-process hop.  The bar: the
  inject+extract round trip averages **sub-microsecond per operation**
  (inject itself well under, extract -- a regex validate, two hex
  parses and a tuple construction -- a touch over).
* **recording-path overhead** -- the X12 macro batch (plan+execute on
  the standard catalog) with the full PR 10 recording path armed
  (wide-event log + exemplar slots) vs the PR 5 telemetry baseline
  (SLO tracking alone).  The bar: **<= 1.10x**.
* **federation** -- a 4-instance cluster of real telemetry servers
  scraped over HTTP into one merged view.  The bars: merged counters
  reconcile **exactly** against the per-instance snapshots (histograms
  bucket-wise, as if one process had seen all the traffic), and a full
  scrape+merge cycle completes in **<= 50 ms**.
* **degradation** -- the same scrape with one unreachable instance
  must *mark* it (cluster status ``degraded``, ``up`` gauge 0) and
  still merge the live shards exactly, never fail.
"""

from __future__ import annotations

import time
import timeit

from benchmarks.conftest import QUICK
from repro.experiments.report import Table
from repro.mediator import Mediator
from repro.observability import (
    FederatedScraper,
    MetricsRegistry,
    SamplingTracer,
    TelemetryServer,
    TraceContext,
    use_metrics,
    use_tracer,
)
from repro.observability.federation import instance_key
from repro.perf.schema import Bar, Tolerance
from repro.source.library import standard_catalog

_QUERIES = [
    "SELECT title FROM bookstore WHERE author = 'Carl Jung' "
    "or author = 'Sigmund Freud'",
    "SELECT model FROM car_guide WHERE make = 'BMW' and price < 40000",
    "SELECT owner FROM bank WHERE account_no = 42",
    "SELECT title FROM bookstore WHERE subject = 'philosophy' "
    "and title contains 'dream'",
]

_MICRO_N = 100_000 if QUICK else 400_000
_MICRO_REPEATS = 5
_ROUNDS = 12 if QUICK else 80
_OVERHEAD_REPEATS = 3
_SHARDS = 4
_SCRAPE_CYCLES = 5
_BUCKETS = [0.005, 0.05, 0.5]
_UNREACHABLE = "http://127.0.0.1:9"  # nothing listens on discard


# ----------------------------------------------------------------------
# Part 1: inject/extract on the cross-process hot path
# ----------------------------------------------------------------------

def _propagation_micro() -> dict:
    context = TraceContext(trace_id=(1 << 127) + 412, span_id=(1 << 60) + 7)
    carrier = context.inject()
    bench = {"context": context, "carrier": carrier,
             "TraceContext": TraceContext}

    def best(stmt: str) -> float:
        timings = timeit.repeat(stmt, globals=bench, number=_MICRO_N,
                                repeat=_MICRO_REPEATS)
        return min(timings) / _MICRO_N * 1e6

    inject_us = best("context.inject({})")
    extract_us = best("TraceContext.extract(carrier)")
    pair_us = best("TraceContext.extract(context.inject({}))") / 2
    assert TraceContext.extract(context.inject()) == context
    return {"inject_us": inject_us, "extract_us": extract_us,
            "pair_us": pair_us}


# ----------------------------------------------------------------------
# Part 2: event log + exemplars vs the PR 5 telemetry baseline
# ----------------------------------------------------------------------

def _mediator(recording: bool) -> Mediator:
    mediator = Mediator(
        latency_objective=60.0,  # telemetry armed, nothing ever breaches
        exemplar_slots=4 if recording else 0,
        event_log_entries=256 if recording else None,
    )
    for source in standard_catalog(seed=1999).values():
        mediator.add_source(source)
    return mediator


def _run_batch(mediator: Mediator, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        for query in _QUERIES:
            mediator.ask(query)
    return time.perf_counter() - start


def _recording_overhead() -> dict:
    baseline_mediator = _mediator(recording=False)
    recording_mediator = _mediator(recording=True)
    with use_metrics(MetricsRegistry()):
        with use_tracer(SamplingTracer(ratio=0.1, capacity=4096)):
            _run_batch(baseline_mediator, 2)  # warm caches, lazy imports
            _run_batch(recording_mediator, 2)
            baseline_s = recording_s = float("inf")
            for _ in range(_OVERHEAD_REPEATS):  # best-of, interleaved
                baseline_s = min(baseline_s,
                                 _run_batch(baseline_mediator, _ROUNDS))
                recording_s = min(recording_s,
                                  _run_batch(recording_mediator, _ROUNDS))
    events = recording_mediator.events
    return {
        "baseline_s": baseline_s,
        "recording_s": recording_s,
        "ratio": recording_s / baseline_s,
        "events_recorded": events.recorded,
        "exemplars": len(
            recording_mediator.ask_latency.snapshot()["exemplars"]),
    }


# ----------------------------------------------------------------------
# Parts 3 and 4: 4-instance federation -- exactness, latency, degradation
# ----------------------------------------------------------------------

def _shard_registry(shard: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("asks.total").inc(100 * (shard + 1))
    registry.counter("source.cars.calls").inc(10 + shard)
    histogram = registry.histogram("ask_seconds", buckets=_BUCKETS)
    for value in _shard_values(shard):
        histogram.observe(value)
    registry.gauge("queue_depth").set(float(shard))
    return registry


def _shard_values(shard: int) -> list[float]:
    # Deterministic per-shard latencies spread across every bucket.
    return [(shard + 1) * scale for scale in (0.001, 0.004, 0.02, 0.3)]


def _reference_histogram() -> dict:
    histogram = MetricsRegistry().histogram("ask_seconds", buckets=_BUCKETS)
    for shard in range(_SHARDS):
        for value in _shard_values(shard):
            histogram.observe(value)
    return histogram.snapshot()


def _check_reconciles(merged: dict) -> bool:
    reference = _reference_histogram()
    return (
        merged["asks.total"]["value"]
        == sum(100 * (shard + 1) for shard in range(_SHARDS))
        and merged["source.cars.calls"]["value"]
        == sum(10 + shard for shard in range(_SHARDS))
        and merged["ask_seconds"]["buckets"] == reference["buckets"]
        and merged["ask_seconds"]["count"] == reference["count"]
        and all(
            merged[instance_key(f"shard-{shard}", "queue_depth")]["value"]
            == float(shard)
            for shard in range(_SHARDS)
        )
    )


def _federation() -> dict:
    servers = [
        TelemetryServer(registry=_shard_registry(shard),
                        instance=f"shard-{shard}").start()
        for shard in range(_SHARDS)
    ]
    try:
        urls = [server.url for server in servers]
        scraper = FederatedScraper(urls)
        best_ms = float("inf")
        view = scraper.scrape()  # warm sockets and JSON paths
        for _ in range(_SCRAPE_CYCLES):
            view = scraper.scrape()
            best_ms = min(best_ms, view.elapsed_seconds * 1000)
        healthy = {
            "instances": len(view.instances),
            "status": view.status,
            "scrape_merge_ms": best_ms,
            "reconciled": _check_reconciles(view.merged),
        }
        degraded_view = FederatedScraper(urls + [_UNREACHABLE]).scrape()
        down = [status for status in degraded_view.instances
                if status.url == _UNREACHABLE]
        degraded = {
            "status": degraded_view.status,
            "reachable": sum(status.reachable
                             for status in degraded_view.instances),
            "down_marked": len(down) == 1
            and down[0].status == "unreachable"
            and degraded_view.merged[
                instance_key(down[0].instance, "up")]["value"] == 0.0,
            "reconciled": _check_reconciles(degraded_view.merged),
        }
    finally:
        for server in servers:
            server.stop()
    return {"healthy": healthy, "degraded": degraded}


# ----------------------------------------------------------------------

def _table() -> tuple[Table, dict, dict, dict]:
    micro = _propagation_micro()
    overhead = _recording_overhead()
    federation = _federation()
    healthy, degraded = federation["healthy"], federation["degraded"]
    table = Table(
        "X17: distributed observability -- propagation, recording, federation",
        ["measure", "value", "unit"],
        notes=(
            f"Propagation: best-of-{_MICRO_REPEATS} timeit over "
            f"{_MICRO_N} reps (bar: inject+extract round trip averages "
            "sub-us per op).  Recording: best-of-"
            f"{_OVERHEAD_REPEATS} interleaved {_ROUNDS}-round x "
            f"{len(_QUERIES)}-query macro batches, wide-event log + "
            "exemplar slots armed vs SLO tracking alone (bar: <= "
            f"1.10x).  Federation: {_SHARDS} real telemetry servers "
            f"scraped over HTTP, best-of-{_SCRAPE_CYCLES} cycles (bars: "
            "merged counters/histograms reconcile exactly, cycle <= "
            "50 ms); one unreachable instance degrades the view, "
            "marked, without failing the scrape."
        ),
    )
    table.add("traceparent inject", round(micro["inject_us"], 3), "us")
    table.add("traceparent extract", round(micro["extract_us"], 3), "us")
    table.add("inject+extract round trip",
              round(micro["pair_us"], 3), "us/op")
    table.add("telemetry baseline batch",
              round(overhead["baseline_s"], 4), "s")
    table.add("events+exemplars batch",
              round(overhead["recording_s"], 4), "s")
    table.add("recording / baseline", round(overhead["ratio"], 3), "x")
    table.add("wide events recorded", overhead["events_recorded"], "events")
    table.add("exemplars retained", overhead["exemplars"], "slots")
    table.add("cluster instances", healthy["instances"], "up")
    table.add("scrape+merge cycle",
              round(healthy["scrape_merge_ms"], 2), "ms")
    table.add("merged == sum of shards",
              "yes" if healthy["reconciled"] else "NO", "exact")
    table.add("degraded cluster status", degraded["status"],
              f"{degraded['reachable']}/{_SHARDS + 1} reachable")
    table.add("down shard marked",
              "yes" if degraded["down_marked"] else "NO", "up=0")
    return table, micro, overhead, federation


def test_x17_distributed(record_table, record_bench):
    table, micro, overhead, federation = _table()
    healthy, degraded = federation["healthy"], federation["degraded"]
    record_table("x17", table)
    record_bench(
        "x17",
        metrics={
            "propagation.inject_us": micro["inject_us"],
            "propagation.extract_us": micro["extract_us"],
            "propagation.pair_us": micro["pair_us"],
            "recording.ratio": overhead["ratio"],
            "recording.events": overhead["events_recorded"],
            "federation.scrape_merge_ms": healthy["scrape_merge_ms"],
            "federation.reconciled": float(healthy["reconciled"]),
            "degraded.reachable": degraded["reachable"],
            "degraded.reconciled": float(degraded["reconciled"]),
        },
        bars={
            "propagation.inject_us": Bar("<=", 1.0),
            "propagation.pair_us": Bar("<=", 1.0),
            "propagation.extract_us": Bar("<=", 2.5),
            "recording.ratio": Bar("<=", 1.10),
            "federation.scrape_merge_ms": Bar("<=", 50.0),
            "federation.reconciled": Bar("==", 1.0),
            "degraded.reachable": Bar("==", float(_SHARDS)),
            "degraded.reconciled": Bar("==", 1.0),
        },
        tolerances={
            # Micro/macro timings on shared CI boxes: wide bands, the
            # bars above are the real ceilings.
            "propagation.pair_us": Tolerance("lower", rel=1.0),
            "propagation.inject_us": Tolerance("lower", rel=1.0),
            "propagation.extract_us": Tolerance("lower", rel=1.0),
            "recording.ratio": Tolerance("lower", rel=0.5),
            "federation.scrape_merge_ms": Tolerance("lower", rel=2.0),
        },
        seed=412,
    )

    # The cross-process hop costs about a microsecond, both directions
    # averaged -- cheap enough to run on every request.
    assert micro["pair_us"] <= 1.0, (
        f"inject+extract averaged {micro['pair_us']:.3f} us/op")
    assert micro["inject_us"] <= 1.0

    # The full recording path stays within 10% of telemetry alone.
    assert overhead["ratio"] <= 1.10, (
        f"event log + exemplars cost {overhead['ratio']:.3f}x the "
        f"telemetry baseline")
    assert overhead["events_recorded"] \
        >= _OVERHEAD_REPEATS * _ROUNDS * len(_QUERIES)
    assert overhead["exemplars"] > 0

    # 4 shards merged over real HTTP: exact, and fast enough to sit in
    # a dashboard refresh loop.
    assert healthy["instances"] == _SHARDS
    assert healthy["status"] == "ok"
    assert healthy["reconciled"]
    assert healthy["scrape_merge_ms"] <= 50.0, (
        f"scrape+merge took {healthy['scrape_merge_ms']:.1f} ms")

    # One dead shard: marked, survived, still exact for the live ones.
    assert degraded["status"] == "degraded"
    assert degraded["reachable"] == _SHARDS
    assert degraded["down_marked"]
    assert degraded["reconciled"]


def test_x17_bench_extract(benchmark):
    carrier = TraceContext(trace_id=412, span_id=7).inject()
    benchmark(lambda: TraceContext.extract(carrier))
