"""X2 (extension, not in the paper): bind-join economics.

The extended version points at complex queries built from selection
blocks; the bind-join is the canonical such block for joins over
limited sources.  This bench runs a two-leg flight join and compares
its measured traffic against the only alternative a route-required
source leaves you: it has none (no download rule) -- so we compare
against a hypothetical dump-site mirror to show the bind-join's
traffic advantage.
"""

from repro.conditions.parser import parse_condition
from repro.joins import JoinSpec, BindJoinExecutor
from repro.query import TargetQuery
from repro.source.library import flights

_SOURCE = flights(n=6000, seed=5)
_CATALOG = {"flights": _SOURCE}

_SPEC = JoinSpec(
    outer=TargetQuery(
        parse_condition("origin = 'SFO' and destination = 'DEN'"),
        frozenset({"id", "price"}),
        "flights",
    ),
    inner_source="flights",
    inner_condition=parse_condition("destination = 'BOS' and price <= 500"),
    inner_attributes=frozenset({"airline", "stops"}),
    on={"destination": "origin"},
)


def test_x2_join_traffic_beats_downloading():
    executor = BindJoinExecutor(_CATALOG)
    _SOURCE.meter.reset()
    answer = executor.execute(_SPEC)
    # The probes moved far fewer tuples than the relation holds: the
    # bind-join's whole point on a source that forbids downloads.
    assert answer.tuples_transferred < len(_SOURCE.relation) / 4
    assert answer.inner_queries == answer.bindings
    assert len(answer.result) > 0


def test_x2_bench_bind_join(benchmark):
    executor = BindJoinExecutor(_CATALOG)

    def run():
        return executor.execute(_SPEC)

    answer = benchmark(run)
    assert answer.bindings >= 1


def test_x2_bench_cold_executor(benchmark):
    """Includes wrapper construction + first-plan costs per run."""

    def run():
        return BindJoinExecutor(_CATALOG).execute(_SPEC)

    answer = benchmark(run)
    assert answer.bindings >= 1
