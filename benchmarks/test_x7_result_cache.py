"""X7 (extension): the mediator's source-query result cache.

A dashboard-style workload re-asks a small set of queries; the cache
answers repeats locally.  The bench measures the repeated batch with and
without caching and asserts the cached run stops touching the source.
"""

from benchmarks.conftest import QUICK
from repro.mediator import Mediator
from repro.source.library import bookstore

_QUERIES = [
    "SELECT id, title FROM bookstore WHERE author = 'Carl Jung'",
    "SELECT id, title FROM bookstore WHERE author = 'Sigmund Freud' "
    "and title contains 'dreams'",
    "SELECT id, title FROM bookstore WHERE subject = 'philosophy'",
]
_REPEATS = 5 if QUICK else 15


def _mediator(cache: bool) -> Mediator:
    mediator = Mediator(
        result_cache_tuples=200_000 if cache else None
    )
    mediator.add_source(bookstore(n=5000))
    return mediator


def test_x7_cache_stops_source_traffic():
    mediator = _mediator(cache=True)
    for query in _QUERIES:
        mediator.ask(query)
    source = mediator.source("bookstore")
    queries_after_warmup = source.meter.queries
    for _ in range(3):
        for query in _QUERIES:
            answer = mediator.ask(query)
            assert answer.report.queries == 0
    assert source.meter.queries == queries_after_warmup
    assert mediator.result_cache.stats.hit_rate > 0.5


def test_x7_bench_with_cache(benchmark):
    mediator = _mediator(cache=True)
    for query in _QUERIES:
        mediator.ask(query)  # warm

    def repeat_batch():
        for _ in range(_REPEATS):
            for query in _QUERIES:
                mediator.ask(query)

    benchmark(repeat_batch)


def test_x7_bench_without_cache(benchmark):
    mediator = _mediator(cache=False)
    for query in _QUERIES:
        mediator.ask(query)

    def repeat_batch():
        for _ in range(_REPEATS):
            for query in _QUERIES:
                mediator.ask(query)

    benchmark(repeat_batch)
