"""E6 (Figure IV): plan quality vs source-capability richness.

Regenerates the richness sweep and benchmarks GenCompact planning on a
mid-richness source (the regime where capability-sensitive planning
matters most).
"""

from benchmarks.conftest import QUICK
from repro.experiments.common import cost_model_for
from repro.experiments.e6_capability_richness import run as run_e6
from repro.planners.gencompact import GenCompact
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_CONFIG = WorldConfig(
    n_attributes=6, n_rows=2000, richness=0.5, download_prob=0.1,
    export_prob=0.95, seed=606,
)
_SOURCE = make_source(_CONFIG)
_MODEL = cost_model_for(_SOURCE)
_QUERIES = make_queries(_CONFIG, _SOURCE, 5, 5, seed=41)


def test_e6_richness_sweep(benchmark, record_table):
    table = benchmark.pedantic(run_e6, kwargs={"quick": QUICK}, rounds=1, iterations=1)
    record_table("e6_capability_richness", table)
    for row in table.rows:
        # GenCompact's feasibility dominates both baselines...
        assert row[1] >= row[2] - 1e-9
        assert row[1] >= row[3] - 1e-9
        # ...and its cost is never worse where both planned.
        for ratio in (row[4], row[5]):
            if ratio != "n/a":
                assert ratio >= 1.0 - 1e-6
    # Feasibility grows with richness end to end.
    feasibility = table.column("GC feas")
    assert feasibility[-1] >= feasibility[0]


def test_e6_bench_mid_richness_planning(benchmark):
    planner = GenCompact()

    def plan_batch():
        return [planner.plan(q, _SOURCE, _MODEL) for q in _QUERIES]

    results = benchmark(plan_batch)
    assert len(results) == len(_QUERIES)
