"""E7 (Table 3): feasibility rate per strategy.

Regenerates the who-can-plan-what table and benchmarks the feasibility
screen itself (planning a batch of random queries with every strategy).
"""

from benchmarks.conftest import QUICK
from repro.experiments.common import cost_model_for, default_planners
from repro.experiments.e7_feasibility import run as run_e7
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_CONFIG = WorldConfig(
    n_attributes=6, n_rows=1000, richness=0.5, download_prob=0.5, seed=707
)
_SOURCE = make_source(_CONFIG)
_MODEL = cost_model_for(_SOURCE)
_QUERIES = make_queries(_CONFIG, _SOURCE, 6, 4, seed=51)


def test_e7_feasibility_table(benchmark, record_table):
    table = benchmark.pedantic(run_e7, kwargs={"quick": QUICK}, rounds=1, iterations=1)
    record_table("e7_feasibility", table)
    rates = dict(zip(table.column("planner"), table.column("rate")))
    # The paper's subsumption ordering.
    assert rates["GenCompact"] == rates["GenModular"]
    assert rates["GenCompact"] >= rates["CNF (Garlic)"]
    assert rates["GenCompact"] >= rates["DNF"]
    assert rates["CNF (Garlic)"] >= rates["DISCO"]
    assert rates["DNF"] >= rates["DISCO"]
    assert rates["DISCO"] >= rates["Naive"]


def test_e7_bench_feasibility_screen(benchmark):
    planners = default_planners(genmodular_budget=30)

    def screen():
        return [
            planner.plan(query, _SOURCE, _MODEL).feasible
            for planner in planners
            for query in _QUERIES
        ]

    outcomes = benchmark(screen)
    assert len(outcomes) == len(planners) * len(_QUERIES)
