"""X11 (extension): the serving layer -- plan-cache amortization + load.

Two halves, one results table:

* **warm vs cold** -- over the E3-style synthetic query mix (random
  condition trees of 6..8 atoms on a capability-limited world source),
  a plan-cache hit answers ``ask()`` in a small fraction of the *cold
  planning time alone*.  The acceptance bar: warm-hit ask latency at
  least 10x below cold planning, at every query size.  Planning is the
  serving bottleneck the cache exists to amortize, so the ratio is
  measured against ``planning.stats.elapsed_sec``, not total cold ask.
* **load harness** -- the same world served through plan cache +
  admission control, closed-loop.  A healthy run completes every
  request; an overloaded run (slow source, narrow gate, tiny queue
  timeout) sheds -- and in both the report reconciles *exactly*
  against the admission controller and plan-cache counters, with the
  run finishing far inside the deadlock deadline.
"""

from __future__ import annotations

import statistics
import time

from benchmarks.conftest import QUICK
from repro.experiments.report import Table
from repro.mediator import Mediator
from repro.perf.schema import Bar, Tolerance
from repro.serving import LoadHarness
from repro.source.faults import SimulatedLatency
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_SIZES = (6, 7, 8)
_PER_SIZE = 6 if QUICK else 15
_WARM_REPEATS = 3 if QUICK else 7
_LOAD_REQUESTS = 48 if QUICK else 240
_LOAD_THREADS = 8
#: A load-harness run that has not returned by now is a deadlock.
_DEADLOCK_DEADLINE_S = 60.0

_CONFIG = WorldConfig(n_attributes=8, n_rows=400 if QUICK else 2000,
                      richness=0.8, download_prob=1.0, seed=411)


def _world(**mediator_kwargs):
    """The synthetic world behind a serving-enabled mediator.

    Capability compilation and plan templates are pinned *off*: X11
    measures the exact-canonical-cache story (warm hit vs. full cold
    planning run), and both features shrink or bypass the cold side of
    that ratio.  X13 measures them.
    """
    source = make_source(_CONFIG)
    mediator_kwargs.setdefault("compile_capabilities", False)
    mediator_kwargs.setdefault("plan_templates", False)
    mediator = Mediator(plan_cache_entries=256, result_cache_tuples=200_000,
                        **mediator_kwargs)
    mediator.add_source(source)
    return mediator, source


def _mix(source, n_atoms: int):
    """The E3 query mix at one size (download rule => all feasible)."""
    return make_queries(_CONFIG, source, _PER_SIZE, n_atoms,
                        seed=411_000 + n_atoms)


# ----------------------------------------------------------------------
# Part 1: warm-hit ask vs cold planning
# ----------------------------------------------------------------------

def _warm_cold_table() -> Table:
    table = Table(
        "X11a: warm plan-cache hit vs cold planning (E3 query mix)",
        ["atoms", "queries", "cold_plan_ms", "cold_ask_ms", "warm_ask_ms",
         "plan/warm", "hits", "misses"],
        notes=(
            "Random alternating condition trees over the synthetic world "
            f"(8 attributes, {_CONFIG.n_rows} rows, richness 0.8, download "
            "rule). cold_plan_ms is planner wall-clock on the first ask; "
            f"warm_ask_ms is the best of {_WARM_REPEATS} repeat asks "
            "(canonical-key lookup + cached-plan execution). plan/warm is "
            "the amortization factor; the bar is >= 10x at every size."
        ),
    )
    for n_atoms in _SIZES:
        mediator, source = _world()
        queries = _mix(source, n_atoms)
        cold_plan, cold_ask, warm_ask = [], [], []
        for query in queries:
            start = time.perf_counter()
            answer = mediator.ask(query)
            cold_ask.append(time.perf_counter() - start)
            cold_plan.append(answer.planning.stats.elapsed_sec)
            best = float("inf")
            for _ in range(_WARM_REPEATS):
                start = time.perf_counter()
                warm = mediator.ask(query)
                best = min(best, time.perf_counter() - start)
            assert warm.planning is answer.planning  # a true cache hit
            warm_ask.append(best)
        stats = mediator.plan_cache.stats
        plan_ms = statistics.mean(cold_plan) * 1000
        warm_ms = statistics.mean(warm_ask) * 1000
        table.add(n_atoms, len(queries), round(plan_ms, 2),
                  round(statistics.mean(cold_ask) * 1000, 2),
                  round(warm_ms, 3), round(plan_ms / warm_ms, 1),
                  stats.hits, stats.misses)
    return table


# ----------------------------------------------------------------------
# Part 2: the load harness, healthy and overloaded
# ----------------------------------------------------------------------

def _load_table() -> Table:
    table = Table(
        "X11b: closed-loop load through plan cache + admission control",
        ["scenario", "threads", "requests", "ok", "shed", "errors",
         "req/s", "p50_ms", "p95_ms", "p99_ms", "hits", "misses",
         "reconciled"],
        notes=(
            f"{_LOAD_THREADS} client threads replaying the 6-atom mix "
            "against one shared mediator. 'healthy' = generous gate, no "
            "source latency; 'overloaded' = 20 ms source calls behind a "
            "width-2 gate with a 5 ms queue timeout, so the gate sheds. "
            "reconciled = report vs admission-controller vs plan-cache "
            "counters agree exactly (ok+shed+errors == requests, "
            "shed == admission.shed, hits+misses == admitted asks)."
        ),
    )

    def run(scenario: str, mediator, source) -> None:
        harness = LoadHarness(mediator, _mix(source, 6),
                              threads=_LOAD_THREADS)
        started = time.monotonic()
        report = harness.run(_LOAD_REQUESTS)
        elapsed = time.monotonic() - started
        assert elapsed < _DEADLOCK_DEADLINE_S, "load run hit the deadline"
        stats = mediator.plan_cache.stats
        admission = mediator.admission
        reconciled = (
            report.completed + report.shed + report.errors == report.requests
            and report.shed == admission.shed
            and report.completed + report.errors == admission.admitted
            and stats.hits + stats.misses == admission.admitted
            and admission.in_flight == 0
        )
        table.add(scenario, report.threads, report.requests,
                  report.completed, report.shed, report.errors,
                  round(report.throughput_rps, 1), round(report.p50_ms, 2),
                  round(report.p95_ms, 2), round(report.p99_ms, 2),
                  stats.hits, stats.misses, "yes" if reconciled else "NO")

    healthy, healthy_source = _world(max_in_flight=_LOAD_THREADS,
                                     admission_timeout=30.0)
    run("healthy", healthy, healthy_source)

    overloaded, slow_source = _world(max_in_flight=2,
                                     admission_timeout=0.005)
    slow_source.latency = SimulatedLatency(seed=19, base=0.02, jitter=0.0)
    run("overloaded", overloaded, slow_source)
    return table


class _Combined:
    """Two tables, one ``benchmarks/results/x11.txt``."""

    def __init__(self, *tables):
        self.tables = tables

    def format(self) -> str:
        return "\n\n".join(table.format() for table in self.tables)


# ----------------------------------------------------------------------


def test_x11_serving(record_table, record_bench):
    warm_cold = _warm_cold_table()
    load = _load_table()
    record_table("x11", _Combined(warm_cold, load))

    amortization = dict(zip(warm_cold.column("atoms"),
                            warm_cold.column("plan/warm")))
    shed = dict(zip(load.column("scenario"), load.column("shed")))
    completed = dict(zip(load.column("scenario"), load.column("ok")))
    record_bench(
        "x11",
        metrics={
            "amortization.min": min(amortization.values()),
            "amortization.max": max(amortization.values()),
            "load.healthy_completed": completed["healthy"],
            "load.healthy_shed": shed["healthy"],
            "load.overloaded_shed": shed["overloaded"],
            "load.reconciled": all(
                flag == "yes" for flag in load.column("reconciled")
            ),
        },
        bars={
            "amortization.min": Bar(">=", 10.0),
            "load.healthy_shed": Bar("==", 0.0),
            "load.overloaded_shed": Bar(">=", 1.0),
            "load.reconciled": Bar("==", 1.0),
        },
        tolerances={
            # Cache-hit-vs-planning ratio moves with the machine; keep
            # a wide band above the 10x floor the bar already holds.
            "amortization.min": Tolerance("higher", rel=0.6),
        },
        seed=411,
    )

    # The headline acceptance bar: a warm hit amortizes planning >= 10x
    # at every query size in the mix.
    for n_atoms, ratio in zip(warm_cold.column("atoms"),
                              warm_cold.column("plan/warm")):
        assert ratio >= 10.0, f"n_atoms={n_atoms}: only {ratio}x"

    # Every load scenario reconciled exactly and nothing deadlocked.
    assert all(flag == "yes" for flag in load.column("reconciled"))
    # The overloaded scenario actually exercised shedding.
    shed_by_scenario = dict(zip(load.column("scenario"),
                                load.column("shed")))
    assert shed_by_scenario["healthy"] == 0
    assert shed_by_scenario["overloaded"] >= 1


def test_x11_bench_warm_ask(benchmark):
    mediator, source = _world()
    query = _mix(source, 6)[0]
    mediator.ask(query)  # populate the plan + result caches
    benchmark(lambda: mediator.ask(query))
