"""E8 (Figure V): MCSC solvers -- paper's O(2^Q) enumeration vs DP vs greedy.

Regenerates the solver-comparison series and benchmarks each solver on
a fixed Q=14 instance.
"""

import random

import pytest

from benchmarks.conftest import QUICK
from repro.experiments.e8_mcsc import random_instance, run as run_e8
from repro.planners.mcsc import solve_dp, solve_enumerate, solve_greedy

_RNG = random.Random(808)
_N_ELEMENTS = 7
_CANDIDATES = random_instance(_N_ELEMENTS, 14, _RNG)


def test_e8_solver_series(benchmark, record_table):
    table = benchmark.pedantic(run_e8, kwargs={"quick": QUICK}, rounds=1, iterations=1)
    record_table("e8_mcsc", table)
    assert all(row[6] == "yes" for row in table.rows)   # dp == enumeration
    assert all(row[5] >= 1.0 - 1e-9 for row in table.rows)  # greedy >= opt
    # The DP's advantage grows with Q.
    speedups = table.column("speedup")
    assert speedups[-1] >= speedups[0]


def test_e8_bench_enumerate(benchmark):
    solution = benchmark(lambda: solve_enumerate(_N_ELEMENTS, _CANDIDATES))
    assert solution is not None


def test_e8_bench_dp(benchmark):
    solution = benchmark(lambda: solve_dp(_N_ELEMENTS, _CANDIDATES))
    assert solution is not None
    assert solution.cost == pytest.approx(
        solve_enumerate(_N_ELEMENTS, _CANDIDATES).cost
    )


def test_e8_bench_greedy(benchmark):
    solution = benchmark(lambda: solve_greedy(_N_ELEMENTS, _CANDIDATES))
    assert solution is not None
