"""X5 (extension): the bottleneck (response-time) cost model.

Section 7 claims GenCompact "can be easily adapted to situations
involving ... cost models that are different".  Under parallel-execution
costing (plan cost = max over its source queries), PR1 becomes unsound
and the MCSC step becomes a min-max cover; the planner adapts
automatically.  This bench compares the plans and planning time of the
two models on a disjunctive workload.
"""

from benchmarks.conftest import QUICK
from repro.experiments.report import Table
from repro.planners.gencompact import GenCompact
from repro.plans.cost import BottleneckCostModel, CostModel
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_CONFIG = WorldConfig(
    n_attributes=6, n_rows=2000, richness=0.9, download_prob=1.0,
    export_prob=0.95, seed=1501,
)
_SOURCE = make_source(_CONFIG)
_ADDITIVE = CostModel({_SOURCE.name: _SOURCE.stats})
_BOTTLENECK = BottleneckCostModel({_SOURCE.name: _SOURCE.stats})
_QUERIES = make_queries(
    _CONFIG, _SOURCE, 4 if QUICK else 10, 4, seed=88, or_prob=0.7
)


def _compare() -> Table:
    table = Table(
        "X5 (extension): additive (Eq. 1) vs bottleneck cost model",
        ["query", "Eq.1 cost", "Eq.1 queries", "bottleneck cost",
         "bottleneck queries"],
        notes=(
            "The bottleneck model prices parallel execution (cost = max "
            "over source queries) and therefore tolerates -- often "
            "prefers -- plans with more, smaller queries."
        ),
    )
    planner = GenCompact()
    for index, query in enumerate(_QUERIES):
        additive = planner.plan(query, _SOURCE, _ADDITIVE)
        parallel = planner.plan(query, _SOURCE, _BOTTLENECK)
        table.add(
            f"q{index}",
            round(additive.cost, 1) if additive.feasible else "inf",
            len(list(additive.plan.source_queries())) if additive.feasible else 0,
            round(parallel.cost, 1) if parallel.feasible else "inf",
            len(list(parallel.plan.source_queries())) if parallel.feasible else 0,
        )
    return table


def test_x5_model_comparison(benchmark, record_table):
    table = benchmark.pedantic(_compare, rounds=1, iterations=1)
    record_table("x5_bottleneck_model", table)
    # Feasibility is model-independent (the plan space is the same).
    for row in table.rows:
        assert (row[1] == "inf") == (row[3] == "inf")
        if row[1] != "inf":
            # The bottleneck of the chosen plan never exceeds its Eq.1
            # sum, and never uses fewer... no: only sanity-check bounds.
            assert row[3] <= row[1] + 1e-9


def test_x5_bench_bottleneck_planning(benchmark):
    planner = GenCompact()

    def run():
        return [planner.plan(q, _SOURCE, _BOTTLENECK) for q in _QUERIES]

    results = benchmark(run)
    assert len(results) == len(_QUERIES)
