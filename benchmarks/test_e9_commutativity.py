"""E9 (Table 4): commutativity via rewrite rule vs description rewriting.

Regenerates the Section 6.1 comparison and benchmarks the two one-time /
per-query costs it trades: building the commutation closure (once per
source) and fixing a planned query (once per executed plan).
"""

from benchmarks.conftest import QUICK
from repro.conditions.parser import parse_condition
from repro.experiments.e9_commutativity import run as run_e9
from repro.ssdl.commute import commutation_closure, fix_condition
from repro.ssdl.text import parse_ssdl

_NATIVE = parse_ssdl(
    """
    s -> r1 | r2
    r1 -> a = $str and b <= $num and c = $str
    r2 -> a = $str and d >= $num
    attributes r1 : key, a, b, c, d
    attributes r2 : key, a, b, c, d
    """,
    name="ordered",
)
_SHUFFLED = parse_condition("c = 'x' and a = 'y' and b <= 5")


def test_e9_commutativity_table(benchmark, record_table):
    table = benchmark.pedantic(run_e9, kwargs={"quick": QUICK}, rounds=1, iterations=1)
    record_table("e9_commutativity", table)
    by_config = {row[0]: row for row in table.rows}
    rule_row = by_config["GenModular + commutative rule"]
    gc_row = by_config["GenCompact (closed description)"]
    # Description rewriting processes far fewer CTs per query...
    assert gc_row[2] < rule_row[2]
    # ...and GenCompact plans every shuffled query.
    count, total = gc_row[1].split("/")
    assert count == total


def test_e9_bench_commutation_closure(benchmark):
    closed = benchmark(lambda: commutation_closure(_NATIVE))
    assert closed.rule_count() > _NATIVE.rule_count()


def test_e9_bench_query_fixing(benchmark):
    fixed = benchmark(
        lambda: fix_condition(_SHUFFLED, _NATIVE, frozenset({"key"}))
    )
    assert _NATIVE.check(fixed)
