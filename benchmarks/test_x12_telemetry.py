"""X12 (extension): the price and the proof of production telemetry.

Three questions, one results table:

* **sampling overhead** -- the X10 macro batch (plan+execute cycles on
  the standard catalog) under the default :class:`NullTracer`, under a
  10% :class:`SamplingTracer`, and under the full recording
  :class:`Tracer`.  The bar: sampled recording stays within **2x** of
  the disabled-tracer baseline (in practice it sits a few percent
  above it, far below the full recorder).
* **live scrape cost** -- the X11 load mix (closed-loop harness over
  the synthetic world) with a scraper hammering the telemetry server's
  ``/metrics`` endpoint for the whole run vs the same run unobserved.
  The bar: the scrape costs **< 5%** throughput (best-of-N on both
  sides to shave scheduler noise).
* **SLO + slow-query proof** -- a fault-injected run (20 ms simulated
  source latency behind a 5 ms objective) must burn the error budget,
  flip ``/health`` to 503/degraded over real HTTP, and leave a
  slow-query log that reconciles *exactly* with the SLO tracker's
  breach count, every entry over the objective and fingerprinted with
  its canonical plan.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

from benchmarks.conftest import QUICK
from repro.experiments.report import Table
from repro.mediator import Mediator
from repro.observability import (
    MetricsRegistry,
    SamplingTracer,
    TelemetryServer,
    Tracer,
    plan_fingerprint,
    use_metrics,
    use_tracer,
)
from repro.perf.schema import Bar, Tolerance
from repro.serving import LoadHarness
from repro.serving.plan_cache import plan_cache_key
from repro.source.faults import SimulatedLatency
from repro.source.library import standard_catalog
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_QUERIES = [
    "SELECT title FROM bookstore WHERE author = 'Carl Jung' "
    "or author = 'Sigmund Freud'",
    "SELECT model FROM car_guide WHERE make = 'BMW' and price < 40000",
    "SELECT owner FROM bank WHERE account_no = 42",
    "SELECT title FROM bookstore WHERE subject = 'philosophy' "
    "and title contains 'dream'",
]

_ROUNDS = 20 if QUICK else 150
_LOAD_REQUESTS = 384 if QUICK else 1536
_LOAD_THREADS = 8
_SCRAPE_REPEATS = 6
_SLO_OBJECTIVE_S = 0.005
_SLO_ASKS = 12 if QUICK else 40

_CONFIG = WorldConfig(n_attributes=8, n_rows=400 if QUICK else 2000,
                      richness=0.8, download_prob=1.0, seed=412)


# ----------------------------------------------------------------------
# Part 1: sampled recording vs the disabled-tracer baseline
# ----------------------------------------------------------------------

def _library_mediator() -> Mediator:
    mediator = Mediator()
    for source in standard_catalog(seed=1999).values():
        mediator.add_source(source)
    return mediator


def _run_batch(mediator: Mediator, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        for query in _QUERIES:
            mediator.ask(query)
    return time.perf_counter() - start


def _overhead() -> dict:
    mediator = _library_mediator()
    _run_batch(mediator, 2)  # warm caches, stats, lazy imports
    with use_metrics(MetricsRegistry()):
        t_null = _run_batch(mediator, _ROUNDS)
    with use_metrics(MetricsRegistry()):
        with use_tracer(SamplingTracer(ratio=0.1, capacity=4096)) as sampler:
            t_sampled = _run_batch(mediator, _ROUNDS)
        stats = sampler.stats()
    with use_metrics(MetricsRegistry()):
        with use_tracer(Tracer()) as full:
            t_full = _run_batch(mediator, _ROUNDS)
        full_spans = len(full.finished_spans())
    return {
        "null_s": t_null,
        "sampled_s": t_sampled,
        "full_s": t_full,
        "sampled_ratio": t_sampled / t_null,
        "full_ratio": t_full / t_null,
        "sampled_kept": stats["traces_kept"],
        "sampled_dropped": stats["traces_dropped"],
        "full_spans": full_spans,
    }


# ----------------------------------------------------------------------
# Part 2: throughput with a live /metrics scraper vs unobserved
# ----------------------------------------------------------------------

def _serving_world():
    source = make_source(_CONFIG)
    mediator = Mediator(plan_cache_entries=256,
                        result_cache_tuples=200_000,
                        max_in_flight=_LOAD_THREADS,
                        admission_timeout=30.0)
    mediator.add_source(source)
    queries = make_queries(_CONFIG, source, 6, 6, seed=412_006)
    return mediator, queries


def _load_run(scraped: bool) -> tuple[float, int]:
    """One harness run -> (throughput rps, scrapes served)."""
    registry = MetricsRegistry()
    scrapes = 0
    with use_metrics(registry):
        mediator, queries = _serving_world()
        for query in queries:  # warm the plan cache on both sides
            mediator.ask(query)
        harness = LoadHarness(mediator, queries, threads=_LOAD_THREADS)
        if not scraped:
            return harness.run(_LOAD_REQUESTS).throughput_rps, 0
        stop = threading.Event()

        def scraper(url: str) -> None:
            # A tight scraper: one GET every 25 ms for the whole run
            # (hundreds of times denser than any real Prometheus).
            nonlocal scrapes
            while not stop.is_set():
                with urllib.request.urlopen(url + "/metrics",
                                            timeout=5) as reply:
                    reply.read()
                scrapes += 1
                stop.wait(0.025)

        with TelemetryServer(mediator=mediator,
                             registry=registry) as server:
            thread = threading.Thread(target=scraper, args=(server.url,),
                                      daemon=True)
            thread.start()
            try:
                report = harness.run(_LOAD_REQUESTS)
            finally:
                stop.set()
                thread.join(timeout=10.0)
        return report.throughput_rps, scrapes


def _scrape_cost() -> dict:
    _load_run(scraped=False)  # warm-up: lazy imports, allocator, caches
    baseline = scraped = 0.0
    scrape_count = 0
    for _ in range(_SCRAPE_REPEATS):  # best-of-N on both sides
        baseline = max(baseline, _load_run(scraped=False)[0])
        rps, scrapes = _load_run(scraped=True)
        if rps > scraped:
            scraped, scrape_count = rps, scrapes
    return {
        "baseline_rps": baseline,
        "scraped_rps": scraped,
        "cost": max(0.0, 1.0 - scraped / baseline),
        "scrapes": scrape_count,
    }


# ----------------------------------------------------------------------
# Part 3: fault-injected SLO burn, /health flip, slow-query exactness
# ----------------------------------------------------------------------

def _slo_burn() -> dict:
    registry = MetricsRegistry()
    with use_metrics(registry):
        source = make_source(_CONFIG)
        source.latency = SimulatedLatency(seed=23, base=0.02, jitter=0.0)
        mediator = Mediator(latency_objective=_SLO_OBJECTIVE_S)
        mediator.add_source(source)
        queries = make_queries(_CONFIG, source, 4, 6, seed=412_106)
        for index in range(_SLO_ASKS):
            mediator.ask(queries[index % len(queries)])
        status = mediator.slo.status()
        with TelemetryServer(mediator=mediator,
                             registry=registry) as server:
            try:
                with urllib.request.urlopen(server.url + "/health",
                                            timeout=10) as reply:
                    http_status, body = reply.status, reply.read()
            except urllib.error.HTTPError as reply:
                http_status, body = reply.code, reply.read()
    health = json.loads(body.decode("utf-8"))
    entries = mediator.slow_queries.entries()
    expected_fingerprints = {
        plan_fingerprint(plan_cache_key(query)) for query in queries
    }
    return {
        "asks": _SLO_ASKS,
        "breached": status["breached"],
        "budget_burn": status["budget_burn"],
        "slo_status": status["status"],
        "http_status": http_status,
        "health_status": health["status"],
        "log_recorded": mediator.slow_queries.recorded,
        "log_over_objective": sum(
            entry.duration_seconds > _SLO_OBJECTIVE_S for entry in entries
        ),
        "log_entries": len(entries),
        "fingerprints_match": all(
            entry.fingerprint in expected_fingerprints for entry in entries
        ),
    }


# ----------------------------------------------------------------------

def _table() -> tuple[Table, dict, dict, dict]:
    overhead = _overhead()
    scrape = _scrape_cost()
    slo = _slo_burn()
    table = Table(
        "X12: production telemetry -- overhead, scrape cost, SLO proof",
        ["measure", "value", "unit"],
        notes=(
            f"Overhead: {_ROUNDS} rounds x {len(_QUERIES)} queries of "
            "plan+execute on the standard catalog; null is the disabled "
            "NullTracer baseline, sampled a 10% SamplingTracer, full the "
            "recording Tracer (bar: sampled <= 2x null).  Scrape: "
            f"best-of-{_SCRAPE_REPEATS} throughput of the {_LOAD_THREADS}"
            f"-thread x {_LOAD_REQUESTS}-request X11-style load mix with "
            "a live /metrics scraper vs unobserved (bar: < 5% cost).  "
            f"SLO: {_SLO_ASKS} asks against a 20 ms fault-injected "
            "source under a 5 ms objective must exhaust the budget, "
            "flip /health to 503 over HTTP, and fill the slow-query log "
            "with exactly the breaching asks, canonically fingerprinted."
        ),
    )
    table.add("macro null tracer", round(overhead["null_s"], 4), "s")
    table.add("macro sampled tracer (10%)",
              round(overhead["sampled_s"], 4), "s")
    table.add("macro full tracer", round(overhead["full_s"], 4), "s")
    table.add("sampled / null", round(overhead["sampled_ratio"], 3), "x")
    table.add("full / null", round(overhead["full_ratio"], 3), "x")
    table.add("sampled traces kept",
              overhead["sampled_kept"], "traces")
    table.add("sampled traces dropped",
              overhead["sampled_dropped"], "traces")
    table.add("load unobserved", round(scrape["baseline_rps"], 1), "req/s")
    table.add("load under live scrape",
              round(scrape["scraped_rps"], 1), "req/s")
    table.add("scrape throughput cost",
              round(scrape["cost"] * 100, 2), "%")
    table.add("scrapes served during run", scrape["scrapes"], "GETs")
    table.add("slo asks", slo["asks"], "asks")
    table.add("slo breached", slo["breached"], "asks")
    table.add("slo budget burn", round(slo["budget_burn"], 1), "x")
    table.add("/health over HTTP", slo["http_status"],
              slo["health_status"])
    table.add("slow-query log recorded", slo["log_recorded"], "entries")
    return table, overhead, scrape, slo


def test_x12_telemetry(record_table, record_bench):
    table, overhead, scrape, slo = _table()
    record_table("x12", table)
    record_bench(
        "x12",
        metrics={
            "overhead.sampled_ratio": overhead["sampled_ratio"],
            "overhead.full_ratio": overhead["full_ratio"],
            "scrape.cost": scrape["cost"],
            "scrape.served": scrape["scrapes"],
            "slo.budget_burn": slo["budget_burn"],
            "slo.http_status": slo["http_status"],
            "slo.log_recorded": slo["log_recorded"],
        },
        bars={
            "overhead.sampled_ratio": Bar("<=", 2.0),
            "scrape.cost": Bar("<=", 0.05),
            "scrape.served": Bar(">=", 1.0),
            "slo.budget_burn": Bar(">=", 1.0),
            "slo.http_status": Bar("==", 503.0),
        },
        tolerances={
            # Timing ratios on shared CI boxes: a wide band, the bars
            # above are the real floors/ceilings.
            "overhead.sampled_ratio": Tolerance("lower", rel=0.6),
            "scrape.cost": Tolerance("lower", abs=0.03),
        },
        seed=412,
    )

    # Sampled recording stays within 2x of the disabled baseline.
    assert overhead["sampled_ratio"] <= 2.0, (
        f"10% sampling cost {overhead['sampled_ratio']:.2f}x the "
        f"NullTracer baseline"
    )
    # Sampling actually sampled: some traces kept, most dropped.
    assert overhead["sampled_kept"] > 0
    assert overhead["sampled_dropped"] > overhead["sampled_kept"]

    # A live scraper watched the whole run and cost < 5% throughput.
    assert scrape["scrapes"] > 0
    assert scrape["cost"] < 0.05, (
        f"live /metrics scrape cost {scrape['cost']:.1%} throughput"
    )

    # The fault-injected run exhausted the budget and /health said so
    # over real HTTP.
    assert slo["slo_status"] == "degraded"
    assert slo["budget_burn"] >= 1.0
    assert slo["http_status"] == 503
    assert slo["health_status"] == "degraded"

    # The slow-query log holds exactly the over-objective asks, every
    # one carrying its canonical plan fingerprint.
    assert slo["log_recorded"] == slo["breached"] == slo["asks"]
    assert slo["log_over_objective"] == slo["log_entries"]
    assert slo["fingerprints_match"]


def test_x12_bench_sampled_ask(benchmark):
    mediator = _library_mediator()
    query = _QUERIES[0]
    mediator.ask(query)  # warm
    with use_tracer(SamplingTracer(ratio=0.1)):
        benchmark(lambda: mediator.ask(query))
