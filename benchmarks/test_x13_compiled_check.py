"""X13 (extension): compiled capabilities + parameterized plan templates.

Two halves, one results table (plus ``BENCH_x13.json`` for CI):

* **compiled vs Earley Check** -- over the E3-style synthetic query mix
  (random condition trees of 6..8 atoms), ``Check(C, R)`` answered by
  the compiled token-trie recognizer vs. the Earley chart parse, both
  with result caching off so the parse itself is what's measured.  The
  acceptance bar: compiled Check >= 10x faster on the aggregate mix.
* **plan templates under Zipf traffic** -- one mediator serving
  constant-varying respellings of a fixed set of query shapes, bindings
  drawn from a Zipf distribution (a few hot bindings, a long cold
  tail).  Exact canonical hits serve the hot bindings, template hits
  serve first-seen bindings of a known shape; only the first query of
  each *shape* pays a planning run.  Bars: >= 80% combined hit rate,
  template hits within 2x of exact hits (neither path degenerate), and
  the per-category latencies on record.
"""

from __future__ import annotations

import random
import statistics
import time

from benchmarks.conftest import QUICK
from repro.conditions.skeleton import Skeleton
from repro.experiments.report import Table
from repro.mediator import Mediator
from repro.perf.schema import Bar, Tolerance
from repro.query import TargetQuery
from repro.ssdl.description import SourceDescription
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_SIZES = (6, 7, 8)
_PER_SIZE = 8 if QUICK else 20
_CHECK_REPEATS = 10 if QUICK else 40

_CONFIG = WorldConfig(n_attributes=8, n_rows=200 if QUICK else 1000,
                      richness=0.8, download_prob=1.0, seed=1301)

#: Zipf traffic shape: distinct query skeletons x constant bindings.
_N_SHAPES = 8
_N_BINDINGS = 60
_N_REQUESTS = 480 if QUICK else 2000
_ZIPF_S = 1.1


def _twin(description: SourceDescription, **kwargs) -> SourceDescription:
    return SourceDescription(
        description.condition_nonterminals,
        description.productions,
        description.attributes,
        name=description.name,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Part 1: compiled vs Earley Check on the E3 mix
# ----------------------------------------------------------------------

def _check_table() -> tuple[Table, dict]:
    source = make_source(_CONFIG)
    base = source.closed_description
    # Caching off on both sides: X13a measures the recognizer, not the
    # Check cache (X4 measures the cache).
    compiled = _twin(base, cache_checks=False)
    report = compiled.compile()
    assert report.compiled, report.reason
    earley = _twin(base, cache_checks=False)

    table = Table(
        "X13a: Check(C,R) -- compiled token trie vs Earley parse (E3 mix)",
        ["atoms", "conditions", "earley_us", "compiled_us", "speedup",
         "fallbacks"],
        notes=(
            "Random alternating condition trees over the synthetic world "
            f"(8 attributes, richness 0.8, download rule); best of "
            f"{_CHECK_REPEATS} sweeps per size, result caching off. The "
            f"compiled form: {report.sequences} sequences, {report.states} "
            f"states, horizon {report.horizon}. fallbacks counts "
            "conditions beyond the horizon (answered by Earley). The bar "
            "is >= 10x on the aggregate mix."
        ),
    )

    def sweep(description: SourceDescription, conditions) -> float:
        best = float("inf")
        for _ in range(_CHECK_REPEATS):
            start = time.perf_counter()
            for condition in conditions:
                description.check(condition)
            best = min(best, time.perf_counter() - start)
        return best / len(conditions)

    total_earley = total_compiled = total_conditions = 0.0
    for n_atoms in _SIZES:
        queries = make_queries(_CONFIG, source, _PER_SIZE, n_atoms,
                               seed=1301_000 + n_atoms)
        conditions = [query.condition for query in queries]
        fallbacks_before = compiled.check_fallbacks
        compiled_sec = sweep(compiled, conditions)
        fallbacks = (compiled.check_fallbacks - fallbacks_before) \
            // _CHECK_REPEATS
        earley_sec = sweep(earley, conditions)
        total_earley += earley_sec * len(conditions)
        total_compiled += compiled_sec * len(conditions)
        total_conditions += len(conditions)
        table.add(n_atoms, len(conditions), round(earley_sec * 1e6, 1),
                  round(compiled_sec * 1e6, 2),
                  round(earley_sec / compiled_sec, 1), fallbacks)

    aggregate = {
        "earley_us": total_earley / total_conditions * 1e6,
        "compiled_us": total_compiled / total_conditions * 1e6,
        "speedup": total_earley / total_compiled,
        "report": {"sequences": report.sequences, "states": report.states,
                   "horizon": report.horizon},
    }
    return table, aggregate


# ----------------------------------------------------------------------
# Part 2: plan templates under Zipf constant-varying traffic
# ----------------------------------------------------------------------

def _rebind(value, binding: int):
    """A same-class constant for binding ``binding`` (class-preserving,
    so the skeleton -- and hence the template entry -- is unchanged)."""
    if isinstance(value, str):
        return f"{value}_{binding}"
    return value + binding


def _zipf_traffic(rng: random.Random, shapes) -> list[TargetQuery]:
    """Requests: uniform over shapes, Zipf over constant bindings."""
    weights = [1.0 / (rank ** _ZIPF_S) for rank in range(1, _N_BINDINGS + 1)]
    requests = []
    for _ in range(_N_REQUESTS):
        query = rng.choice(shapes)
        binding = rng.choices(range(_N_BINDINGS), weights=weights)[0]
        skeleton = Skeleton.of(query.condition)
        values = tuple(_rebind(v, binding) for v in skeleton.values)
        requests.append(TargetQuery(
            skeleton.bind(values), query.attributes, query.source
        ))
    return requests


def _template_table() -> tuple[Table, dict]:
    source = make_source(_CONFIG)
    mediator = Mediator(plan_cache_entries=4096)
    mediator.add_source(source)
    shapes = make_queries(_CONFIG, source, _N_SHAPES, 3, seed=1302_000)
    rng = random.Random(1302)
    requests = _zipf_traffic(rng, shapes)

    latencies: dict[str, list[float]] = {
        "exact_hit": [], "template_hit": [], "planned": [],
    }
    exact_hits = 0
    for query in requests:
        hits_before = mediator.plan_cache.stats.hits
        template_before = mediator.plan_templates.hits
        start = time.perf_counter()
        result = mediator.plan(query)
        elapsed = time.perf_counter() - start
        assert result.feasible
        if mediator.plan_cache.stats.hits > hits_before:
            category = "exact_hit"
            exact_hits += 1
        elif mediator.plan_templates.hits > template_before:
            category = "template_hit"
        else:
            category = "planned"
        latencies[category].append(elapsed)

    template_hits = mediator.plan_templates.hits
    planned = len(latencies["planned"])
    combined_rate = (exact_hits + template_hits) / _N_REQUESTS

    table = Table(
        "X13b: plan templates under Zipf constant-varying traffic",
        ["category", "requests", "share", "mean_us", "p95_us"],
        notes=(
            f"{_N_REQUESTS} requests over {_N_SHAPES} query shapes x "
            f"{_N_BINDINGS} constant bindings (Zipf s={_ZIPF_S}).  "
            "exact_hit = canonical plan-cache hit (binding seen before); "
            "template_hit = new binding rebound from the shape's template "
            "(validated substitution); planned = full planning run (first "
            "query of a shape). Bars: combined hit rate >= 80%, template "
            "hits within 2x of exact hits; here combined = "
            f"{combined_rate:.1%}."
        ),
    )
    for category in ("exact_hit", "template_hit", "planned"):
        samples = latencies[category]
        if not samples:  # pragma: no cover - all categories occur
            table.add(category, 0, "0%", "-", "-")
            continue
        samples_sorted = sorted(samples)
        p95 = samples_sorted[min(len(samples) - 1,
                                 int(0.95 * len(samples)))]
        table.add(category, len(samples),
                  f"{len(samples) / _N_REQUESTS:.1%}",
                  round(statistics.mean(samples) * 1e6, 1),
                  round(p95 * 1e6, 1))

    payload = {
        "requests": _N_REQUESTS,
        "shapes": _N_SHAPES,
        "bindings": _N_BINDINGS,
        "zipf_s": _ZIPF_S,
        "exact_hits": exact_hits,
        "template_hits": template_hits,
        "planned": planned,
        "template_rejected": mediator.plan_templates.rejected,
        "combined_hit_rate": combined_rate,
        "exact_hit_mean_us":
            statistics.mean(latencies["exact_hit"]) * 1e6,
        "template_hit_mean_us":
            statistics.mean(latencies["template_hit"]) * 1e6,
        "planned_mean_us": statistics.mean(latencies["planned"]) * 1e6,
    }
    return table, payload


class _Combined:
    """Two tables, one ``benchmarks/results/x13.txt``."""

    def __init__(self, *tables):
        self.tables = tables

    def format(self) -> str:
        return "\n\n".join(table.format() for table in self.tables)


# ----------------------------------------------------------------------


def test_x13_compiled_check(record_table, record_bench):
    check_table, check_aggregate = _check_table()
    template_table, template_payload = _template_table()
    record_table("x13", _Combined(check_table, template_table))
    record_bench(
        "x13",
        metrics={
            "check.speedup": check_aggregate["speedup"],
            "check.earley_us": check_aggregate["earley_us"],
            "check.compiled_us": check_aggregate["compiled_us"],
            "templates.combined_hit_rate":
                template_payload["combined_hit_rate"],
            "templates.exact_hits": template_payload["exact_hits"],
            "templates.template_hits": template_payload["template_hits"],
            "templates.planned": template_payload["planned"],
            "templates.rejected": template_payload["template_rejected"],
            "templates.exact_hit_mean_us":
                template_payload["exact_hit_mean_us"],
            "templates.template_hit_mean_us":
                template_payload["template_hit_mean_us"],
            "templates.planned_mean_us":
                template_payload["planned_mean_us"],
            "templates.vs_exact_ratio": (
                template_payload["exact_hits"]
                / max(1, template_payload["template_hits"])
            ),
        },
        bars={
            "check.speedup": Bar(">=", 10.0),
            "templates.combined_hit_rate": Bar(">=", 0.8),
            "templates.vs_exact_ratio": Bar("<=", 2.0),
            "templates.planned": Bar("==", float(_N_SHAPES)),
        },
        tolerances={
            # The speedup ratio is machine-dependent but both sides run
            # on the same box; the Zipf hit counts are pure functions of
            # the traffic seed and barely drift.
            "check.speedup": Tolerance("higher", rel=0.5),
            "templates.combined_hit_rate": Tolerance("higher", rel=0.05),
        },
        seed=1301,
    )

    # Bar 1: compiled Check >= 10x faster than Earley on the E3 mix.
    assert check_aggregate["speedup"] >= 10.0, check_aggregate

    # Bar 2: >= 80% of Zipf traffic avoids a planning run entirely.
    assert template_payload["combined_hit_rate"] >= 0.8, template_payload

    # Bar 3: template hits within 2x of exact hits -- the template path
    # carries real traffic rather than degenerating into one-off hits.
    assert (template_payload["template_hits"] * 2.0
            >= template_payload["exact_hits"]), template_payload
    # Only the first query of each shape pays a planning run.
    assert template_payload["planned"] == _N_SHAPES


def test_x13_bench_compiled_check(benchmark):
    source = make_source(_CONFIG)
    description = _twin(source.closed_description, cache_checks=False)
    assert description.compile().compiled
    conditions = [
        query.condition
        for query in make_queries(_CONFIG, source, _PER_SIZE, 6,
                                  seed=1301_006)
    ]

    def run():
        for condition in conditions:
            description.check(condition)

    benchmark(run)
