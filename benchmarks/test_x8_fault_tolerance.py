"""X8 (extension): fault-tolerant execution over flaky sources.

The paper's sources are autonomous Internet sites; real ones fail.  This
benchmark sweeps the per-call fault probability from 0 to 0.5 and
compares two executors on the same seeded fault sequences:

* **baseline** -- the pre-resilience executor: one attempt, no failover;
* **resilient** -- retry with exponential backoff (deterministic
  jitter) plus mirror failover when a source stays dead.

The headline metric is the *recovered-query fraction*: how many of the
workload's queries produce an answer.  The sweep also demonstrates the
no-retry-on-rejection rule: capability rejections are permanent, so the
``rejected`` meter moves while ``retries`` stays at zero.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import QUICK
from repro.conditions.parser import parse_condition
from repro.errors import TransientSourceError, UnsupportedQueryError
from repro.perf.schema import Bar, Tolerance
from repro.experiments.report import Table
from repro.mediator import Mediator
from repro.multisource import MirrorGroup
from repro.plans.execute import Executor
from repro.plans.nodes import SourceQuery
from repro.plans.retry import RetryPolicy
from repro.query import parse_query
from repro.source.faults import FaultInjector
from repro.source.library import bookstore, car_guide

_N_BOOKS = 1000 if QUICK else 5000
_N_QUERIES = 100 if QUICK else 240
_RATES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
_POLICY = RetryPolicy(max_attempts=3, base_backoff=0.05, seed=7)


def _injector(p: float, seed: int) -> FaultInjector:
    """A mixed fault profile totalling probability ``p`` per call."""
    return FaultInjector(
        seed=seed,
        transient_rate=0.6 * p,
        timeout_rate=0.25 * p,
        rate_limit_rate=0.15 * p,
    )


def _queries(source) -> list:
    authors = sorted({row["author"] for row in source.relation})
    out = []
    for i in range(_N_QUERIES):
        author = authors[i % len(authors)]
        out.append(parse_query(
            f"SELECT id, title FROM bookstore WHERE author = '{author}'"
        ))
    return out


def _baseline_fraction(p: float, seed: int) -> float:
    """No-retry mediator: the pre-resilience behaviour."""
    source = bookstore(n=_N_BOOKS)
    source.fault_injector = _injector(p, seed)
    mediator = Mediator()
    mediator.add_source(source)
    answered = 0
    for query in _queries(source):
        try:
            mediator.ask(query)
            answered += 1
        except TransientSourceError:
            pass
    return answered / _N_QUERIES


def _resilient_sweep(p: float, seed: int) -> dict:
    """Retry + mirror failover over two equally flaky mirrors."""
    mirrors = []
    for index, name in enumerate(("books_a", "books_b")):
        mirror = bookstore(n=_N_BOOKS)
        mirror.name = name
        mirror.fault_injector = _injector(p, seed + index)
        mirrors.append(mirror)
    group = MirrorGroup(mirrors, retry_policy=_POLICY)
    answered = retries = failovers = 0
    backoff = 0.0
    for query in _queries(mirrors[0]):
        try:
            report = group.ask(query)
        except TransientSourceError:
            continue
        answered += 1
        retries += report.retries
        failovers += report.failovers
        backoff += report.backoff_seconds
    return {
        "fraction": answered / _N_QUERIES,
        "retries": retries,
        "failovers": failovers,
        "backoff": backoff,
    }


def _sweep_table(seed: int = 101) -> Table:
    table = Table(
        "X8: recovered-query fraction vs. per-call fault probability",
        ["p_fail", "baseline", "resilient", "retries", "failovers",
         "backoff_s"],
        notes=(
            f"{_N_QUERIES} author queries over a {_N_BOOKS}-book source; "
            "baseline = single mirror, one attempt; resilient = "
            "2 mirrors, 3 attempts with deterministic-jitter backoff + "
            "failover.  All faults drawn from seeded injectors."
        ),
    )
    for index, p in enumerate(_RATES):
        base = _baseline_fraction(p, seed + 10 * index)
        resilient = _resilient_sweep(p, seed + 10 * index)
        table.add(p, base, resilient["fraction"], resilient["retries"],
                  resilient["failovers"], resilient["backoff"])
    return table


# ----------------------------------------------------------------------

def test_x8_retry_and_failover_recover_queries(record_table, record_bench):
    table = _sweep_table()
    record_table("x8", table)
    rates = table.column("p_fail")
    baseline = dict(zip(rates, table.column("baseline")))
    resilient = dict(zip(rates, table.column("resilient")))
    retries = dict(zip(rates, table.column("retries")))
    failovers = dict(zip(rates, table.column("failovers")))
    record_bench(
        "x8",
        metrics={
            "recovered.baseline_at_p0": baseline[0.0],
            "recovered.resilient_at_p0": resilient[0.0],
            "recovered.baseline_at_p20": baseline[0.2],
            "recovered.resilient_at_p20": resilient[0.2],
            "recovered.min_advantage": min(
                resilient[p] - baseline[p] for p in rates
            ),
            "sweep.retries_at_p20": retries[0.2],
            "sweep.failovers_at_p20": failovers[0.2],
        },
        bars={
            "recovered.resilient_at_p0": Bar("==", 1.0),
            "recovered.resilient_at_p20": Bar(">=", 0.95),
            "recovered.baseline_at_p20": Bar("<=", 0.85),
            "recovered.min_advantage": Bar(">=", 0.0),
        },
        tolerances={
            # The sweep is a pure function of the seeds, so the
            # recovered fractions carry only a rounding-slack band.
            "recovered.resilient_at_p20": Tolerance("higher", rel=0.02),
            "recovered.min_advantage": Tolerance("higher", abs=0.02),
        },
        seed=101,
    )
    # No faults: both answer everything, and resilience costs nothing.
    assert baseline[0.0] == 1.0 and resilient[0.0] == 1.0
    # The acceptance bar: at a 20% per-call fault rate the resilient
    # executor still answers nearly everything, the baseline does not.
    assert resilient[0.2] >= 0.95
    assert baseline[0.2] < 0.85
    # Resilience never hurts, anywhere on the sweep.
    for p in rates:
        assert resilient[p] >= baseline[p]


def test_x8_sweep_is_deterministic():
    # Same seeds, same fault sequence, same fractions -- the whole sweep
    # is a pure function of the injector/policy seeds.
    p = 0.2
    first = _resilient_sweep(p, seed=121)
    second = _resilient_sweep(p, seed=121)
    assert first == second
    assert _baseline_fraction(p, seed=121) == _baseline_fraction(p, seed=121)


def test_x8_capability_rejections_are_never_retried():
    # The car form is order-sensitive; submitted unfixed, the source
    # rejects.  Rejections are permanent: the retry policy must not burn
    # attempts on them (rejected moves, retries stays zero).
    source = car_guide(n=200)
    executor = Executor(
        {"car_guide": source}, fix_queries=False, retry_policy=_POLICY
    )
    plan = SourceQuery(
        parse_condition("make = 'Honda' and style = 'sedan'"),
        frozenset({"id"}),
        "car_guide",
    )
    with pytest.raises(UnsupportedQueryError):
        executor.execute(plan)
    assert source.meter.rejected == 1
    assert source.meter.retries == 0
    assert source.meter.failures == 0


def test_x8_bench_resilient_execution(benchmark):
    benchmark(lambda: _resilient_sweep(0.2, seed=131))
