"""X6 (extension): capability-discovery probing economics.

How many probes does it take to learn a form's description, and how
does that scale with the number of attributes?  Probes are real queries
against the (simulated) source, so this is the price of onboarding an
undocumented source.
"""

from benchmarks.conftest import QUICK
from repro.experiments.report import Table
from repro.ssdl.discovery import discover_description
from repro.ssdl.forms import NumberField, TextField, WebForm
from repro.workloads.synthetic import WorldConfig, make_table
from repro.source.source import CapabilitySource


def _form_source(n_fields: int) -> tuple[CapabilitySource, dict]:
    config = WorldConfig(n_attributes=n_fields, n_rows=400, seed=1600)
    table = make_table(config)
    fields = []
    samples: dict[str, tuple] = {}
    for index in range(n_fields):
        name = f"a{index}"
        if index % 2 == 0:
            fields.append(TextField(name))
            samples[name] = (f"v{index}_0", f"v{index}_1")
        else:
            fields.append(NumberField(name, op="<="))
            samples[name] = (300, 700)
    form = WebForm(
        "probe_target", fields,
        exports=list(table.schema.attribute_names),
        max_filled=2,
    )
    return CapabilitySource("t", table, form.compile()), samples


def _sweep() -> Table:
    table = Table(
        "X6 (extension): discovery probes vs form width",
        ["fields", "probes sent", "accepted", "tuples moved",
         "rules inferred"],
        notes=(
            "Learning a max-2-fields form end to end; probe count grows "
            "quadratically with the candidate-template count (ordered "
            "pairs dominate)."
        ),
    )
    widths = (2, 4) if QUICK else (2, 4, 6)
    for width in widths:
        source, samples = _form_source(width)
        report = discover_description(source, source.schema, samples)
        table.add(
            width,
            report.probes_sent,
            report.probes_accepted,
            report.tuples_transferred,
            report.description.rule_count(),
        )
    return table


def test_x6_probe_scaling(benchmark, record_table):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_table("x6_discovery", table)
    probes = table.column("probes sent")
    assert all(b > a for a, b in zip(probes, probes[1:]))
    assert all(rules >= 1 for rules in table.column("rules inferred"))


def test_x6_bench_single_discovery(benchmark):
    source, samples = _form_source(3)

    def run():
        source.meter.reset()
        return discover_description(source, source.schema, samples)

    report = benchmark(run)
    assert report.probes_sent > 0
