"""X4 (ablation): the Check cache.

IPG issues Check for every child subset of every node of every CT; the
same (sub)conditions recur constantly across subsets and CTs.  DESIGN.md
relies on the description-level parse cache to keep that affordable.
This ablation plans the same query against cached and cache-disabled
descriptions and compares Earley parse counts and time.
"""

import copy
import time

from benchmarks.conftest import QUICK
from repro.experiments.common import cost_model_for
from repro.experiments.report import Table
from repro.planners.gencompact import GenCompact
from repro.ssdl.description import SourceDescription
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_CONFIG = WorldConfig(n_attributes=6, n_rows=1500, richness=0.7, seed=1301)
_SOURCE = make_source(_CONFIG)
_MODEL = cost_model_for(_SOURCE)
_QUERIES = make_queries(_CONFIG, _SOURCE, 3 if QUICK else 8, 6, seed=77)


def _uncached_clone(description: SourceDescription) -> SourceDescription:
    return SourceDescription(
        description.condition_nonterminals,
        description.productions,
        description.attributes,
        name=description.name + "-nocache",
        cache_checks=False,
    )


def _run(cache: bool) -> tuple[float, int]:
    """(total ms, actual Earley parses) planning the query batch."""
    source = copy.copy(_SOURCE)
    closed = _SOURCE.closed_description
    description = closed if cache else _uncached_clone(closed)
    if cache:
        # A fresh cached clone so prior runs don't pre-warm it.
        description = SourceDescription(
            closed.condition_nonterminals,
            closed.productions,
            closed.attributes,
            name=closed.name + "-fresh",
        )
    source._closed = description
    planner = GenCompact()
    before = description.check_calls
    started = time.perf_counter()
    for query in _QUERIES:
        planner.plan(query, source, _MODEL)
    elapsed = (time.perf_counter() - started) * 1000
    return elapsed, description.check_calls - before


def test_x4_cache_ablation(benchmark, record_table):
    def sweep() -> Table:
        table = Table(
            "X4 (ablation): description-level Check cache",
            ["configuration", "batch ms", "Earley parses"],
            notes=f"{len(_QUERIES)} six-atom queries planned with GenCompact.",
        )
        cached_ms, cached_parses = _run(cache=True)
        uncached_ms, uncached_parses = _run(cache=False)
        table.add("cache on", round(cached_ms, 1), cached_parses)
        table.add("cache off", round(uncached_ms, 1), uncached_parses)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table("x4_check_cache", table)
    (on_ms, on_parses), (off_ms, off_parses) = (
        (table.rows[0][1], table.rows[0][2]),
        (table.rows[1][1], table.rows[1][2]),
    )
    assert on_parses < off_parses
    del on_ms, off_ms  # timing shape is environment-dependent; not asserted
