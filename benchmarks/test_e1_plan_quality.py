"""E1 (Table 1): plan quality on the paper's motivating queries.

Regenerates the estimated-cost comparison across strategies and
benchmarks the headline operation: GenCompact planning Example 1.2.
"""

import math

from benchmarks.conftest import QUICK
from repro.experiments.common import cost_model_for
from repro.experiments.e1_plan_quality import run as run_e1
from repro.planners.gencompact import GenCompact
from repro.workloads.scenarios import car_scenario


def test_e1_plan_quality(benchmark, record_table):
    table = run_e1(quick=QUICK)
    record_table("e1_plan_quality", table)

    # Shape: GenCompact is feasible and cheapest on every scenario.
    by_scenario: dict = {}
    for scenario, planner, feasible, cost, *_ in table.rows:
        by_scenario.setdefault(scenario, {})[planner] = (feasible, cost)
    for scenario, entries in by_scenario.items():
        feasible, gc_cost = entries["GenCompact"]
        assert feasible == "yes" and math.isfinite(gc_cost)
        for planner, (_, cost) in entries.items():
            assert gc_cost <= cost + 1e-9, (scenario, planner)
        # DISCO and Naive cannot plan the motivating examples.
        if "Example" in scenario:
            assert entries["DISCO"][0] == "no"
            assert entries["Naive"][0] == "no"

    scenario = car_scenario(2000 if QUICK else 12000)
    cost_model = cost_model_for(scenario.source)
    planner = GenCompact()

    def plan_example_12():
        return planner.plan(scenario.query, scenario.source, cost_model)

    result = benchmark(plan_example_12)
    assert result.feasible
