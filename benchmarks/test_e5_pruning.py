"""E5 (Figure III): pruning-rule ablation.

Regenerates the PR1-PR3 ablation table and benchmarks IPG with all
pruning on vs all pruning off on the same query.
"""

from benchmarks.conftest import QUICK
from repro.experiments.common import cost_model_for
from repro.experiments.e5_pruning import run as run_e5
from repro.planners.gencompact import GenCompact
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_CONFIG = WorldConfig(n_attributes=6, n_rows=2000, richness=0.7, seed=505)
_SOURCE = make_source(_CONFIG)
_MODEL = cost_model_for(_SOURCE)
_QUERY = make_queries(_CONFIG, _SOURCE, 1, 6, seed=31)[0]


def test_e5_ablation_table(benchmark, record_table):
    table = benchmark.pedantic(run_e5, kwargs={"quick": QUICK}, rounds=1, iterations=1)
    record_table("e5_pruning", table)
    # Shape: the optimum is preserved in every configuration, and PR3
    # visibly shrinks the MCSC candidate pool.
    assert all(row[5] == "yes" for row in table.rows)
    by_config = {row[0]: row for row in table.rows}
    assert by_config["no PR3"][3] > by_config["all pruning"][3]


def test_e5_bench_all_pruning(benchmark):
    planner = GenCompact()
    result = benchmark(lambda: planner.plan(_QUERY, _SOURCE, _MODEL))
    assert result.stats.mcsc_problems >= 0


def test_e5_bench_no_pruning(benchmark):
    planner = GenCompact(pr1=False, pr2=False, pr3=False)
    result = benchmark(lambda: planner.plan(_QUERY, _SOURCE, _MODEL))
    assert result.stats.mcsc_problems >= 0
