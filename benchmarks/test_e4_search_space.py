"""E4 (Figure II): search-space size, GenModular vs GenCompact.

Regenerates the CTs/plans/Check-calls table and benchmarks the pure
search-space accounting path (EPG plan generation with Choice trees on
one CT, no rewriting) against IPG on the same CT.
"""

from benchmarks.conftest import QUICK
from repro.conditions.canonical import canonicalize
from repro.experiments.common import cost_model_for
from repro.experiments.e4_search_space import run as run_e4
from repro.planners.base import CheckCounter
from repro.planners.epg import EPG
from repro.planners.ipg import IPG
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_CONFIG = WorldConfig(n_attributes=6, n_rows=2000, richness=0.7, seed=404)
_SOURCE = make_source(_CONFIG)
_MODEL = cost_model_for(_SOURCE)
_QUERY = make_queries(_CONFIG, _SOURCE, 1, 6, seed=23)[0]
_CT = canonicalize(_QUERY.condition)


def test_e4_series(benchmark, record_table):
    table = benchmark.pedantic(run_e4, kwargs={"quick": QUICK}, rounds=1, iterations=1)
    record_table("e4_search_space", table)
    # Shape: per query, GenModular processes more CTs than GenCompact.
    assert all(row[1] >= row[4] for row in table.rows)


def test_e4_bench_epg_single_ct(benchmark):
    def run_epg():
        checker = CheckCounter(_SOURCE.closed_description)
        epg = EPG(_SOURCE.name, checker)
        return epg.generate(_CT, _QUERY.attributes)

    benchmark(run_epg)


def test_e4_bench_ipg_single_ct(benchmark):
    def run_ipg():
        checker = CheckCounter(_SOURCE.closed_description)
        ipg = IPG(_SOURCE.name, checker, _MODEL)
        return ipg.best_plan(_CT, _QUERY.attributes)

    benchmark(run_ipg)
