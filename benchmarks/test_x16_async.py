"""X16 (extension): async fan-out vs. the thread pool, and coalescing.

The thread-pool executor's concurrency is its worker count; the async
executor's is the number of coroutine frames the loop can hold --
effectively the fan-out itself.  This benchmark sweeps fan-out 100 /
1,000 (/ 10,000 with ``REPRO_BENCH_FULL=1``) of 50 ms simulated calls
through both engines and compares throughput (calls per wall-second),
then measures the single-flight coalescing hit rate on a Zipf-skewed
request mix, where most logical calls duplicate a popular constant
already in flight.

Reproducibility: seeded latency draws, one draw per physical call, and
the sweep asserts both engines were charged the identical simulated
latency -- the throughput gap is pure overlap, not the RNG.  Headline
bars: async >= parallel throughput at fan-out 1,000; with FULL, async
>= 5x parallel at fan-out 10,000; Zipf coalescing hit rate >= 0.5.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import QUICK
from repro.conditions.parser import parse_condition
from repro.experiments.report import Table
from repro.perf.schema import Bar, Tolerance
from repro.plans.async_exec import AsyncExecutor
from repro.plans.nodes import SourceQuery, UnionPlan
from repro.plans.parallel import ParallelExecutor
from repro.source.faults import SimulatedLatency
from repro.source.library import bookstore

_FANOUTS = [100, 1000] if QUICK else [100, 1000, 10000]
_LATENCY_MS = 50
_WORKERS = 64  # a generous pool; async needs no tuning knob at all
_N_BOOKS = 30  # tiny relation: per-call CPU must not mask the overlap

ATTRS = frozenset({"id", "title"})


def _world(fanout: int, seed: int = 77):
    """Four mirrored sources, ``fanout`` *distinct* leaves spread over
    them (nothing to coalesce -- this sweep measures raw fan-out)."""
    catalog = {}
    for index in range(4):
        source = bookstore(n=_N_BOOKS, seed=1999)
        source.name = f"s{index}"
        source.latency = SimulatedLatency(
            seed=seed + index, base=_LATENCY_MS / 1000.0,
            jitter=_LATENCY_MS / 5000.0,
        )
        catalog[source.name] = source
    plan = UnionPlan([
        SourceQuery(
            parse_condition(f"author = 'nobody-{index}'"),
            ATTRS, f"s{index % 4}",
        )
        for index in range(fanout)
    ])
    return catalog, plan


def _timed(executor, plan) -> tuple[float, frozenset]:
    start = time.perf_counter()
    result = executor.execute(plan)
    return time.perf_counter() - start, result.as_row_set()


def _measure(fanout: int) -> dict:
    catalog, plan = _world(fanout)
    with ParallelExecutor(catalog, max_workers=_WORKERS) as executor:
        t_parallel, parallel_rows = _timed(executor, plan)
    parallel_slept = sum(s.latency.slept_seconds for s in catalog.values())
    for source in catalog.values():
        source.latency.reset()
    with AsyncExecutor(catalog) as executor:
        t_async, async_rows = _timed(executor, plan)
    async_slept = sum(s.latency.slept_seconds for s in catalog.values())
    assert async_rows == parallel_rows
    # Same seeds, same per-source call counts: both engines were charged
    # the identical simulated latency -- the gap is pure overlap.
    assert abs(parallel_slept - async_slept) < 1e-9
    return {
        "parallel": t_parallel,
        "async": t_async,
        "throughput_parallel": fanout / t_parallel,
        "throughput_async": fanout / t_async,
        "ratio": t_parallel / t_async,
        "slept": parallel_slept,
    }


def _zipf_constants(calls: int, ranks: int, seed: int = 77) -> list[str]:
    """A seeded Zipf(1) draw: constant ``author-r`` with weight 1/r."""
    rng = random.Random(seed)
    population = [f"author-{rank}" for rank in range(1, ranks + 1)]
    weights = [1.0 / rank for rank in range(1, ranks + 1)]
    return rng.choices(population, weights=weights, k=calls)


def _measure_coalescing(calls: int = 500, ranks: int = 50) -> dict:
    source = bookstore(n=_N_BOOKS, seed=1999)
    source.latency = SimulatedLatency(seed=77, base=_LATENCY_MS / 1000.0)
    constants = _zipf_constants(calls, ranks)
    plan = UnionPlan([
        SourceQuery(
            parse_condition(f"author = '{constant}'"), ATTRS, "bookstore"
        )
        for constant in constants
    ])
    with AsyncExecutor({"bookstore": source}) as executor:
        report = executor.execute_with_report(plan)
        stats = executor.coalesce_stats
    distinct = len(set(constants))
    # Every duplicate coalesced: the whole union is in flight together,
    # so the physical-call count collapses to the distinct constants.
    assert source.meter.snapshot().queries == distinct
    assert report.queries == distinct
    assert report.coalesced_hits == calls - distinct
    return {
        "logical": calls,
        "distinct": distinct,
        "flights": stats.flights,
        "hits": stats.coalesced_hits,
        "hit_rate": stats.hit_rate(),
    }


# ----------------------------------------------------------------------


def test_x16_async_beats_the_pool_at_scale(record_table, record_bench):
    table = Table(
        "X16: thread-pool vs. async executor throughput, 50 ms calls",
        ["fanout", "parallel_s", "async_s", "tp_parallel", "tp_async",
         "ratio", "slept_s"],
        notes=(
            f"One Union plan of `fanout` distinct 50 ms calls over 4 "
            f"mirrored bookstore sources ({_N_BOOKS} rows each); the "
            f"pool runs {_WORKERS} workers, the async engine one event "
            "loop.  tp_* is calls per wall-second; ratio = async / "
            "parallel throughput; slept_s is the seeded simulated "
            "latency, identical for both engines by construction."
        ),
    )
    measures = {}
    for fanout in _FANOUTS:
        m = _measure(fanout)
        measures[fanout] = m
        table.add(fanout, round(m["parallel"], 4), round(m["async"], 4),
                  round(m["throughput_parallel"], 1),
                  round(m["throughput_async"], 1),
                  round(m["ratio"], 2), round(m["slept"], 3))
    record_table("x16", table)

    coalescing = _measure_coalescing()
    metrics = {
        "coalesce.logical_calls": coalescing["logical"],
        "coalesce.physical_flights": coalescing["flights"],
        "coalesce.hit_rate": round(coalescing["hit_rate"], 4),
    }
    for fanout, m in measures.items():
        metrics[f"throughput.parallel.fanout_{fanout}"] = \
            round(m["throughput_parallel"], 1)
        metrics[f"throughput.async.fanout_{fanout}"] = \
            round(m["throughput_async"], 1)
        metrics[f"ratio.fanout_{fanout}"] = round(m["ratio"], 2)
    bars = {
        # Past the pool size the async engine must at least keep up ...
        "ratio.fanout_1000": Bar(">=", 1.0),
        "coalesce.hit_rate": Bar(">=", 0.5),
    }
    if 10000 in measures:
        # ... and at 10,000 concurrent calls it must win outright (the
        # issue's acceptance headline; FULL runs only).
        bars["ratio.fanout_10000"] = Bar(">=", 5.0)
    record_bench(
        "x16",
        metrics=metrics,
        bars=bars,
        tolerances={
            # Tolerances only on metrics every configuration (QUICK and
            # FULL) emits, so the CI smoke run can reproduce each key.
            "ratio.fanout_1000": Tolerance("higher", rel=0.5),
            "coalesce.hit_rate": Tolerance("higher", rel=0.1),
        },
        seed=77,
    )
    assert measures[1000]["ratio"] >= 1.0
    if 10000 in measures:
        assert measures[10000]["ratio"] >= 5.0
    assert coalescing["hit_rate"] >= 0.5


def test_x16_bench_async_union(benchmark):
    catalog, plan = _world(fanout=64)
    for source in catalog.values():
        source.latency = SimulatedLatency(seed=1, base=0.005)
    with AsyncExecutor(catalog) as executor:
        benchmark(lambda: executor.execute(plan))
