"""E10 (Figure VI): cost-model sensitivity -- the plan crossover.

Regenerates the k1 sweep on Example 1.2 and benchmarks GenCompact
replanning under a changed cost model (the operation a mediator performs
when a source's observed latency shifts).
"""

from benchmarks.conftest import QUICK
from repro.experiments.e10_cost_sensitivity import run as run_e10
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.workloads.scenarios import car_scenario

_SCENARIO = car_scenario(2000)
_MODELS = [
    CostModel({_SCENARIO.source.name: _SCENARIO.source.stats}, k1=float(k1))
    for k1 in (1, 100, 2000, 20000)
]


def test_e10_crossover(benchmark, record_table):
    table = benchmark.pedantic(run_e10, kwargs={"quick": QUICK}, rounds=1,
                               iterations=1)
    record_table("e10_cost_sensitivity", table)
    # GenCompact always sits on or below the baseline envelope...
    assert all(row[5] == "yes" for row in table.rows)
    # ...and the chosen query count is non-increasing in k1 (fewer,
    # bigger queries as the per-query overhead grows).
    queries = table.column("GC queries")
    assert all(b <= a for a, b in zip(queries, queries[1:]))
    # The crossover actually happens inside the sweep.
    assert queries[0] > queries[-1]


def test_e10_bench_replanning_under_new_constants(benchmark):
    planner = GenCompact()

    def replan_all():
        return [
            planner.plan(_SCENARIO.query, _SCENARIO.source, model)
            for model in _MODELS
        ]

    results = benchmark(replan_all)
    assert all(r.feasible for r in results)
