"""X15 (extension): the price of the continuous profiler.

The profiling subsystem's contract is "off by default, free when off":
an uninstrumented mediator runs the exact same code paths and lock
objects as before the profiler existed, and ``ProfilingSession.stop()``
restores that state bit-for-bit.  This benchmark pins the claim:

* **macro** -- wall-clock for a batch of plan+execute cycles on the
  standard catalog, three ways: *baseline* (NullTracer, never
  profiled), *after-stop* (a full profiling session installed and then
  stopped before measuring -- must price like baseline), and *enabled*
  (recording tracer + phase/lock profilers live).  Bars: the
  after-stop run stays within 15% of baseline (pure scheduler noise;
  the code paths are identical), the enabled run within 2x.
* **micro** -- per-acquire cost of an *uncontended* :class:`ProfiledLock`
  vs the plain ``threading.Lock`` it wraps, in nanoseconds.  The bar
  mirrors X10's null-primitive ceiling: < 5 us per profiled acquire.
* **coverage** -- the enabled run actually profiled: every headline
  phase aggregated spans, every wrapped site recorded acquires.
"""

from __future__ import annotations

import threading
import time
import timeit

from benchmarks.conftest import QUICK
from repro.experiments.report import Table
from repro.mediator import Mediator
from repro.observability import (
    ContentionProfiler,
    MetricsRegistry,
    PhaseProfiler,
    ProfiledLock,
    Tracer,
    profile_mediator,
    use_metrics,
    use_tracer,
)
from repro.perf.schema import Bar, Tolerance
from repro.source.library import standard_catalog

_QUERIES = [
    "SELECT title FROM bookstore WHERE author = 'Carl Jung' "
    "or author = 'Sigmund Freud'",
    "SELECT model FROM car_guide WHERE make = 'BMW' and price < 40000",
    "SELECT owner FROM bank WHERE account_no = 42",
    "SELECT title FROM bookstore WHERE subject = 'philosophy' "
    "and title contains 'dream'",
]

_ROUNDS = 20 if QUICK else 150
_MACRO_REPEATS = 3
_MICRO_CALLS = 100_000 if QUICK else 500_000

#: Phases the macro workload must light up when profiling is on.
_EXPECTED_PHASES = ("ask", "plan", "execute", "source.service")


def _mediator() -> Mediator:
    # Serving knobs on, so every hot-lock site (plan cache, templates,
    # check caches, admission) exists to be wrapped.
    mediator = Mediator(plan_cache_entries=256, max_in_flight=8,
                        admission_timeout=30.0)
    for source in standard_catalog(seed=1999).values():
        mediator.add_source(source)
    return mediator


def _run_batch(mediator: Mediator, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        for query in _QUERIES:
            mediator.ask(query)
    return time.perf_counter() - start


def _best_batch(mediator: Mediator) -> float:
    return min(_run_batch(mediator, _ROUNDS) for _ in range(_MACRO_REPEATS))


def _macro() -> dict:
    """Baseline vs after-stop vs enabled, best-of-N each."""
    mediator = _mediator()
    _run_batch(mediator, 2)  # warm caches, stats, lazy imports

    with use_metrics(MetricsRegistry()):
        t_baseline = _best_batch(mediator)

    # Install the full session, stop it, then measure: the contract is
    # that stop() leaves no residue -- same locks, NullTracer untouched.
    with use_metrics(MetricsRegistry()):
        with use_tracer(Tracer()) as tracer:
            profile_mediator(mediator, tracer).stop()
        t_stopped = _best_batch(mediator)
    lock_type = type(mediator.plan_cache._lock).__name__

    with use_metrics(MetricsRegistry()):
        with use_tracer(Tracer()) as tracer:
            session = profile_mediator(mediator, tracer)
            try:
                t_enabled = _best_batch(mediator)
            finally:
                phases = session.phases.snapshot()
                sites = session.locks.sites()
                session.stop()

    return {
        "baseline_s": t_baseline,
        "stopped_s": t_stopped,
        "enabled_s": t_enabled,
        "disabled_overhead": (t_stopped - t_baseline) / t_baseline,
        "enabled_overhead": (t_enabled - t_baseline) / t_baseline,
        "phases": phases,
        "sites": sites,
        "restored_lock_type": lock_type,
    }


def _micro() -> dict:
    """Uncontended acquire/release: plain lock vs ProfiledLock, ns."""
    registry = MetricsRegistry()
    plain = threading.Lock()
    profiler = ContentionProfiler(registry=registry)
    holder = type("Holder", (), {"_lock": threading.Lock()})()
    profiled = profiler.wrap(holder, "_lock", "bench")
    assert isinstance(profiled, ProfiledLock)

    def plain_cycle():
        plain.acquire()
        plain.release()

    def profiled_cycle():
        profiled.acquire()
        profiled.release()

    results = {}
    for name, fn in [("plain_lock", plain_cycle),
                     ("profiled_lock", profiled_cycle)]:
        best = min(timeit.repeat(fn, number=_MICRO_CALLS, repeat=3))
        results[f"{name}_ns"] = best / _MICRO_CALLS * 1e9
    profiler.uninstall()
    results["acquires_recorded"] = registry.histogram(
        "profile.lock.bench.wait_seconds"
    ).snapshot()["count"]
    return results


def _table() -> tuple[Table, dict, dict]:
    macro = _macro()
    micro = _micro()
    table = Table(
        "X15: continuous-profiler overhead -- off, stopped, and on",
        ["measure", "value", "unit"],
        notes=(
            f"Macro: best of {_MACRO_REPEATS} x ({_ROUNDS} rounds x "
            f"{len(_QUERIES)} queries) of plan+execute on the standard "
            "catalog. baseline = NullTracer, never profiled; stopped = a "
            "full profiling session installed then stopped first (the "
            "off-by-default contract: same code paths as baseline); "
            "enabled = recording tracer + phase/lock profilers live.  "
            "Micro: best-of-3 per-acquire cost of an uncontended "
            "ProfiledLock vs the plain threading.Lock it wraps."
        ),
    )
    table.add("macro baseline", round(macro["baseline_s"], 4), "s")
    table.add("macro after stop()", round(macro["stopped_s"], 4), "s")
    table.add("macro profiling enabled", round(macro["enabled_s"], 4), "s")
    table.add("disabled overhead",
              round(macro["disabled_overhead"] * 100, 2), "%")
    table.add("enabled overhead",
              round(macro["enabled_overhead"] * 100, 2), "%")
    table.add("phases aggregated", len(macro["phases"]), "phases")
    table.add("lock sites live", len(macro["sites"]), "sites")
    table.add("micro plain lock", round(micro["plain_lock_ns"], 1),
              "ns/acquire")
    table.add("micro profiled lock", round(micro["profiled_lock_ns"], 1),
              "ns/acquire")
    return table, macro, micro


# ----------------------------------------------------------------------


def test_x15_profiler_overhead(record_table, record_bench):
    table, macro, micro = _table()
    record_table("x15", table)
    record_bench(
        "x15",
        metrics={
            "macro.disabled_overhead": macro["disabled_overhead"],
            "macro.enabled_overhead": macro["enabled_overhead"],
            "macro.phases": len(macro["phases"]),
            "macro.lock_sites": len(macro["sites"]),
            "micro.plain_lock_ns": micro["plain_lock_ns"],
            "micro.profiled_lock_ns": micro["profiled_lock_ns"],
        },
        bars={
            "macro.disabled_overhead": Bar("<=", 0.15),
            "macro.enabled_overhead": Bar("<=", 1.0),
            "macro.phases": Bar(">=", float(len(_EXPECTED_PHASES))),
            "macro.lock_sites": Bar(">=", 3.0),
            "micro.profiled_lock_ns": Bar("<=", 5_000.0),
        },
        tolerances={
            # All timings here are machine noise around structural
            # equality; the bars are the gate, the bands catch blowups.
            "macro.disabled_overhead": Tolerance("lower", abs=0.10),
            "micro.profiled_lock_ns": Tolerance("lower", rel=3.0),
        },
    )

    # The off-by-default contract: a stopped session leaves the exact
    # pre-profiling lock objects behind and prices like baseline.
    assert macro["restored_lock_type"] != "ProfiledLock"
    assert macro["disabled_overhead"] <= 0.15, (
        f"stopped profiler cost {macro['disabled_overhead']:.1%} "
        "over the never-profiled baseline"
    )
    # Profiling on is observably *working*, and still affordable.
    assert macro["enabled_overhead"] <= 1.0, macro
    for phase in _EXPECTED_PHASES:
        assert phase in macro["phases"], sorted(macro["phases"])
        assert macro["phases"][phase].spans > 0
    # The warm workload hits the plan cache exactly, so the template
    # path stays idle; every other site must have recorded waits.
    for site in ("plan_cache", "check_cache", "admission"):
        assert macro["sites"][site]["acquires"] > 0, macro["sites"]
    # The profiled acquire is a cheap timed wrapper, not a lock queue.
    assert micro["profiled_lock_ns"] < 5_000
    assert micro["acquires_recorded"] == 3 * _MICRO_CALLS


def test_x15_phase_profiler_requires_recording_tracer():
    from repro.observability import get_tracer

    profiler = PhaseProfiler(registry=MetricsRegistry())
    try:
        profiler.install(get_tracer())  # the NullTracer
    except ValueError:
        pass
    else:  # pragma: no cover - contract violation
        raise AssertionError("installed on a NullTracer")
    assert not profiler.installed


def test_x15_bench_profiled_ask(benchmark):
    mediator = _mediator()
    query = _QUERIES[0]
    with use_metrics(MetricsRegistry()):
        with use_tracer(Tracer()) as tracer:
            with profile_mediator(mediator, tracer):
                mediator.ask(query)  # warm
                benchmark(lambda: mediator.ask(query))
