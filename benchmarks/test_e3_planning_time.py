"""E3 (Figure I): plan-generation time, GenCompact vs GenModular.

Regenerates the time-vs-query-size series and benchmarks both schemes
on a fixed 6-atom query so their relative speed lands in the
pytest-benchmark report.
"""

from benchmarks.conftest import QUICK
from repro.experiments.common import cost_model_for
from repro.experiments.e3_planning_time import run as run_e3
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

_CONFIG = WorldConfig(n_attributes=6, n_rows=2000, richness=0.7, seed=404)
_SOURCE = make_source(_CONFIG)
_MODEL = cost_model_for(_SOURCE)
_QUERY = make_queries(_CONFIG, _SOURCE, 1, 6, seed=17)[0]


def test_e3_series(benchmark, record_table):
    table = benchmark.pedantic(run_e3, kwargs={"quick": QUICK}, rounds=1, iterations=1)
    record_table("e3_planning_time", table)
    # Shape: GenModular never finds a cheaper plan than GenCompact.
    assert all(row[7] == 0 for row in table.rows)


def test_e3_bench_gencompact(benchmark):
    planner = GenCompact()
    result = benchmark(lambda: planner.plan(_QUERY, _SOURCE, _MODEL))
    assert result.stats.cts_processed >= 1


def test_e3_bench_genmodular(benchmark):
    planner = GenModular(max_rewrites=60, use_closed_description=True)
    result = benchmark(lambda: planner.plan(_QUERY, _SOURCE, _MODEL))
    assert result.stats.cts_processed >= 1
