"""X1 (extension, not in the paper): wrapper plan-template reuse.

Section 2 argues wrappers must embed a GenCompact-like scheme.  A
wrapper serves many instances of the same query template; this bench
measures the payoff of instantiating a cached same-skeleton plan
(substitute constants + re-validate) instead of replanning, and asserts
the two paths return plans of identical shape.
"""

from repro.conditions.parser import parse_condition
from repro.source.library import car_guide
from repro.wrapper import Wrapper

_SOURCE = car_guide(n=2000)

_TEMPLATE = (
    "style = 'sedan' and (size = 'compact' or size = 'midsize') and "
    "make = '{make}' and price <= {price}"
)
_INSTANCES = [
    parse_condition(_TEMPLATE.format(make=make, price=price))
    for make in ("Toyota", "BMW", "Honda", "Ford", "Mercedes", "Volkswagen")
    for price in (15000, 25000, 40000)
]
_ATTRS = ["id", "make", "model", "price"]


def test_x1_reuse_matches_replanning():
    with_reuse = Wrapper(car_guide(n=2000))
    without = Wrapper(car_guide(n=2000), reuse_templates=False)
    for condition in _INSTANCES:
        reused = with_reuse.plan(condition, _ATTRS)
        planned = without.plan(condition, _ATTRS)
        assert reused.feasible == planned.feasible
        if reused.feasible:
            assert len(list(reused.plan.source_queries())) == len(
                list(planned.plan.source_queries())
            )
    assert with_reuse.template_hits == len(_INSTANCES) - 1
    assert without.template_hits == 0


def test_x1_bench_with_template_reuse(benchmark):
    def run():
        wrapper = Wrapper(_SOURCE, reuse_templates=True)
        return [wrapper.plan(c, _ATTRS) for c in _INSTANCES]

    results = benchmark(run)
    assert all(r.feasible for r in results)


def test_x1_bench_without_template_reuse(benchmark):
    def run():
        wrapper = Wrapper(_SOURCE, reuse_templates=False)
        return [wrapper.plan(c, _ATTRS) for c in _INSTANCES]

    results = benchmark(run)
    assert all(r.feasible for r in results)
