"""X14 (extension): the named workload scenarios and their batteries.

One run of each named scenario (``repro.workloads.named``) plus its
correctness battery, summarized into ``benchmarks/results/x14.txt`` and
``BENCH_x14.json`` (what the CI smoke step parses).  The bars:

* **dynamic_federation** -- zero stale plan serves, in the seeded run
  *and* under the 16-thread concurrent-drift battery; the plan-cache
  hit rate under drift stays above a floor while the no-drift baseline
  of the same traffic stays high (drift costs hit rate, bounded, not
  everything);
* **adversarial_ssdl** -- zero compiled/Earley parity mismatches, with
  the budget and horizon hatches both actually exercised and the
  registry counters reconciling exactly with per-description counters;
* **zipf_traffic** -- exact completed+shed+errors accounting through
  the load harness, gated and ungated;
* **minimal_answers** -- pruned == unpruned answer sets on every query,
  with at least one branch actually pruned and every prune saving
  source queries.
"""

from __future__ import annotations

import random

from benchmarks.conftest import QUICK
from repro.experiments.report import Table
from repro.mediator import Mediator
from repro.perf.schema import Bar, Tolerance
from repro.workloads.adversarial import AdversarialSSDLWorkload
from repro.workloads.federation import (
    DriftingCatalog,
    DynamicFederationWorkload,
    oracle_ask,
)
from repro.workloads.minimal_answers import MinimalAnswerWorkload
from repro.workloads.replay import ZipfTrafficWorkload

_SEED = 1404

_FED_ROUNDS = 240 if QUICK else 960
_FED_DRIFTS = 8 if QUICK else 24
_ADV_GRAMMARS = 4 if QUICK else 8
_ADV_CONDITIONS = 32 if QUICK else 64
_ZIPF_REQUESTS = 240 if QUICK else 1200
_MIN_QUERIES = 48 if QUICK else 150

_BARS = {
    "stale_serves_max": 0,
    "parity_mismatches_max": 0,
    "drift_hit_rate_min": 0.05,
    "baseline_hit_rate_min": 0.5,
    "branches_pruned_min": 1,
}


def _federation() -> dict:
    drifting = DynamicFederationWorkload(
        seed=_SEED, rounds=_FED_ROUNDS, drift_every=8, n_rows=120)
    summary = drifting.run().summary
    # Same traffic, catalog frozen: the hit-rate baseline drift is
    # measured against.
    frozen = DynamicFederationWorkload(
        seed=_SEED, rounds=_FED_ROUNDS, drift_every=0, n_rows=120)
    baseline = frozen.run().summary
    battery = DynamicFederationWorkload(seed=_SEED, n_rows=80).battery(
        threads=16, drifts_per_driver=_FED_DRIFTS)
    return {
        "rounds": summary["rounds"],
        "drift_events": summary["drift_events"],
        "stale_serves": summary["stale_serves"]
        + battery["stale_serves"],
        "hit_rate": summary["hit_rate"],
        "baseline_hit_rate": baseline["hit_rate"],
        "battery_asks": battery["asks"],
        "battery_threads": battery["threads"],
    }


def test_x14_workloads(record_table, record_bench):
    federation = _federation()
    adversarial = AdversarialSSDLWorkload(
        seed=_SEED, n_grammars=_ADV_GRAMMARS,
        conditions_per_grammar=_ADV_CONDITIONS).battery()
    zipf = ZipfTrafficWorkload(
        seed=_SEED, n_requests=_ZIPF_REQUESTS, duration=0.8).battery()
    minimal = MinimalAnswerWorkload(
        seed=_SEED, n_queries=_MIN_QUERIES).battery()

    table = Table(
        "X14: named workload scenarios -- batteries and bars",
        ["workload", "volume", "violations", "headline"],
        notes=(
            "Each named workload's seeded run + correctness battery. "
            "volume = asks/checks/requests/queries the battery drove; "
            "violations sums every property the battery checks (stale "
            "serves, parity mismatches, accounting gaps, answer "
            "mismatches) -- the bar for all of them is zero."
        ),
    )
    table.add(
        "dynamic_federation",
        federation["rounds"] + federation["battery_asks"],
        federation["stale_serves"],
        f"hit rate {federation['hit_rate']:.2f} under drift vs "
        f"{federation['baseline_hit_rate']:.2f} frozen; "
        f"{federation['battery_threads']} threads",
    )
    table.add(
        "adversarial_ssdl",
        adversarial["parity_checks"],
        adversarial["parity_mismatches"],
        f"{adversarial['closure_rules']} closure rules from "
        f"{adversarial['native_rules']}; "
        f"{adversarial['budget_exceeded']} budget hits, "
        f"{adversarial['fallbacks']} fallbacks",
    )
    table.add(
        "zipf_traffic",
        zipf["requests"],
        0 if zipf["accounting_exact"] else 1,
        f"{zipf['gated_completed']} completed / {zipf['gated_shed']} "
        f"shed / {zipf['gated_errors']} errors, reconciled",
    )
    table.add(
        "minimal_answers",
        minimal["queries"],
        minimal["mismatched_answers"] + minimal["regressions"],
        f"{minimal['branches_pruned']} branches pruned, "
        f"{minimal['source_queries_saved']} source queries saved",
    )
    record_table("x14", table)
    record_bench(
        "x14",
        metrics={
            "federation.stale_serves": federation["stale_serves"],
            "federation.hit_rate": federation["hit_rate"],
            "federation.baseline_hit_rate":
                federation["baseline_hit_rate"],
            "federation.drift_events": federation["drift_events"],
            "adversarial.parity_checks": adversarial["parity_checks"],
            "adversarial.parity_mismatches":
                adversarial["parity_mismatches"],
            "adversarial.budget_exceeded": adversarial["budget_exceeded"],
            "adversarial.fallbacks": adversarial["fallbacks"],
            "adversarial.accounting_exact":
                adversarial["accounting_exact"],
            "zipf.requests": zipf["requests"],
            "zipf.accounting_exact": zipf["accounting_exact"],
            "minimal.queries": minimal["queries"],
            "minimal.branches_pruned": minimal["branches_pruned"],
            "minimal.mismatched_answers": minimal["mismatched_answers"],
            "minimal.source_queries_saved":
                minimal["source_queries_saved"],
        },
        bars={
            "federation.stale_serves":
                Bar("<=", float(_BARS["stale_serves_max"])),
            "federation.hit_rate":
                Bar(">=", _BARS["drift_hit_rate_min"]),
            "federation.baseline_hit_rate":
                Bar(">=", _BARS["baseline_hit_rate_min"]),
            "adversarial.parity_mismatches":
                Bar("<=", float(_BARS["parity_mismatches_max"])),
            "adversarial.accounting_exact": Bar("==", 1.0),
            "zipf.accounting_exact": Bar("==", 1.0),
            "minimal.branches_pruned":
                Bar(">=", float(_BARS["branches_pruned_min"])),
            "minimal.mismatched_answers": Bar("==", 0.0),
        },
        tolerances={
            # Seeded runs: the hit rates are deterministic up to thread
            # interleaving in the battery, so the bands stay tight.
            "federation.hit_rate": Tolerance("higher", rel=0.05),
            "federation.baseline_hit_rate": Tolerance("higher", rel=0.05),
            "minimal.source_queries_saved": Tolerance("higher", rel=0.05),
        },
        seed=_SEED,
    )

    # Bar 1: no stale plan is ever served -- seeded run or 16 threads.
    assert federation["stale_serves"] <= _BARS["stale_serves_max"], \
        federation
    # Bar 2: drift costs hit rate, boundedly; frozen traffic stays hot.
    assert federation["hit_rate"] >= _BARS["drift_hit_rate_min"], federation
    assert federation["baseline_hit_rate"] \
        >= _BARS["baseline_hit_rate_min"], federation
    assert federation["baseline_hit_rate"] > federation["hit_rate"], \
        federation
    # Bar 3: the compiled recognizer is invisible under hostility.
    assert adversarial["parity_mismatches"] \
        <= _BARS["parity_mismatches_max"], adversarial
    assert adversarial["accounting_exact"], adversarial
    # Bar 4: load accounting is exact (asserted in the battery too).
    assert zipf["accounting_exact"], zipf
    # Bar 5: pruning fires and never changes an answer.
    assert minimal["branches_pruned"] >= _BARS["branches_pruned_min"], \
        minimal
    assert minimal["mismatched_answers"] == 0, minimal


def test_x14_bench_drift_ask(benchmark):
    """The hot path the federation oracle exercises: one ask against a
    freshly drifted catalog (replan + recompile amortized in)."""
    mediator = Mediator(plan_cache_entries=128)
    catalog = DriftingCatalog(mediator, seed=_SEED, n_rows=80)
    rng = random.Random(_SEED)
    ticks = {"count": 0}

    def run():
        ticks["count"] += 1
        if ticks["count"] % 8 == 0:
            catalog.drift()
        query = catalog.pick_query(rng)
        assert query is not None
        oracle_ask(mediator, query)

    benchmark(run)
