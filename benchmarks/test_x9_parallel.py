"""X9 (extension): parallel plan execution under simulated source latency.

The paper's cost model charges per round-trip; the serial executor pays
round-trips *in series*.  This benchmark attaches a seeded
:class:`SimulatedLatency` to every source (each call really sleeps its
drawn delay) and sweeps worker count x branch fan-out x per-call
latency, comparing serial and parallel wall-clock on the same Union
plan.

Reproducibility: the delay sequence is a pure function of each source's
latency seed, and both executors consume exactly one draw per source
call -- the sweep asserts the serial and parallel runs were charged the
*identical* total simulated latency, so the measured speedup is the
executor's doing, not the RNG's.  The headline acceptance bar: >= 2x
speedup at fan-out >= 4 with 50 ms calls.
"""

from __future__ import annotations

import time

from benchmarks.conftest import QUICK
from repro.conditions.parser import parse_condition
from repro.experiments.report import Table
from repro.perf.schema import Bar, Tolerance
from repro.plans.execute import Executor
from repro.plans.nodes import SourceQuery, UnionPlan
from repro.plans.parallel import ParallelExecutor
from repro.source.faults import SimulatedLatency
from repro.source.library import bookstore

_N_BOOKS = 150 if QUICK else 1000
_FANOUTS = [2, 4, 8] if QUICK else [2, 4, 8, 16]
_LATENCIES_MS = [10, 50] if QUICK else [10, 50, 100]
_WORKERS = [4, 8] if QUICK else [4, 8, 16]

ATTRS = frozenset({"id", "title"})
COND = parse_condition("author = 'Carl Jung'")


def _world(fanout: int, latency_ms: float, seed: int = 77):
    """``fanout`` mirrored sources, each charging a seeded delay."""
    catalog = {}
    for index in range(fanout):
        source = bookstore(n=_N_BOOKS, seed=1999)
        source.name = f"s{index}"
        source.latency = SimulatedLatency(
            seed=seed + index, base=latency_ms / 1000.0,
            jitter=latency_ms / 5000.0,
        )
        catalog[source.name] = source
    plan = UnionPlan(
        [SourceQuery(COND, ATTRS, name) for name in sorted(catalog)]
    )
    return catalog, plan


def _timed(executor, plan) -> tuple[float, frozenset]:
    start = time.perf_counter()
    result = executor.execute(plan)
    return time.perf_counter() - start, result.as_row_set()


def _measure(fanout: int, latency_ms: float, workers: int) -> dict:
    catalog, plan = _world(fanout, latency_ms)
    t_serial, serial_rows = _timed(Executor(catalog), plan)
    serial_slept = sum(s.latency.slept_seconds for s in catalog.values())
    for source in catalog.values():
        source.latency.reset()
    with ParallelExecutor(catalog, max_workers=workers) as executor:
        t_parallel, parallel_rows = _timed(executor, plan)
    parallel_slept = sum(s.latency.slept_seconds for s in catalog.values())
    assert parallel_rows == serial_rows
    # Same seeds, same draws: the two runs were charged the identical
    # simulated latency -- the wall-clock gap is pure overlap.
    assert abs(serial_slept - parallel_slept) < 1e-9
    return {
        "serial": t_serial,
        "parallel": t_parallel,
        "speedup": t_serial / t_parallel,
        "slept": serial_slept,
    }


def _sweep_table() -> Table:
    table = Table(
        "X9: serial vs. parallel wall-clock under simulated source latency",
        ["fanout", "latency_ms", "workers", "serial_s", "parallel_s",
         "speedup", "slept_s"],
        notes=(
            "One Union plan over `fanout` mirrored bookstore sources "
            f"({_N_BOOKS} rows each); every source call sleeps a seeded "
            "delay of latency_ms (+/- 20% jitter).  slept_s is the total "
            "simulated latency charged -- identical for serial and "
            "parallel by construction, so speedup measures overlap only."
        ),
    )
    for fanout in _FANOUTS:
        for latency_ms in _LATENCIES_MS:
            for workers in _WORKERS:
                m = _measure(fanout, latency_ms, workers)
                table.add(fanout, latency_ms, workers,
                          round(m["serial"], 4), round(m["parallel"], 4),
                          round(m["speedup"], 2), round(m["slept"], 3))
    return table


# ----------------------------------------------------------------------


def test_x9_parallel_speedup_at_fanout_4(record_table, record_bench):
    table = _sweep_table()
    record_table("x9", table)
    rows = list(zip(
        table.column("fanout"), table.column("latency_ms"),
        table.column("workers"), table.column("speedup"),
    ))
    covered = [
        speedup for fanout, latency_ms, workers, speedup in rows
        if fanout >= 4 and latency_ms >= 50 and workers >= fanout
    ]
    record_bench(
        "x9",
        metrics={
            "speedup.min_covered_50ms": min(covered),
            "speedup.max": max(s for *_, s in rows),
            "speedup.min": min(s for *_, s in rows),
            "sweep.configurations": len(rows),
        },
        bars={
            "speedup.min_covered_50ms": Bar(">=", 2.0),
            "speedup.min": Bar(">=", 0.8),
        },
        tolerances={
            # Wall-clock overlap of seeded sleeps: robust across
            # machines, but give scheduling noise a wide band.
            "speedup.min_covered_50ms": Tolerance("higher", rel=0.4),
        },
        seed=77,
    )
    # The acceptance bar: >= 2x at fan-out >= 4 with 50 ms calls and
    # enough workers to cover the fan-out.
    for fanout, latency_ms, workers, speedup in rows:
        if fanout >= 4 and latency_ms >= 50 and workers >= fanout:
            assert speedup >= 2.0, (
                f"fanout={fanout} latency={latency_ms}ms workers={workers}: "
                f"only {speedup}x"
            )
    # And parallel never loses badly anywhere on the sweep (overheads
    # are bounded even at fan-out 2 / 10 ms).
    for fanout, latency_ms, workers, speedup in rows:
        assert speedup > 0.8


def test_x9_latency_accounting_is_seeded_and_reproducible():
    first = _measure(4, 20, workers=4)
    second = _measure(4, 20, workers=4)
    assert first["slept"] == second["slept"]


def test_x9_per_source_throttle_caps_the_win():
    """With every branch aimed at ONE source of capacity 1, parallelism
    cannot beat the site's own serialization -- the semaphore, not the
    pool, is the binding constraint."""
    source = bookstore(n=_N_BOOKS, seed=1999)
    source.latency = SimulatedLatency(seed=3, base=0.02)
    source.max_concurrency = 1
    catalog = {"bookstore": source}
    plan = UnionPlan([SourceQuery(COND, ATTRS, "bookstore")] * 4)
    with ParallelExecutor(catalog, max_workers=8) as executor:
        t_parallel, _rows = _timed(executor, plan)
    assert source.max_in_flight == 1
    # Four gated 20 ms calls cannot finish much faster than 80 ms.
    assert t_parallel >= 0.95 * 4 * 0.02


def test_x9_bench_parallel_union(benchmark):
    catalog, plan = _world(fanout=4, latency_ms=5)
    with ParallelExecutor(catalog, max_workers=8) as executor:
        benchmark(lambda: executor.execute(plan))
