"""Shared benchmark plumbing.

Each ``test_eN_*.py`` regenerates one table/figure of the reconstructed
evaluation (see DESIGN.md).  The table is written to
``benchmarks/results/eN.txt`` (and echoed to stdout) so a benchmark run
leaves the full set of result tables behind; the pytest-benchmark
fixture then times the experiment's hot path.

X-benchmarks additionally emit a machine-readable
``BENCH_<name>.json`` through :func:`record_bench` in the shared
:mod:`repro.perf.schema` format (metrics + bars + tolerances + seed +
env fingerprint).  The committed set of those files is the perf
trajectory that ``python -m repro.perf compare`` gates CI on.

Set ``REPRO_BENCH_FULL=1`` for full-size instances (several minutes);
the default is the quick configuration.  ``REPRO_BENCH_RESULTS``
redirects every artifact into another directory (how ``repro.perf
compare --run`` measures without clobbering the committed trajectory).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.perf.schema import BenchResult, env_fingerprint

#: Full-size instances when REPRO_BENCH_FULL=1, quick otherwise.
QUICK = os.environ.get("REPRO_BENCH_FULL", "") != "1"


def results_dir() -> pathlib.Path:
    """Where artifacts land (honours ``REPRO_BENCH_RESULTS``)."""
    override = os.environ.get("REPRO_BENCH_RESULTS", "")
    if override:
        return pathlib.Path(override)
    return pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Write an experiment table to the results directory and echo it."""

    def _record(name: str, table) -> None:
        directory = results_dir()
        directory.mkdir(parents=True, exist_ok=True)
        text = table.format()
        (directory / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


@pytest.fixture
def record_bench():
    """Write a schema-validated ``BENCH_<name>.json``.

    Accepts the flat pieces of a :class:`~repro.perf.schema.BenchResult`
    and refuses to record anything malformed -- a benchmark cannot
    commit a result the perf gate would be unable to parse.  Bars are
    *recorded*, not enforced here: the benchmark's own asserts carry
    the readable failure, ``repro.perf compare`` carries the gate.
    """

    def _record(name: str, metrics: dict, bars: dict | None = None,
                tolerances: dict | None = None,
                seed: int | None = None) -> pathlib.Path:
        result = BenchResult(
            benchmark=name,
            metrics=dict(metrics),
            bars=dict(bars or {}),
            tolerances=dict(tolerances or {}),
            seed=seed,
            env=env_fingerprint(quick=QUICK),
        )
        problems = result.validate()
        assert not problems, f"BENCH_{name}.json would be invalid: {problems}"
        directory = results_dir()
        directory.mkdir(parents=True, exist_ok=True)
        return result.save(directory / f"BENCH_{name}.json")

    return _record
