"""Shared benchmark plumbing.

Each ``test_eN_*.py`` regenerates one table/figure of the reconstructed
evaluation (see DESIGN.md).  The table is written to
``benchmarks/results/eN.txt`` (and echoed to stdout) so a benchmark run
leaves the full set of result tables behind; the pytest-benchmark
fixture then times the experiment's hot path.

Set ``REPRO_BENCH_FULL=1`` for full-size instances (several minutes);
the default is the quick configuration.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Full-size instances when REPRO_BENCH_FULL=1, quick otherwise.
QUICK = os.environ.get("REPRO_BENCH_FULL", "") != "1"


@pytest.fixture
def record_table():
    """Write an experiment table to benchmarks/results/ and echo it."""

    def _record(name: str, table) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.format()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


@pytest.fixture
def record_json():
    """Write machine-readable results to benchmarks/results/BENCH_<name>.json
    (what CI smoke steps parse to enforce acceptance bars)."""

    def _record(name: str, payload: dict) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _record
