"""E2 (Table 2): measured execution of the chosen plans.

Regenerates the measured-traffic table and benchmarks executing
GenCompact's Example 1.1 plan end to end (plan fixing + source
evaluation + mediator union).
"""

from benchmarks.conftest import QUICK
from repro.experiments.common import cost_model_for
from repro.experiments.e2_data_transfer import run as run_e2
from repro.planners.gencompact import GenCompact
from repro.plans.execute import Executor
from repro.workloads.scenarios import bookstore_scenario


def test_e2_data_transfer(benchmark, record_table):
    table = run_e2(quick=QUICK)
    record_table("e2_data_transfer", table)

    # Shape: every executed plan is correct, and GenCompact never moves
    # more data than a baseline that also produced a correct plan.
    by_scenario: dict = {}
    for scenario, planner, _q, _t, cost, _rows, correct in table.rows:
        assert correct in ("yes", "n/a")
        if correct == "yes":
            by_scenario.setdefault(scenario, {})[planner] = cost
    for scenario, costs in by_scenario.items():
        gc = costs["GenCompact"]
        assert all(gc <= cost + 1e-9 for cost in costs.values()), scenario

    scenario = bookstore_scenario(3000 if QUICK else 20000)
    cost_model = cost_model_for(scenario.source)
    plan = GenCompact().plan(scenario.query, scenario.source, cost_model).plan
    executor = Executor({scenario.source.name: scenario.source})

    def execute_plan():
        scenario.source.meter.reset()
        return executor.execute_with_report(plan)

    report = benchmark(execute_plan)
    assert report.queries == 2
