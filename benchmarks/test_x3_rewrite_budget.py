"""X3 (ablation): GenModular's rewrite budget -- quality vs. time.

DESIGN.md calls out bounded rewriting as a necessary engineering choice
(GenModular's rewrite space is infinite).  This ablation sweeps the
budget on the paper's Example 1.2 query and records when GenModular
first matches GenCompact's plan cost -- and what that budget costs in
time relative to GenCompact.
"""

import time

from benchmarks.conftest import QUICK
from repro.experiments.common import cost_model_for
from repro.experiments.report import Table
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.workloads.scenarios import car_scenario

_SCENARIO = car_scenario(2000)
_MODEL = cost_model_for(_SCENARIO.source)
_GC = GenCompact().plan(_SCENARIO.query, _SCENARIO.source, _MODEL)

_BUDGETS = (10, 30, 60, 120) if QUICK else (10, 30, 60, 120, 240, 480)


def _sweep() -> Table:
    table = Table(
        "X3 (ablation): GenModular rewrite budget vs plan quality",
        ["budget (CTs)", "cost found", "vs GenCompact", "time ms",
         "truncated"],
        notes=(
            f"Example 1.2; GenCompact finds cost {_GC.cost:.1f} "
            f"in {_GC.stats.elapsed_sec * 1000:.1f} ms.  'vs GenCompact' is "
            "the cost ratio (1.0 = same plan quality)."
        ),
    )
    for budget in _BUDGETS:
        planner = GenModular(
            max_rewrites=budget,
            max_rewrite_steps=budget * 200,
            use_closed_description=True,
        )
        started = time.perf_counter()
        result = planner.plan(_SCENARIO.query, _SCENARIO.source, _MODEL)
        elapsed = (time.perf_counter() - started) * 1000
        ratio = result.cost / _GC.cost if result.feasible else float("inf")
        table.add(
            budget,
            round(result.cost, 1) if result.feasible else "infeasible",
            round(ratio, 2),
            round(elapsed, 1),
            "yes" if result.stats.rewrite_truncated else "no",
        )
    return table


def test_x3_budget_sweep(benchmark, record_table):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record_table("x3_rewrite_budget", table)
    ratios = [r for r in table.column("vs GenCompact") if r != float("inf")]
    # More budget never makes GenModular worse...
    assert all(b <= a + 1e-9 for a, b in zip(ratios, ratios[1:]))
    # ...and it never beats GenCompact.
    assert all(r >= 1.0 - 1e-9 for r in ratios)


def test_x3_bench_gencompact_reference(benchmark):
    planner = GenCompact()
    result = benchmark(
        lambda: planner.plan(_SCENARIO.query, _SCENARIO.source, _MODEL)
    )
    assert result.cost <= _GC.cost + 1e-9
