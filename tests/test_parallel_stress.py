"""Concurrency stress tests: faults, mirrors, budgets, and throttles.

Everything here runs under a deadline guard -- a hung pool (the classic
nested-fan-out deadlock this executor's inline-fallback design rules
out) fails the test instead of hanging the suite.  The accounting
assertions are *exact*: whatever the thread interleaving, every attempt
lands in a meter, every retry consumes one budget token, and no source
ever sees more in-flight calls than its declared capacity.
"""

from __future__ import annotations

import threading

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import TransientSourceError
from repro.multisource import MirrorGroup
from repro.plans.execute import Executor
from repro.plans.nodes import SourceQuery, UnionPlan
from repro.plans.parallel import ParallelExecutor
from repro.plans.retry import RetryPolicy
from repro.source.faults import FaultInjector, SimulatedLatency
from repro.source.library import bookstore

ATTRS = frozenset({"id", "title"})
COND = parse_condition("author = 'Carl Jung'")
DEADLINE = 120.0


def _run_with_deadline(fn, seconds: float = DEADLINE):
    """Run ``fn`` on a thread; fail the test if it never finishes."""
    outcome: dict = {}

    def target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            outcome["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(seconds)
    assert not thread.is_alive(), "parallel execution deadlocked"
    if "error" in outcome:
        raise outcome["error"]
    return outcome.get("value")


class _ProbeLatency(SimulatedLatency):
    """Latency that measures how many calls overlap *inside* the
    source's concurrency slot -- independent instrumentation for the
    never-oversubscribed assertion."""

    def __init__(self, base: float = 0.003):
        super().__init__(seed=0, base=base, real_sleep=True)
        self.peak = 0
        self._concurrent = 0
        self._probe_lock = threading.Lock()

    def apply(self) -> float:
        with self._probe_lock:
            self._concurrent += 1
            self.peak = max(self.peak, self._concurrent)
        try:
            return super().apply()
        finally:
            with self._probe_lock:
                self._concurrent -= 1


def _mirrors(n: int, fault_p: float = 0.0, limit: int | None = None,
             probe: bool = False) -> list:
    out = []
    for index in range(n):
        source = bookstore(n=150, seed=1999)
        source.name = f"m{index}"
        if fault_p > 0.0:
            source.fault_injector = FaultInjector(
                seed=1000 + index,
                transient_rate=0.6 * fault_p,
                timeout_rate=0.25 * fault_p,
                rate_limit_rate=0.15 * fault_p,
            )
        if limit is not None:
            source.max_concurrency = limit
        if probe:
            source.latency = _ProbeLatency()
        out.append(source)
    return out


def _meters(catalog) -> dict:
    return {name: s.meter.snapshot() for name, s in catalog.items()}


def _delta(catalog, before) -> dict:
    totals = {"queries": 0, "failures": 0, "retries": 0, "rejected": 0}
    for name, source in catalog.items():
        diff = source.meter.snapshot() - before[name]
        totals["queries"] += diff.queries
        totals["failures"] += diff.failures
        totals["retries"] += diff.retries
        totals["rejected"] += diff.rejected
    return totals


# ----------------------------------------------------------------------


def test_stress_mirrors_20pct_faults_budget_and_exact_accounting():
    """The headline scenario from the issue: 20% per-call faults, four
    mirrors doubling as failover targets, a bounded retry budget, wide
    fan-out -- no deadlock, and the report's accounting reconciles
    exactly against the source meters."""
    mirrors = _mirrors(4, fault_p=0.2, limit=3, probe=True)
    group = MirrorGroup(
        mirrors,
        retry_policy=RetryPolicy(
            max_attempts=6, base_backoff=0.001, retry_budget=200,
        ),
        parallel_workers=8,
    )
    catalog = group.sources
    # A wide union across all mirrors (every mirror holds the same
    # data, so the union is feasible and equal to any single answer).
    plan = UnionPlan(
        [SourceQuery(COND, ATTRS, name) for name in catalog] * 3
    )
    expected = Executor({"ref": bookstore(n=150, seed=1999)}).execute(
        SourceQuery(COND, ATTRS, "ref")
    ).as_row_set()

    before = _meters(catalog)
    report = _run_with_deadline(
        lambda: group._executor.execute_with_report(plan)
    )
    moved = _delta(catalog, before)

    assert report.result.as_row_set() == expected
    # Every attempt ended at a meter: success, injected fault, or
    # rejection -- nothing lost, nothing double-counted.
    assert report.attempts == (
        moved["queries"] + moved["failures"] + moved["rejected"]
    )
    assert moved["rejected"] == 0
    # Every retry the context charged was recorded at some source.
    assert report.retries == moved["retries"]
    assert report.retries <= 200
    # Backoff was accounted (simulated) whenever a retry happened.
    assert (report.backoff_seconds > 0.0) == (report.retries > 0)
    # The per-source throttle held, measured two independent ways.
    for source in catalog.values():
        assert source.max_in_flight <= 3
        assert source.latency.peak <= 3
        assert source.in_flight == 0


def test_stress_retry_budget_is_consumed_exactly_once_plan_wide():
    """All sources hard-down, generous per-query attempts, tiny shared
    budget: however the branches race, exactly ``budget`` retry tokens
    get consumed."""
    mirrors = _mirrors(4)
    for source in mirrors:
        source.fault_injector = FaultInjector(seed=0)
        source.fault_injector.take_down()
    catalog = {s.name: s for s in mirrors}
    plan = UnionPlan([SourceQuery(COND, ATTRS, name) for name in catalog])
    budget = 3
    executor = ParallelExecutor(
        catalog,
        retry_policy=RetryPolicy(
            max_attempts=10, base_backoff=0.0, jitter=0.0,
            retry_budget=budget,
        ),
        max_workers=4,
    )
    before = _meters(catalog)
    with executor:
        with pytest.raises(TransientSourceError):
            _run_with_deadline(lambda: executor.execute(plan))
    moved = _delta(catalog, before)
    assert moved["retries"] == budget
    # 4 first attempts + exactly `budget` re-attempts, all faulted.
    assert moved["failures"] == len(catalog) + budget
    assert moved["queries"] == 0


def test_stress_failover_counts_are_exact_in_parallel():
    """One mirror hard-down, one healthy: the dead branch burns its two
    attempts, fails over, and the report shows exactly that -- even
    though the healthy branch runs concurrently."""
    mirrors = _mirrors(2)
    mirrors[0].fault_injector = FaultInjector(seed=0)
    mirrors[0].fault_injector.take_down()
    group = MirrorGroup(
        mirrors,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff=0.001),
        parallel_workers=2,
    )
    plan = UnionPlan([
        SourceQuery(COND, ATTRS, "m0"),
        SourceQuery(COND, ATTRS, "m1"),
    ])
    report = _run_with_deadline(
        lambda: group._executor.execute_with_report(plan)
    )
    # m0: first attempt + one retry (both fault), then a failover
    # re-plan answered by m1; m1's own branch: one attempt.
    assert report.failovers == 1
    assert report.retries == 1
    assert report.attempts == 4
    assert mirrors[0].meter.failures == 2
    assert mirrors[1].meter.queries == 2
    expected = Executor({"m1": mirrors[1]}).execute(
        SourceQuery(COND, ATTRS, "m1")
    ).as_row_set()
    assert report.result.as_row_set() == expected


def test_stress_deep_nested_fan_out_does_not_deadlock_tiny_pool():
    """A 3-deep tree of unions on a 2-worker pool: the inline-fallback
    design must keep making progress (this is the shape that deadlocks
    a naive bounded-pool executor)."""
    catalog = {s.name: s for s in _mirrors(4, probe=True)}
    names = sorted(catalog)

    def tree(depth: int) -> UnionPlan:
        if depth == 0:
            return UnionPlan(
                [SourceQuery(COND, ATTRS, name) for name in names]
            )
        return UnionPlan([tree(depth - 1), tree(depth - 1)])

    plan = tree(3)
    serial_rows = Executor(catalog).execute(plan).as_row_set()
    with ParallelExecutor(catalog, max_workers=2) as executor:
        rows = _run_with_deadline(lambda: executor.execute(plan))
    assert rows.as_row_set() == serial_rows


def test_stress_many_plans_reuse_one_pool_without_leaking_slots():
    """Back-to-back executions on one executor: the worker-slot
    semaphore must end each run fully released (a leak would strangle
    later runs into serial execution, or deadlock)."""
    catalog = {s.name: s for s in _mirrors(4, fault_p=0.2)}
    plan = UnionPlan(
        [SourceQuery(COND, ATTRS, name) for name in sorted(catalog)]
    )
    policy = RetryPolicy(max_attempts=8, base_backoff=0.0)
    with ParallelExecutor(
        catalog, retry_policy=policy, max_workers=4
    ) as executor:
        for _ in range(25):
            _run_with_deadline(lambda: executor.execute(plan))
        # All worker tokens are back: we can immediately take them all.
        for _ in range(executor.max_workers):
            assert executor._slots.acquire(blocking=False)
        for _ in range(executor.max_workers):
            executor._slots.release()
