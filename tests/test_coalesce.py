"""Single-flight coalescing and disjunct batching, proven exact.

The sharing layer's promises (see :mod:`repro.plans.coalesce`):

* K concurrent identical asks cost **one** physical source query, and
  every logical caller gets its *own* row-copied answer -- mutating
  one leaks into none of the others (the ResultCache copy-on-get
  regression, extended to single flight);
* the books balance: the source's :class:`QueryMeter` counts the one
  physical call, exactly one :class:`ExecutionReport` claims it, and
  the joiners carry ``coalesced_hits`` instead (the double-counting
  fix), mirrored to the ``executor.coalesced_hits`` registry counter;
* when the grammar admits disjunctive constants, batched single-EQ
  asks merge into one ``SP(c1 or c2 or ...)`` call whose per-caller
  post-filtered slices equal each caller's own reference answer; when
  the grammar refuses the merge, the batcher falls back to per-constant
  flights and loses nothing.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.conditions.parser import parse_condition
from repro.data.generate import generate_books
from repro.observability.metrics import get_metrics
from repro.plans.async_exec import AsyncExecutor
from repro.plans.cache import ResultCache
from repro.plans.execute import reference_answer
from repro.plans.nodes import SourceQuery, UnionPlan
from repro.source.faults import SimulatedLatency
from repro.source.library import BOOK_EXPORTS, bookstore
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder

_ATTRS = frozenset(BOOK_EXPORTS)
_JUNG = parse_condition("author = 'Carl Jung'")
_FREUD = parse_condition("author = 'Sigmund Freud'")
_JAMES = parse_condition("author = 'William James'")


def _slow_bookstore(base: float = 0.03) -> CapabilitySource:
    """A bookstore whose calls genuinely overlap (real slept latency),
    so concurrent identical asks are in flight together."""
    source = bookstore(n=150, seed=1999)
    source.latency = SimulatedLatency(seed=7, base=base, real_sleep=True)
    return source


def _disjunctive_shop(base: float = 0.0) -> CapabilitySource:
    """A bookstore variant whose grammar *admits* author disjunctions
    (recursive ``author_list`` helper, the car form's list idiom) --
    the precondition for merged batching."""
    description = (
        DescriptionBuilder("shop")
        .helper(
            "author_list",
            "author = $str or author = $str | author = $str or author_list",
        )
        .rule("by_author", "author = $str", attributes=BOOK_EXPORTS)
        .rule("by_authors", "( author_list )", attributes=BOOK_EXPORTS)
        .build()
    )
    source = CapabilitySource("shop", generate_books(300, 1999), description)
    if base > 0.0:
        source.latency = SimulatedLatency(seed=7, base=base, real_sleep=True)
    return source


def _fan_out(executor, call, k: int):
    """Run ``call`` from ``k`` real threads released together."""
    barrier = threading.Barrier(k)

    def one(index: int):
        barrier.wait()
        return call(index)

    with ThreadPoolExecutor(max_workers=k) as pool:
        return [future.result() for future in
                [pool.submit(one, index) for index in range(k)]]


class TestSingleFlight:
    def test_k_identical_asks_cost_one_physical_query(self):
        source = _slow_bookstore()
        plan = SourceQuery(_JUNG, _ATTRS, "bookstore")
        expected = reference_answer(source, _JUNG, _ATTRS).as_row_set()
        counter = get_metrics().counter("executor.coalesced_hits")
        before = counter.value
        k = 8
        with AsyncExecutor({"bookstore": source}) as executor:
            results = _fan_out(
                executor, lambda _: executor.execute(plan), k
            )
            stats = executor.coalesce_stats
        assert source.meter.snapshot().queries == 1
        assert stats.flights == 1
        assert stats.coalesced_hits == k - 1
        assert counter.value - before == k - 1
        for result in results:
            assert result.as_row_set() == expected

    def test_every_caller_gets_an_isolated_copy(self):
        source = _slow_bookstore()
        plan = SourceQuery(_JUNG, _ATTRS, "bookstore")
        with AsyncExecutor({"bookstore": source}) as executor:
            results = _fan_out(
                executor, lambda _: executor.execute(plan), 4
            )
        assert len(results[0]) > 0
        pristine = [result.as_row_set() for result in results]
        # Clobber one caller's answer in place ...
        results[0].rows[0]["title"] = "MUTATED"
        results[0].rows[0]["price"] = -1
        # ... and nobody else's rows move.
        for result, rows in zip(results[1:], pristine[1:]):
            assert result.as_row_set() == rows

    def test_coalesce_off_pays_per_caller(self):
        source = _slow_bookstore()
        plan = SourceQuery(_JUNG, _ATTRS, "bookstore")
        k = 4
        with AsyncExecutor({"bookstore": source}, coalesce=False) as executor:
            _fan_out(executor, lambda _: executor.execute(plan), k)
            assert executor.coalesce_stats.flights == 0
        assert source.meter.snapshot().queries == k

    def test_union_of_identical_leaves_coalesces_within_one_plan(self):
        source = _slow_bookstore()
        leaf = SourceQuery(_JUNG, _ATTRS, "bookstore")
        plan = UnionPlan([leaf] * 5)
        with AsyncExecutor({"bookstore": source}) as executor:
            report = executor.execute_with_report(plan)
        assert source.meter.snapshot().queries == 1
        assert report.queries == 1
        assert report.coalesced_hits == 4
        assert report.result.as_row_set() == \
            reference_answer(source, _JUNG, _ATTRS).as_row_set()


class TestReportReconciliation:
    def test_one_report_claims_the_physical_call_joiners_count_hits(self):
        # The double-counting fix: concurrent reports over one coalesced
        # call must sum to exactly one physical query -- the serial
        # global-meter diff would have counted it in every report.
        source = _slow_bookstore()
        plan = SourceQuery(_JUNG, _ATTRS, "bookstore")
        k = 6
        with AsyncExecutor({"bookstore": source}) as executor:
            reports = _fan_out(
                executor, lambda _: executor.execute_with_report(plan), k
            )
        meter = source.meter.snapshot()
        assert meter.queries == 1
        assert sum(report.queries for report in reports) == 1
        assert sum(report.coalesced_hits for report in reports) == k - 1
        leaders = [report for report in reports if report.queries == 1]
        assert len(leaders) == 1
        assert leaders[0].per_source["bookstore"].queries == 1
        assert leaders[0].per_source["bookstore"].tuples == meter.tuples
        assert leaders[0].coalesced_hits == 0
        for report in reports:
            if report is leaders[0]:
                continue
            assert report.coalesced_hits == 1
            assert report.per_source == {}
            assert report.tuples_transferred == 0

    def test_tuples_attributed_once_match_the_meter(self):
        source = _slow_bookstore()
        plan = SourceQuery(_FREUD, _ATTRS, "bookstore")
        with AsyncExecutor({"bookstore": source}) as executor:
            reports = _fan_out(
                executor, lambda _: executor.execute_with_report(plan), 5
            )
        meter = source.meter.snapshot()
        assert sum(r.tuples_transferred for r in reports) == meter.tuples


class TestResultCacheInterplay:
    def test_single_flight_fills_the_cache_with_a_pristine_copy(self):
        # The copy-on-get regression, extended: a caller mutating its
        # coalesced copy must not poison later cache hits.
        source = _slow_bookstore()
        plan = SourceQuery(_JUNG, _ATTRS, "bookstore")
        expected = reference_answer(source, _JUNG, _ATTRS).as_row_set()
        cache = ResultCache()
        with AsyncExecutor({"bookstore": source}, cache=cache) as executor:
            results = _fan_out(
                executor, lambda _: executor.execute(plan), 4
            )
            results[0].rows[0]["title"] = "MUTATED"
            warm = executor.execute(plan)
        assert source.meter.snapshot().queries == 1  # warm run = cache hit
        assert warm.as_row_set() == expected


class TestDisjunctBatching:
    def test_batched_authors_merge_into_one_call_and_post_filter(self):
        source = _disjunctive_shop(base=0.0)
        conditions = [_JUNG, _FREUD, _JAMES]
        plans = [SourceQuery(c, _ATTRS, "shop") for c in conditions]
        expected = [
            reference_answer(source, c, _ATTRS).as_row_set()
            for c in conditions
        ]
        counter = get_metrics().counter("executor.batched_hits")
        before = counter.value
        with AsyncExecutor({"shop": source}, batch_window=0.2) as executor:
            results = _fan_out(
                executor,
                lambda index: executor.execute(plans[index]),
                len(plans),
            )
            stats = executor.coalesce_stats
        # One physical disjunctive call served all three logical asks;
        # each caller's post-filtered slice is its own exact answer.
        assert source.meter.snapshot().queries == 1
        assert stats.batches == 1
        assert stats.batched_hits == 2
        assert counter.value - before == 2
        for result, rows in zip(results, expected):
            assert result.as_row_set() == rows

    def test_batched_reports_balance_like_coalesced_ones(self):
        source = _disjunctive_shop(base=0.0)
        plans = [SourceQuery(c, _ATTRS, "shop") for c in (_JUNG, _FREUD)]
        with AsyncExecutor({"shop": source}, batch_window=0.2) as executor:
            reports = _fan_out(
                executor,
                lambda index: executor.execute_with_report(plans[index]),
                len(plans),
            )
        assert source.meter.snapshot().queries == 1
        assert sum(report.queries for report in reports) == 1
        assert sum(report.batched_hits for report in reports) == 1

    def test_duplicate_constants_dedup_inside_the_batch(self):
        # Two callers asking the same constant plus one distinct: the
        # merged disjunction carries two distinct constants, all three
        # callers share the one call.
        source = _disjunctive_shop(base=0.0)
        conditions = [_JUNG, _JUNG, _FREUD]
        plans = [SourceQuery(c, _ATTRS, "shop") for c in conditions]
        with AsyncExecutor({"shop": source}, batch_window=0.2) as executor:
            results = _fan_out(
                executor,
                lambda index: executor.execute(plans[index]),
                len(plans),
            )
        assert source.meter.snapshot().queries == 1
        for result, condition in zip(results, conditions):
            assert result.as_row_set() == \
                reference_answer(source, condition, _ATTRS).as_row_set()

    def test_grammar_refusing_the_merge_falls_back_per_constant(self):
        # The stock bookstore form takes one author at a time -- the
        # batcher must detect the refusal and run per-constant flights.
        source = _slow_bookstore()
        conditions = [_JUNG, _FREUD, _JAMES]
        plans = [
            SourceQuery(c, _ATTRS, "bookstore") for c in conditions
        ]
        with AsyncExecutor(
            {"bookstore": source}, batch_window=0.2
        ) as executor:
            results = _fan_out(
                executor,
                lambda index: executor.execute(plans[index]),
                len(plans),
            )
            stats = executor.coalesce_stats
        assert source.meter.snapshot().queries == len(conditions)
        assert stats.batch_fallbacks >= 1
        assert stats.batched_hits == 0
        for result, condition in zip(results, conditions):
            assert result.as_row_set() == \
                reference_answer(source, condition, _ATTRS).as_row_set()

    def test_lone_batchable_ask_degrades_to_a_plain_call(self):
        source = _disjunctive_shop(base=0.0)
        plan = SourceQuery(_JUNG, _ATTRS, "shop")
        with AsyncExecutor({"shop": source}, batch_window=0.02) as executor:
            result = executor.execute(plan)
            stats = executor.coalesce_stats
        assert source.meter.snapshot().queries == 1
        assert stats.batched_hits == 0
        assert result.as_row_set() == \
            reference_answer(source, _JUNG, _ATTRS).as_row_set()

    def test_non_equality_leaves_never_batch(self):
        source = _slow_bookstore()
        plan = SourceQuery(
            parse_condition("title contains 'dream'"), _ATTRS, "bookstore"
        )
        with AsyncExecutor(
            {"bookstore": source}, batch_window=0.05
        ) as executor:
            result = executor.execute(plan)
            assert executor.coalesce_stats.batches == 0
        assert result.as_row_set() == reference_answer(
            source, plan.condition, _ATTRS
        ).as_row_set()


class TestCoalesceStats:
    def test_hit_rate_counts_shared_over_logical_calls(self):
        source = _slow_bookstore()
        plan = SourceQuery(_JUNG, _ATTRS, "bookstore")
        with AsyncExecutor({"bookstore": source}) as executor:
            _fan_out(executor, lambda _: executor.execute(plan), 4)
            stats = executor.coalesce_stats
        assert stats.hit_rate() == pytest.approx(3 / 4)

    def test_disabled_executor_reports_zero_stats(self):
        source = bookstore(n=20, seed=1999)
        with AsyncExecutor(
            {"bookstore": source}, coalesce=False
        ) as executor:
            executor.execute(SourceQuery(_JUNG, _ATTRS, "bookstore"))
            stats = executor.coalesce_stats
        assert stats.flights == 0
        assert stats.hit_rate() == 0.0
