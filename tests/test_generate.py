"""Unit tests for the synthetic data generators."""

from repro.conditions.parser import parse_condition
from repro.data.generate import (
    generate_accounts,
    generate_books,
    generate_cars,
    generate_flights,
)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_books(200, seed=7)
        b = generate_books(200, seed=7)
        assert a.as_row_set() == b.as_row_set()

    def test_different_seed_different_data(self):
        a = generate_cars(200, seed=7)
        b = generate_cars(200, seed=8)
        assert a.as_row_set() != b.as_row_set()


class TestShape:
    def test_sizes(self):
        assert len(generate_books(123)) == 123
        assert len(generate_cars(45)) == 45
        assert len(generate_accounts(67)) == 67
        assert len(generate_flights(89)) == 89

    def test_rows_fit_schema(self):
        for relation in (
            generate_books(50), generate_cars(50),
            generate_accounts(50), generate_flights(50),
        ):
            for row in relation:
                relation.schema.validate_row(row)

    def test_keys_unique(self):
        for relation in (generate_books(300), generate_cars(300)):
            key = relation.schema.key
            values = [row[key] for row in relation]
            assert len(set(values)) == len(values)

    def test_flights_no_self_loops(self):
        for row in generate_flights(300):
            assert row["origin"] != row["destination"]


class TestPaperPlausibility:
    """The distributions should make the paper's queries behave sensibly."""

    def test_bookstore_example_11_selectivities(self):
        books = generate_books(20000)
        target = books.select(
            parse_condition(
                "(author = 'Sigmund Freud' or author = 'Carl Jung') "
                "and title contains 'dreams'"
            )
        )
        title_only = books.select(parse_condition("title contains 'dreams'"))
        # The two-query plan moves far less data than the CNF plan.
        assert 0 < len(target) < len(title_only) / 3

    def test_car_example_12_nonempty(self):
        cars = generate_cars(12000)
        matches = cars.select(
            parse_condition(
                "style = 'sedan' and (size = 'compact' or size = 'midsize') "
                "and ((make = 'Toyota' and price <= 20000) or "
                "(make = 'BMW' and price <= 40000))"
            )
        )
        assert 0 < len(matches) < len(cars) / 4
