"""Unit tests for plan rendering."""

import pytest

from repro.conditions.parser import parse_condition
from repro.plans.cost import CostModel
from repro.plans.nodes import (
    IntersectPlan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    make_choice,
)
from repro.plans.printer import explain, to_paper_notation

A = frozenset({"model"})


def sq(text, attrs=A):
    return SourceQuery(parse_condition(text), frozenset(attrs), "cars")


class TestPaperNotation:
    def test_source_query(self):
        text = to_paper_notation(sq("make = 'BMW' and price < 40000"))
        assert text.startswith("SP(")
        assert "cars" in text and "{model}" in text

    def test_nested_sp(self):
        inner = sq("make = 'BMW' and price < 40000", attrs={"model", "color"})
        plan = Postprocess(parse_condition("color = 'red'"), A, inner)
        text = to_paper_notation(plan)
        assert text.count("SP(") == 2

    def test_union_and_intersect_symbols(self):
        union = UnionPlan([sq("make = 'A' and price < 1"),
                           sq("make = 'B' and price < 1")])
        assert "∪" in to_paper_notation(union)
        inter = IntersectPlan([sq("make = 'A' and price < 1"),
                               sq("make = 'B' and price < 1")])
        assert "∩" in to_paper_notation(inter)

    def test_choice(self):
        choice = make_choice([sq("make = 'A' and price < 1"),
                              sq("make = 'B' and price < 1")])
        assert to_paper_notation(choice).startswith("Choice(")

    def test_none_is_empty_set(self):
        assert to_paper_notation(None) == "∅"


class TestExplain:
    def test_tree_rendering(self):
        union = UnionPlan([sq("make = 'A' and price < 1"),
                           sq("make = 'B' and price < 1")])
        text = explain(union)
        lines = text.splitlines()
        assert lines[0] == "Union"
        assert all(line.startswith("  ") for line in lines[1:])

    def test_annotates_estimates_with_cost_model(self, example41):
        model = CostModel({"cars": example41.stats})
        text = explain(sq("make = 'BMW' and price < 40000"), model)
        assert "est." in text

    def test_none(self):
        assert "no feasible plan" in explain(None)


class TestExplainDict:
    def test_structure_and_json_safety(self, example41):
        import json

        from repro.plans.cost import CostModel
        from repro.plans.printer import explain_dict

        model = CostModel({"cars": example41.stats})
        inner = sq("make = 'BMW' and price < 40000", attrs={"model", "color"})
        plan = Postprocess(
            parse_condition("color = 'red'"), frozenset({"model"}), inner
        )
        tree = explain_dict(plan, model)
        json.dumps(tree)
        assert tree["node"] == "postprocess"
        assert tree["input"]["node"] == "source_query"
        assert tree["input"]["estimated_cost"] > 0
        assert tree["total_cost"] == pytest.approx(model.cost(plan))

    def test_without_cost_model(self):
        from repro.plans.printer import explain_dict

        tree = explain_dict(sq("make = 'A' and price < 1"))
        assert "estimated_cost" not in tree
        assert "total_cost" not in tree

    def test_empty(self):
        from repro.plans.printer import explain_dict

        assert explain_dict(None) == {"node": "empty"}

    def test_union_children(self):
        from repro.plans.printer import explain_dict

        union = UnionPlan([sq("make = 'A' and price < 1"),
                           sq("make = 'B' and price < 1")])
        tree = explain_dict(union)
        assert tree["node"] == "union"
        assert len(tree["children"]) == 2
