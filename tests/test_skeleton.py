"""Unit tests for condition skeletons and template plan reuse."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.skeleton import (
    Skeleton,
    atom_substitution,
    remap_condition,
    substitute_plan,
)
from repro.plans.nodes import Postprocess, SourceQuery, UnionPlan
from repro.wrapper import Wrapper
from tests.conftest import make_example41_source


class TestSkeleton:
    def test_same_template_different_constants(self):
        a = parse_condition("make = 'BMW' and price < 40000")
        b = parse_condition("make = 'Audi' and price < 15000")
        assert Skeleton.of(a).template == Skeleton.of(b).template
        assert Skeleton.of(a).values == ("BMW", 40000)

    def test_different_shapes_differ(self):
        a = parse_condition("make = 'BMW' and price < 40000")
        b = parse_condition("make = 'BMW' or price < 40000")
        assert Skeleton.of(a).template != Skeleton.of(b).template

    def test_different_constant_classes_differ(self):
        a = parse_condition("make = 'BMW'")
        b = parse_condition("make = 5")
        assert Skeleton.of(a).template != Skeleton.of(b).template

    def test_bind_round_trip(self):
        condition = parse_condition("make = 'BMW' and (p < 5 or p < 9)")
        skeleton = Skeleton.of(condition)
        assert skeleton.bind(skeleton.values) == condition

    def test_bind_new_values(self):
        skeleton = Skeleton.of(parse_condition("make = 'BMW' and price < 1"))
        rebound = skeleton.bind(("Audi", 2))
        assert rebound == parse_condition("make = 'Audi' and price < 2")

    def test_bind_arity_checked(self):
        skeleton = Skeleton.of(parse_condition("make = 'BMW'"))
        with pytest.raises(Exception):
            skeleton.bind(("a", "b"))


class TestAtomSubstitution:
    def test_basic_mapping(self):
        old = parse_condition("make = 'BMW' and price < 40000")
        new = parse_condition("make = 'Audi' and price < 15000")
        mapping = atom_substitution(old, new)
        assert mapping is not None
        assert remap_condition(parse_condition("make = 'BMW'"), mapping) == (
            parse_condition("make = 'Audi'")
        )

    def test_mismatched_skeletons_rejected(self):
        old = parse_condition("make = 'BMW' and price < 40000")
        new = parse_condition("make = 'Audi' or price < 15000")
        assert atom_substitution(old, new) is None

    def test_ambiguous_duplicates_rejected(self):
        old = parse_condition("p = 1 or p = 1")
        new = parse_condition("p = 2 or p = 3")
        assert atom_substitution(old, new) is None

    def test_consistent_duplicates_accepted(self):
        old = parse_condition("p = 1 or p = 1")
        new = parse_condition("p = 2 or p = 2")
        assert atom_substitution(old, new) is not None

    def test_substitute_plan_rewrites_all_conditions(self):
        old = parse_condition(
            "(make = 'BMW' and price < 9) or (make = 'Audi' and price < 5)"
        )
        new = parse_condition(
            "(make = 'VW' and price < 7) or (make = 'Kia' and price < 3)"
        )
        mapping = atom_substitution(old, new)
        plan = UnionPlan([
            SourceQuery(old.children[0], frozenset({"model"}), "cars"),
            Postprocess(
                old.children[1].children[0],
                frozenset({"model"}),
                SourceQuery(
                    old.children[1].children[1],
                    frozenset({"model", "make"}),
                    "cars",
                ),
            ),
        ])
        rebound = substitute_plan(plan, mapping)
        conditions = [q.condition for q in rebound.source_queries()]
        assert parse_condition("make = 'VW' and price < 7") in conditions


class TestWrapperTemplateReuse:
    def test_second_instance_skips_planning(self):
        wrapper = Wrapper(make_example41_source())
        first = wrapper.plan("make = 'BMW' and price < 40000", ["model"])
        assert first.feasible
        assert wrapper.template_hits == 0
        second = wrapper.plan("make = 'Toyota' and price < 20000", ["model"])
        assert second.feasible
        assert wrapper.template_hits == 1
        assert second.planner.endswith("+template")

    def test_instantiated_plan_answers_correctly(self):
        wrapper = Wrapper(make_example41_source())
        wrapper.query("make = 'BMW' and price < 40000", ["model"])
        answer = wrapper.query("make = 'Toyota' and price < 20000", ["model"])
        assert answer.result.as_row_set() == {("Camry",), ("Corolla",)}

    def test_multi_conjunct_template_reuse_still_correct(self):
        wrapper = Wrapper(make_example41_source())
        first = wrapper.query(
            "price < 40000 and color = 'red' and make = 'BMW'",
            ["model"],
        )
        assert first.result.as_row_set() == {("328i",)}
        second = wrapper.query(
            "price < 25000 and color = 'red' and make = 'Toyota'",
            ["model"],
        )
        assert wrapper.template_hits == 1
        assert second.result.as_row_set() == {("Camry",), ("Celica",)}

    def test_reuse_can_be_disabled(self):
        wrapper = Wrapper(make_example41_source(), reuse_templates=False)
        wrapper.plan("make = 'BMW' and price < 40000", ["model"])
        wrapper.plan("make = 'Toyota' and price < 20000", ["model"])
        assert wrapper.template_hits == 0

    def test_validation_falls_back_to_replanning(self):
        """A literal template makes support value-dependent: the template
        plan for the supported literal must not be blindly reused."""
        from repro.data.relation import Relation
        from repro.data.schema import AttrType, Schema
        from repro.source.source import CapabilitySource
        from repro.ssdl.builder import DescriptionBuilder

        schema = Schema.of(
            "t", [("id", AttrType.INT), ("style", AttrType.STRING),
                  ("make", AttrType.STRING)], key="id"
        )
        desc = (
            DescriptionBuilder("d")
            # Only sedans are searchable by style+make...
            .rule("sedans", "style = 'sedan' and make = $str",
                  attributes=["id", "style", "make"])
            # ...but any single make works, exporting style for filtering.
            .rule("by_make", "make = $str", attributes=["id", "style", "make"])
            .build()
        )
        rows = [
            {"id": 0, "style": "sedan", "make": "a"},
            {"id": 1, "style": "coupe", "make": "a"},
            {"id": 2, "style": "sedan", "make": "b"},
        ]
        source = CapabilitySource("t", Relation(schema, rows), desc)
        wrapper = Wrapper(source)
        first = wrapper.query("style = 'sedan' and make = 'a'", ["id"])
        assert first.result.as_row_set() == {(0,)}
        # Same skeleton, but the literal 'sedan' becomes 'coupe': the
        # template plan is invalid and the wrapper must replan.
        second = wrapper.query("style = 'coupe' and make = 'a'", ["id"])
        assert second.result.as_row_set() == {(1,)}
        assert wrapper.template_hits == 0
