"""Unit tests for condition trees."""

import pytest

from repro.conditions.tree import (
    TRUE,
    And,
    Leaf,
    Or,
    TrueCondition,
    conjunction,
    disjunction,
    leaf,
)
from repro.errors import ConditionError


def c(attr="a", op="=", value="v"):
    return leaf(attr, op, value)


class TestConstruction:
    def test_connectors_require_two_children(self):
        with pytest.raises(ConditionError):
            And([c()])
        with pytest.raises(ConditionError):
            Or([])

    def test_children_must_be_conditions(self):
        with pytest.raises(ConditionError):
            And([c(), "not a condition"])

    def test_true_cannot_nest_in_connectors(self):
        with pytest.raises(ConditionError):
            And([c(), TRUE])

    def test_true_is_a_singleton(self):
        assert TrueCondition() is TRUE

    def test_nodes_are_immutable(self):
        node = And([c("a"), c("b")])
        with pytest.raises(AttributeError):
            node.something = 1
        with pytest.raises(AttributeError):
            c().something = 1


class TestStructure:
    def test_kind_flags(self):
        assert c().is_leaf and not c().is_and
        assert And([c("a"), c("b")]).is_and
        assert Or([c("a"), c("b")]).is_or
        assert TRUE.is_true

    def test_atoms_in_left_to_right_order(self):
        tree = And([c("x"), Or([c("y"), c("z")])])
        assert [a.attribute for a in tree.atoms()] == ["x", "y", "z"]

    def test_attributes_is_attr_of_paper(self):
        tree = And([c("make"), Or([c("color"), c("make")])])
        assert tree.attributes() == {"make", "color"}

    def test_nodes_preorder(self):
        inner = Or([c("y"), c("z")])
        tree = And([c("x"), inner])
        nodes = list(tree.nodes())
        assert nodes[0] is tree
        assert inner in nodes
        assert len(nodes) == 5

    def test_size_and_depth(self):
        tree = And([c("x"), Or([c("y"), c("z")])])
        assert tree.size() == 5
        assert tree.depth() == 3
        assert c().depth() == 1

    def test_with_children_collapses_singletons(self):
        node = And([c("a"), c("b")])
        only = node.with_children([c("z")])
        assert only.is_leaf


class TestEquality:
    def test_structural_equality_and_hash(self):
        t1 = And([c("a"), c("b")])
        t2 = And([c("a"), c("b")])
        assert t1 == t2 and hash(t1) == hash(t2)

    def test_order_sensitive(self):
        assert And([c("a"), c("b")]) != And([c("b"), c("a")])

    def test_kind_sensitive(self):
        assert And([c("a"), c("b")]) != Or([c("a"), c("b")])

    def test_usable_as_dict_keys(self):
        d = {And([c("a"), c("b")]): 1}
        assert d[And([c("a"), c("b")])] == 1


class TestEvaluate:
    def test_and_or_semantics(self):
        tree = And([c("make", "=", "BMW"),
                    Or([c("color", "=", "red"), c("color", "=", "black")])])
        assert tree.evaluate({"make": "BMW", "color": "red"})
        assert tree.evaluate({"make": "BMW", "color": "black"})
        assert not tree.evaluate({"make": "BMW", "color": "blue"})
        assert not tree.evaluate({"make": "Audi", "color": "red"})

    def test_true_evaluates_true(self):
        assert TRUE.evaluate({})


class TestCombinators:
    def test_conjunction_flattens_and_nodes(self):
        combined = conjunction([And([c("a"), c("b")]), c("x")])
        assert combined.is_and
        assert len(combined.children) == 3

    def test_conjunction_of_empty_is_true(self):
        assert conjunction([]) is TRUE
        assert conjunction([TRUE]) is TRUE

    def test_conjunction_of_one_is_identity(self):
        one = c("a")
        assert conjunction([one]) is one

    def test_disjunction_flattens_or_nodes(self):
        combined = disjunction([Or([c("a"), c("b")]), c("x")])
        assert combined.is_or
        assert len(combined.children) == 3

    def test_true_is_dropped_from_combinations(self):
        combined = conjunction([TRUE, c("a"), c("b")])
        assert combined.is_and and len(combined.children) == 2


class TestText:
    def test_to_text_simple(self):
        tree = And([c("make", "=", "BMW"), c("price", "<", 40000)])
        assert tree.to_text() == "make = 'BMW' and price < 40000"

    def test_to_text_parenthesizes_nested_opposite(self):
        tree = And([c("a", "=", "1"),
                    Or([c("b", "=", "2"), c("c", "=", "3")])])
        assert tree.to_text() == "a = '1' and (b = '2' or c = '3')"

    def test_to_text_parenthesizes_nested_same_kind(self):
        tree = And([c("a", "=", "1"), And([c("b", "=", "2"), c("c", "=", "3")])])
        assert tree.to_text() == "a = '1' and (b = '2' and c = '3')"
