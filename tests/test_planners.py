"""Integration tests for the planning schemes on the paper's scenarios."""

import pytest

from repro.conditions.parser import parse_condition
from repro.planners.baselines import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    NaivePlanner,
)
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.plans.cost import CostModel
from repro.plans.feasible import validate_plan
from repro.plans.nodes import SourceQuery, UnionPlan
from repro.query import TargetQuery
from repro.source.library import bookstore, car_guide
from repro.workloads.scenarios import bank_scenario


@pytest.fixture(scope="module")
def book_source():
    return bookstore(n=4000)


@pytest.fixture(scope="module")
def book_query():
    return TargetQuery(
        parse_condition(
            "(author = 'Sigmund Freud' or author = 'Carl Jung') "
            "and title contains 'dreams'"
        ),
        frozenset({"id", "title", "author"}),
        "bookstore",
    )


@pytest.fixture(scope="module")
def car_source():
    return car_guide(n=3000)


@pytest.fixture(scope="module")
def car_query():
    return TargetQuery(
        parse_condition(
            "style = 'sedan' and (size = 'compact' or size = 'midsize') and "
            "((make = 'Toyota' and price <= 20000) or "
            "(make = 'BMW' and price <= 40000))"
        ),
        frozenset({"id", "make", "model", "price"}),
        "car_guide",
    )


def model_for(source):
    return CostModel({source.name: source.stats})


class TestExample11:
    """The bookstore query: two-author search is impossible in one query."""

    def test_gencompact_finds_the_two_query_plan(self, book_source, book_query):
        result = GenCompact().plan(book_query, book_source, model_for(book_source))
        assert result.feasible
        assert isinstance(result.plan, UnionPlan)
        assert len(result.plan.children) == 2
        for child in result.plan.children:
            assert isinstance(child, SourceQuery)
            assert child.condition.is_and  # author ^ title per branch

    def test_dnf_matches_gencompact_here(self, book_source, book_query):
        cm = model_for(book_source)
        gc = GenCompact().plan(book_query, book_source, cm)
        dnf = DNFPlanner().plan(book_query, book_source, cm)
        assert dnf.feasible
        assert dnf.cost == pytest.approx(gc.cost)

    def test_cnf_is_worse(self, book_source, book_query):
        cm = model_for(book_source)
        gc = GenCompact().plan(book_query, book_source, cm)
        cnf = CNFPlanner().plan(book_query, book_source, cm)
        assert cnf.feasible
        assert cnf.cost > gc.cost

    def test_disco_and_naive_infeasible(self, book_source, book_query):
        cm = model_for(book_source)
        assert not DiscoPlanner().plan(book_query, book_source, cm).feasible
        assert not NaivePlanner().plan(book_query, book_source, cm).feasible

    def test_genmodular_matches_on_this_query(self, book_source, book_query):
        cm = model_for(book_source)
        gc = GenCompact().plan(book_query, book_source, cm)
        gm = GenModular(max_rewrites=80).plan(book_query, book_source, cm)
        assert gm.feasible
        assert gm.cost == pytest.approx(gc.cost)

    def test_plans_validate(self, book_source, book_query):
        cm = model_for(book_source)
        for planner in (GenCompact(), DNFPlanner(), CNFPlanner()):
            result = planner.plan(book_query, book_source, cm)
            assert validate_plan(result.plan, {book_source.name: book_source})


class TestExample12:
    """The car query: GenCompact beats both DNF (4 queries) and CNF."""

    def test_gencompact_two_queries(self, car_source, car_query):
        result = GenCompact().plan(car_query, car_source, model_for(car_source))
        assert result.feasible
        queries = list(result.plan.source_queries())
        assert len(queries) == 2

    def test_dnf_four_queries(self, car_source, car_query):
        result = DNFPlanner().plan(car_query, car_source, model_for(car_source))
        assert result.feasible
        assert len(list(result.plan.source_queries())) == 4

    def test_ordering_gencompact_beats_baselines(self, car_source, car_query):
        cm = model_for(car_source)
        gc = GenCompact().plan(car_query, car_source, cm)
        dnf = DNFPlanner().plan(car_query, car_source, cm)
        cnf = CNFPlanner().plan(car_query, car_source, cm)
        assert gc.cost < dnf.cost
        assert gc.cost < cnf.cost

    def test_disco_and_naive_infeasible(self, car_source, car_query):
        cm = model_for(car_source)
        assert not DiscoPlanner().plan(car_query, car_source, cm).feasible
        assert not NaivePlanner().plan(car_query, car_source, cm).feasible

    def test_plan_validates_and_fixes(self, car_source, car_query):
        result = GenCompact().plan(car_query, car_source, model_for(car_source))
        report = validate_plan(
            result.plan, {car_source.name: car_source}, require_fixable=True
        )
        assert report.feasible


class TestBankScenario:
    def test_pin_unlocks_balance(self):
        scenario = bank_scenario(n=500)
        cm = model_for(scenario.source)
        result = GenCompact().plan(scenario.query, scenario.source, cm)
        assert result.feasible
        # Without the PIN the same projection is infeasible.
        no_pin = TargetQuery(
            parse_condition(
                f"account_no = {scenario.query.condition.children[0].atom.value}"
            ),
            scenario.query.attributes,
            "bank",
        )
        assert not GenCompact().plan(no_pin, scenario.source, cm).feasible


class TestStatsPopulated:
    def test_gencompact_stats(self, book_source, book_query):
        result = GenCompact().plan(book_query, book_source, model_for(book_source))
        stats = result.stats
        assert stats.cts_processed >= 1
        assert stats.check_calls > 0
        assert stats.elapsed_sec > 0
        assert stats.recursive_calls > 0

    def test_genmodular_stats(self, book_source, book_query):
        result = GenModular(max_rewrites=20).plan(
            book_query, book_source, model_for(book_source)
        )
        assert result.stats.cts_processed == 20 or not result.stats.rewrite_truncated
        assert result.stats.subplans_considered > 0

    def test_planner_names(self):
        assert GenCompact().name == "GenCompact"
        assert GenCompact(pr1=False).name == "GenCompact(no pr1)"
        assert GenModular().name == "GenModular"

    def test_describe(self, book_source, book_query):
        result = GenCompact().plan(book_query, book_source, model_for(book_source))
        text = result.describe()
        assert "GenCompact" in text and "cost=" in text
