"""Sync/async parity battery.

The AsyncExecutor's contract is the same *observational equivalence*
the parallel executor promises: on any concrete plan it returns
exactly the rows the serial Executor returns, and where the serial
executor raises, it raises the same error -- whatever the event loop
interleaved, coalesced or batched along the way.  Three layers of
evidence, mirroring ``test_parallel_parity``:

1. the golden corpus from ``test_golden_battery`` -- every feasible
   (planner, query) plan executed serial, parallel and async; all
   three must equal the ground-truth reference answer;
2. hypothesis-generated plan trees (random Union/Intersect/Postprocess
   shapes over mirrored sources, with both supported and rejected leaf
   conditions), with coalescing ON and OFF -- rows and error types
   must match serial;
3. the same generated trees under a seeded :class:`FaultInjector` with
   a recovering retry policy -- draw interleavings differ and
   coalescing even collapses draws entirely, but the *answer* may not
   change.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.conditions.parser import parse_condition
from repro.errors import ReproError
from repro.plans.async_exec import AsyncExecutor
from repro.plans.cost import CostModel
from repro.plans.execute import Executor, reference_answer
from repro.plans.nodes import (
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)
from repro.plans.parallel import ParallelExecutor
from repro.plans.retry import RetryPolicy
from repro.query import TargetQuery
from repro.source.faults import FaultInjector
from repro.source.library import standard_catalog, bookstore
from tests.test_golden_battery import CORPUS, PLANNERS

# ----------------------------------------------------------------------
# Layer 1: the golden corpus -- serial, parallel and async, all equal.


@pytest.fixture(scope="module")
def catalog():
    return standard_catalog(seed=1999)


@pytest.fixture(scope="module")
def async_executor(catalog):
    with AsyncExecutor(catalog) as executor:
        yield executor


@pytest.fixture(scope="module")
def parallel_executor(catalog):
    with ParallelExecutor(catalog, max_workers=6) as executor:
        yield executor


@pytest.mark.parametrize("source_name,attrs,text", CORPUS)
def test_golden_corpus_async_matches_serial_parallel_and_ground_truth(
    catalog, async_executor, parallel_executor, source_name, attrs, text
):
    cost_model = CostModel({name: s.stats for name, s in catalog.items()})
    source = catalog[source_name]
    query = TargetQuery(parse_condition(text), frozenset(attrs), source_name)
    expected = reference_answer(
        source, query.condition, query.attributes
    ).as_row_set()
    serial = Executor(catalog)
    for planner in PLANNERS:
        result = planner.plan(query, source, cost_model)
        if not result.feasible:
            continue
        serial_rows = serial.execute(result.plan).as_row_set()
        parallel_rows = parallel_executor.execute(result.plan).as_row_set()
        async_rows = async_executor.execute(result.plan).as_row_set()
        assert async_rows == parallel_rows == serial_rows == expected, (
            f"{planner.name} diverged on {text!r}"
        )


def test_golden_corpus_async_row_order_is_byte_identical(catalog):
    # Stronger than set equality: the streamed prefix-fold merge must
    # reproduce serial's fold order, so the row *lists* match too.
    cost_model = CostModel({name: s.stats for name, s in catalog.items()})
    serial = Executor(catalog)
    with AsyncExecutor(catalog) as executor:
        for source_name, attrs, text in CORPUS:
            source = catalog[source_name]
            query = TargetQuery(
                parse_condition(text), frozenset(attrs), source_name
            )
            for planner in PLANNERS:
                result = planner.plan(query, source, cost_model)
                if not result.feasible:
                    continue
                assert (
                    executor.execute(result.plan).rows
                    == serial.execute(result.plan).rows
                ), f"{planner.name} reordered rows on {text!r}"


# ----------------------------------------------------------------------
# Layer 2: property-generated plan trees, coalescing on and off.

_ATTRS = frozenset({"id", "title", "author", "price"})
_SOURCES = ("b0", "b1", "b2", "b3")

#: Leaf conditions: all native to the bookstore form except the last,
#: which no reordering makes acceptable -- a deterministic rejection.
_LEAF_CONDITIONS = [
    parse_condition("author = 'Carl Jung'"),
    parse_condition("author = 'Sigmund Freud'"),
    parse_condition("title contains 'dream'"),
    parse_condition("subject = 'philosophy'"),
    parse_condition(
        "subject = 'psychology' and title contains 'memory'"
    ),
    parse_condition("price <= 40"),  # unsupported: rejected leaf
]

#: Mediator-side selections over the exported attributes.
_POST_CONDITIONS = [
    parse_condition("price <= 35"),
    parse_condition("author = 'Carl Jung'"),
    parse_condition("title contains 'the'"),
]


def _make_catalog() -> dict:
    catalog = {}
    for name in _SOURCES:
        source = bookstore(n=150, seed=1999)
        source.name = name
        catalog[name] = source
    return catalog


def _leaf(source: str, condition_index: int) -> Plan:
    return SourceQuery(
        _LEAF_CONDITIONS[condition_index], _ATTRS, source
    )


_leaves = st.builds(
    _leaf,
    st.sampled_from(_SOURCES),
    st.integers(0, len(_LEAF_CONDITIONS) - 1),
)


def _combine(children: list[Plan], kind: int, post_index: int) -> Plan:
    if kind == 0:
        return UnionPlan(children)
    if kind == 1:
        return IntersectPlan(children)
    return Postprocess(
        _POST_CONDITIONS[post_index], _ATTRS, UnionPlan(children)
    )


_plans = st.recursive(
    _leaves,
    lambda inner: st.builds(
        _combine,
        st.lists(inner, min_size=2, max_size=3),
        st.integers(0, 2),
        st.integers(0, len(_POST_CONDITIONS) - 1),
    ),
    max_leaves=10,
)


def _outcome(executor, plan: Plan):
    """Rows on success, the exception type on failure."""
    try:
        return executor.execute(plan).as_row_set()
    except ReproError as exc:
        return type(exc)


@given(_plans, st.booleans())
@settings(max_examples=40, deadline=None)
def test_generated_plans_rows_and_errors_match_serial(plan, coalesce):
    catalog = _make_catalog()
    serial_outcome = _outcome(Executor(catalog), plan)
    with AsyncExecutor(catalog, coalesce=coalesce) as executor:
        async_outcome = _outcome(executor, plan)
    assert async_outcome == serial_outcome


@given(_plans)
@settings(max_examples=15, deadline=None)
def test_generated_plans_match_with_batching_enabled(plan):
    # The bookstore grammar refuses merged author-disjunctions, so the
    # batcher must *fall back* to identical single calls -- parity is
    # the proof the fallback path loses nothing.
    catalog = _make_catalog()
    serial_outcome = _outcome(Executor(catalog), plan)
    with AsyncExecutor(catalog, batch_window=0.002) as executor:
        async_outcome = _outcome(executor, plan)
    assert async_outcome == serial_outcome


# ----------------------------------------------------------------------
# Layer 3: same trees under seeded faults with a recovering policy.

_RECOVERING = RetryPolicy(max_attempts=40, base_backoff=0.01)


def _faulted_catalog(fault_seed: int) -> dict:
    catalog = _make_catalog()
    for index, source in enumerate(catalog.values()):
        source.fault_injector = FaultInjector(
            seed=fault_seed + index, transient_rate=0.15, timeout_rate=0.05,
        )
    return catalog


@given(_plans, st.integers(0, 10_000), st.booleans())
@settings(max_examples=25, deadline=None)
def test_generated_plans_agree_under_same_fault_seed(
    plan, fault_seed, coalesce
):
    # Both executors see catalogs with *identical* injector seeds.  The
    # retry policy always recovers (p^40 ~ 0), so both must produce the
    # answer -- and the identical answer -- whatever the interleaving,
    # and even though coalescing collapses some draws entirely.
    serial_outcome = _outcome(
        Executor(_faulted_catalog(fault_seed), retry_policy=_RECOVERING),
        plan,
    )
    with AsyncExecutor(
        _faulted_catalog(fault_seed), retry_policy=_RECOVERING,
        coalesce=coalesce,
    ) as executor:
        async_outcome = _outcome(executor, plan)
    assert async_outcome == serial_outcome
