"""The canonical plan cache: key correctness, LRU/versioning, warm==cold.

The serving layer's contract has two halves:

* **canonical keys** -- any two *equivalent* condition trees (anything
  the commutative/associative rewrite rules can produce from one
  another) map to the same cache key, while source / projection /
  planner differences keep entries apart (the hypothesis battery);
* **warm answers are cold answers** -- over the golden corpus, asking
  through a plan-cache-enabled mediator twice returns row-identical
  results, and commuted spellings of a corpus query are answered from
  the same entry.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.conditions.atoms import Atom, Op
from repro.conditions.parser import parse_condition
from repro.conditions.rewrite import associative_rule, commutative_rule
from repro.conditions.tree import TRUE, And, Leaf, Or
from repro.mediator import Mediator
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.planners.baselines import DNFPlanner
from repro.query import TargetQuery
from repro.serving import PlanCache, canonical_key, plan_cache_key
from repro.source.library import standard_catalog
from repro.wrapper import Wrapper
from tests.conftest import make_example41_source
from tests.test_golden_battery import CORPUS

# ----------------------------------------------------------------------
# Strategies (mirrors tests/test_properties_conditions.py)
# ----------------------------------------------------------------------

_ATTRS = ["a", "b", "c", "d"]
_OPS = [Op.EQ, Op.NE, Op.LE, Op.GE]

atoms = st.builds(
    Atom,
    st.sampled_from(_ATTRS),
    st.sampled_from(_OPS),
    st.one_of(st.integers(0, 9), st.sampled_from(["x", "y", "z"])),
)

leaves = st.builds(Leaf, atoms)


def _connector(children):
    return st.one_of(
        st.builds(And, st.lists(children, min_size=2, max_size=3)),
        st.builds(Or, st.lists(children, min_size=2, max_size=3)),
    )


conditions = st.recursive(leaves, _connector, max_leaves=8)


# ----------------------------------------------------------------------
# Canonical-key battery
# ----------------------------------------------------------------------

class TestCanonicalKey:
    @settings(max_examples=120, deadline=None)
    @given(conditions, st.data())
    def test_rewrite_chains_preserve_the_key(self, tree, data):
        """Walk up to four random commutative/associative rewrite steps
        from ``tree``; the cache key never changes along the chain."""
        reference = canonical_key(tree)
        current = tree
        for _ in range(data.draw(st.integers(0, 4))):
            rule = data.draw(st.sampled_from([commutative_rule,
                                              associative_rule]))
            neighbours = list(rule(current))
            if not neighbours:
                break
            current = data.draw(st.sampled_from(neighbours))
            assert canonical_key(current) == reference

    @settings(max_examples=80, deadline=None)
    @given(conditions)
    def test_key_is_deterministic_and_hashable(self, tree):
        key = canonical_key(tree)
        assert key == canonical_key(tree)
        hash(key)  # usable as a dict key

    def test_commuted_and_reassociated_spellings_collide(self):
        variants = [
            "a = 1 and b = 2 and c = 3",
            "c = 3 and a = 1 and b = 2",
            "(a = 1 and b = 2) and c = 3",
            "a = 1 and (c = 3 and b = 2)",
        ]
        keys = {canonical_key(parse_condition(text)) for text in variants}
        assert len(keys) == 1

    def test_duplicate_siblings_collapse(self):
        once = parse_condition("a = 1 or b = 2")
        twice = parse_condition("(a = 1 or b = 2) or a = 1")
        assert canonical_key(once) == canonical_key(twice)

    def test_different_connectives_do_not_collide(self):
        assert canonical_key(parse_condition("a = 1 and b = 2")) != \
            canonical_key(parse_condition("a = 1 or b = 2"))

    def test_different_constants_do_not_collide(self):
        assert canonical_key(parse_condition("a = 1")) != \
            canonical_key(parse_condition("a = 2"))

    def test_true_condition_has_a_key(self):
        assert canonical_key(TRUE) == canonical_key(TRUE)

    def test_plan_cache_key_separates_source_and_projection(self):
        condition = parse_condition("a = 1")
        base = TargetQuery(condition, frozenset(["a"]), "s1")
        assert plan_cache_key(base) == plan_cache_key(
            TargetQuery(condition, frozenset(["a"]), "s1")
        )
        assert plan_cache_key(base) != plan_cache_key(
            TargetQuery(condition, frozenset(["a", "b"]), "s1")
        )
        assert plan_cache_key(base) != plan_cache_key(
            TargetQuery(condition, frozenset(["a"]), "s2")
        )


# ----------------------------------------------------------------------
# The PlanCache container itself
# ----------------------------------------------------------------------

class TestPlanCache:
    def test_put_get_and_stats(self):
        with use_metrics(MetricsRegistry()) as registry:
            cache = PlanCache(4)
            assert cache.get("k") is None
            cache.put("k", "plan")
            assert cache.get("k") == "plan"
            assert cache.stats.hits == 1 and cache.stats.misses == 1
            snapshot = registry.snapshot()
            assert snapshot["serving.plan_cache.hits"]["value"] == 1
            assert snapshot["serving.plan_cache.misses"]["value"] == 1

    def test_lru_eviction_bounds_entries(self):
        with use_metrics(MetricsRegistry()):
            cache = PlanCache(2)
            cache.put("a", 1)
            cache.put("b", 2)
            cache.get("a")          # refresh a; b is now the LRU entry
            cache.put("c", 3)
            assert len(cache) == 2
            assert cache.stats.evictions == 1
            assert cache.get("b") is None
            assert cache.get("a") == 1 and cache.get("c") == 3

    def test_version_mismatch_invalidates_lazily(self):
        with use_metrics(MetricsRegistry()):
            cache = PlanCache(4)
            cache.put("k", "old", version=1)
            assert cache.get("k", version=2) is None
            assert cache.stats.invalidations == 1
            assert len(cache) == 0

    def test_bulk_invalidate(self):
        with use_metrics(MetricsRegistry()):
            cache = PlanCache(8)
            for index in range(3):
                cache.put(index, index)
            assert cache.invalidate() == 3
            assert len(cache) == 0 and cache.stats.invalidations == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(0)


# ----------------------------------------------------------------------
# Mediator integration: warm answers == cold answers
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def served_mediator():
    mediator = Mediator(plan_cache_entries=128)
    for source in standard_catalog(seed=1999).values():
        mediator.add_source(source)
    return mediator


class TestWarmVersusCold:
    @pytest.mark.parametrize("source_name,attrs,text", CORPUS)
    def test_golden_corpus_rows_identical(self, served_mediator,
                                          source_name, attrs, text):
        query = TargetQuery(
            parse_condition(text), frozenset(attrs), source_name
        )
        hits_before = served_mediator.plan_cache.stats.hits
        cold = served_mediator.ask(query)
        warm = served_mediator.ask(query)
        assert warm.result.as_row_set() == cold.result.as_row_set()
        assert served_mediator.plan_cache.stats.hits >= hits_before + 1
        # Stats reuse on hit: the warm answer carries the original
        # planning result, original planner stats included.
        assert warm.planning is cold.planning

    def test_commuted_spelling_hits_the_same_entry(self, served_mediator):
        entries_before = len(served_mediator.plan_cache)
        cold = served_mediator.ask(
            "SELECT id, model FROM car_guide "
            "WHERE make = 'BMW' and style = 'sedan'"
        )
        hits_before = served_mediator.plan_cache.stats.hits
        warm = served_mediator.ask(
            "SELECT id, model FROM car_guide "
            "WHERE style = 'sedan' and make = 'BMW'"
        )
        assert warm.result.as_row_set() == cold.result.as_row_set()
        assert served_mediator.plan_cache.stats.hits == hits_before + 1
        assert len(served_mediator.plan_cache) == entries_before + 1

    def test_per_query_planner_override_gets_its_own_entry(
        self, served_mediator
    ):
        query = "SELECT id, title FROM bookstore WHERE author = 'Carl Jung'"
        default = served_mediator.ask(query)
        dnf = served_mediator.ask(query, planner=DNFPlanner())
        assert default.planning.planner != dnf.planning.planner
        assert default.result.as_row_set() == dnf.result.as_row_set()

    def test_add_source_invalidates_cached_plans(self):
        mediator = Mediator(plan_cache_entries=16)
        for source in standard_catalog(seed=1999).values():
            mediator.add_source(source)
        query = "SELECT id, title FROM bookstore WHERE author = 'Carl Jung'"
        cold = mediator.ask(query)
        version = mediator.catalog_version
        mediator.add_source(make_example41_source("more_cars"))
        assert mediator.catalog_version == version + 1
        replanned = mediator.ask(query)
        assert mediator.plan_cache.stats.invalidations >= 1
        assert replanned.planning is not cold.planning
        assert replanned.result.as_row_set() == cold.result.as_row_set()


# ----------------------------------------------------------------------
# Wrapper delegation (the unbounded-dict bugfix)
# ----------------------------------------------------------------------

class TestWrapperDelegation:
    def test_plan_cache_is_bounded(self):
        wrapper = Wrapper(make_example41_source(), plan_cache_entries=4)
        for price in range(10):
            wrapper.plan(f"make = 'BMW' and price < {30000 + price}",
                         ["model"])
        assert wrapper.cache_size() <= 4
        assert wrapper._plan_cache.stats.evictions >= 6

    def test_commuted_condition_reuses_the_cached_plan(self):
        wrapper = Wrapper(make_example41_source())
        first = wrapper.plan("make = 'BMW' and price < 40000", ["model"])
        second = wrapper.plan("price < 40000 and make = 'BMW'", ["model"])
        assert second is first
        assert wrapper.cache_size() == 1

    def test_template_store_is_bounded_too(self):
        wrapper = Wrapper(make_example41_source(), plan_cache_entries=2)
        for price in (1, 2, 3):
            wrapper.plan(f"make = 'BMW' and price < {price}", ["model"])
            wrapper.plan(f"make = 'BMW' and color = 'c{price}'", ["model"])
        assert len(wrapper._templates) <= 2
