"""Unit tests for the synthetic worlds and the fixed scenarios."""

import random


from repro.conditions.canonical import is_canonical
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.workloads.scenarios import (
    all_scenarios,
    bank_scenario,
    bookstore_scenario,
    car_scenario,
)
from repro.workloads.synthetic import (
    WorldConfig,
    make_description,
    make_queries,
    make_schema,
    make_source,
    make_table,
    random_condition,
    template_space,
)


class TestSyntheticWorld:
    def test_schema_shape(self):
        schema = make_schema(4)
        assert schema.key == "key"
        assert len(schema.attrs) == 5

    def test_table_is_deterministic(self):
        config = WorldConfig(n_attributes=4, n_rows=200, seed=3)
        assert make_table(config).as_row_set() == make_table(config).as_row_set()

    def test_table_fits_schema(self):
        config = WorldConfig(n_attributes=4, n_rows=50, seed=3)
        table = make_table(config)
        for row in table:
            table.schema.validate_row(row)

    def test_template_space_mixes_ops(self):
        templates = template_space(4)
        ops = {op for _, op in templates}
        assert "=" in ops and "<=" in ops and ">=" in ops

    def test_description_richness_scales_rule_count(self):
        lean = make_description(WorldConfig(richness=0.2, seed=5))
        rich = make_description(WorldConfig(richness=1.0, seed=5))
        assert rich.rule_count() > lean.rule_count()

    def test_description_exports_always_include_key(self):
        desc = make_description(WorldConfig(seed=8))
        for attrs in desc.attributes.values():
            assert "key" in attrs

    def test_download_prob_zero_means_no_true_rule(self):
        from repro.conditions.tree import TRUE

        desc = make_description(WorldConfig(download_prob=0.0, seed=8))
        assert not desc.check(TRUE)

    def test_source_is_usable(self):
        config = WorldConfig(n_attributes=4, n_rows=200, richness=0.8, seed=4)
        source = make_source(config)
        assert source.stats.n_rows == 200
        assert source.closed_description.rule_count() >= 1


class TestRandomConditions:
    def test_atom_count(self):
        config = WorldConfig(n_attributes=6, seed=2)
        rng = random.Random(1)
        for n in (1, 2, 5, 9):
            tree = random_condition(config, n, rng)
            assert len(tree.atoms()) == n

    def test_trees_alternate(self):
        config = WorldConfig(n_attributes=6, seed=2)
        rng = random.Random(7)
        for _ in range(20):
            tree = random_condition(config, 6, rng)
            assert is_canonical(tree)

    def test_queries_reference_schema_attributes(self):
        config = WorldConfig(n_attributes=6, n_rows=100, seed=2)
        source = make_source(config)
        for query in make_queries(config, source, 10, 4):
            source.schema.validate_attributes(query.attributes)
            source.schema.validate_attributes(query.condition.attributes())
            assert "key" in query.attributes

    def test_queries_deterministic_by_seed(self):
        config = WorldConfig(n_attributes=6, n_rows=100, seed=2)
        source = make_source(config)
        first = make_queries(config, source, 5, 4, seed=11)
        second = make_queries(config, source, 5, 4, seed=11)
        assert [q.condition for q in first] == [q.condition for q in second]


class TestScenarios:
    def test_all_scenarios_plannable_by_gencompact(self):
        for scenario in all_scenarios():
            source = scenario.source
            cm = CostModel({source.name: source.stats})
            result = GenCompact().plan(scenario.query, source, cm)
            assert result.feasible, scenario.name

    def test_scenarios_carry_paper_references(self):
        names = {s.paper_reference for s in all_scenarios()}
        assert "Example 1.1" in names
        assert "Example 1.2" in names
        assert "Section 4" in names

    def test_bank_scenario_uses_real_pin(self):
        scenario = bank_scenario(n=300)
        matches = scenario.source.relation.select(scenario.query.condition)
        assert len(matches) == 1

    def test_scenarios_scale_with_n(self):
        assert len(bookstore_scenario(100).source.relation) == 100
        assert len(car_scenario(100).source.relation) == 100
