"""Property-based tests (hypothesis) for the condition-tree layer."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.conditions.atoms import Atom, Op
from repro.conditions.canonical import canonicalize, is_canonical
from repro.conditions.normal_forms import to_cnf, to_dnf
from repro.conditions.parser import parse_condition
from repro.conditions.rewrite import (
    associative_rule,
    commutative_rule,
    copy_rule,
    distributive_rule,
    enumerate_orderings,
    factoring_rule,
)
from repro.conditions.semantics import logically_equivalent
from repro.conditions.tree import And, Leaf, Or

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_ATTRS = ["a", "b", "c", "d"]
_OPS = [Op.EQ, Op.NE, Op.LE, Op.GE]

atoms = st.builds(
    Atom,
    st.sampled_from(_ATTRS),
    st.sampled_from(_OPS),
    st.one_of(st.integers(0, 9), st.sampled_from(["x", "y", "z"])),
)

leaves = st.builds(Leaf, atoms)


def _connector(children):
    return st.one_of(
        st.builds(And, st.lists(children, min_size=2, max_size=3)),
        st.builds(Or, st.lists(children, min_size=2, max_size=3)),
    )


conditions = st.recursive(leaves, _connector, max_leaves=8)


# ----------------------------------------------------------------------
# Canonical form
# ----------------------------------------------------------------------

@given(conditions)
@settings(max_examples=150, deadline=None)
def test_canonicalize_is_canonical_and_equivalent(tree):
    flat = canonicalize(tree)
    assert is_canonical(flat)
    assert logically_equivalent(tree, flat)


@given(conditions)
@settings(max_examples=100, deadline=None)
def test_canonicalize_idempotent(tree):
    once = canonicalize(tree)
    assert canonicalize(once) == once


@given(conditions)
@settings(max_examples=100, deadline=None)
def test_canonicalize_preserves_atom_order(tree):
    assert canonicalize(tree).atoms() == tree.atoms()


# ----------------------------------------------------------------------
# Normal forms
# ----------------------------------------------------------------------

@given(conditions)
@settings(max_examples=100, deadline=None)
def test_dnf_equivalent_and_shaped(tree):
    dnf = to_dnf(tree)
    assert logically_equivalent(tree, dnf)
    # Shape: an OR of (leaves / ANDs of leaves), or a single term.
    terms = dnf.children if dnf.is_or else (dnf,)
    for term in terms:
        assert term.is_leaf or (
            term.is_and and all(child.is_leaf for child in term.children)
        )


@given(conditions)
@settings(max_examples=100, deadline=None)
def test_cnf_equivalent_and_shaped(tree):
    cnf = to_cnf(tree)
    assert logically_equivalent(tree, cnf)
    clauses = cnf.children if cnf.is_and else (cnf,)
    for clause in clauses:
        assert clause.is_leaf or (
            clause.is_or and all(child.is_leaf for child in clause.children)
        )


# ----------------------------------------------------------------------
# Rewrite rules: every produced tree is equivalent to its input
# ----------------------------------------------------------------------

@given(conditions, st.sampled_from(
    [commutative_rule, associative_rule, distributive_rule, factoring_rule,
     copy_rule]
))
@settings(max_examples=200, deadline=None)
def test_rewrite_steps_preserve_equivalence(tree, rule):
    for produced in rule(tree):
        assert logically_equivalent(tree, produced)


@given(conditions)
@settings(max_examples=60, deadline=None)
def test_orderings_preserve_atom_multiset(tree):
    original = sorted(str(a) for a in tree.atoms())
    for ordering in enumerate_orderings(tree, limit=24):
        assert sorted(str(a) for a in ordering.atoms()) == original
        assert logically_equivalent(tree, ordering)


# ----------------------------------------------------------------------
# Text round trip
# ----------------------------------------------------------------------

@given(conditions)
@settings(max_examples=150, deadline=None)
def test_text_round_trip(tree):
    assert parse_condition(tree.to_text()) == tree


# ----------------------------------------------------------------------
# Evaluation consistency: concrete evaluation agrees with the abstract
# truth-table evaluation when atoms are independent
# ----------------------------------------------------------------------

@given(conditions, st.dictionaries(
    st.sampled_from(_ATTRS), st.one_of(st.integers(0, 9),
                                       st.sampled_from(["x", "y", "z"])),
))
@settings(max_examples=150, deadline=None)
def test_evaluate_matches_atom_level_evaluation(tree, row):
    from repro.conditions.semantics import evaluate_abstract

    assignment = {atom: atom.matches(row) for atom in tree.atoms()}
    assert tree.evaluate(row) == evaluate_abstract(tree, assignment)
