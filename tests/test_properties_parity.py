"""Property tests: IPG vs EPG parity on identical condition trees.

Section 6.4 claims IPG, run on a canonical CT, covers every plan EPG
reaches on that CT *plus* the plans EPG only reaches through the
associativity and copy rewrites.  Two consequences checked here on
random worlds and random canonical CTs:

1. IPG's best plan never costs more than the cheapest concrete plan in
   EPG's Choice tree for the same CT and attributes.
2. Whenever EPG finds any feasible plan, IPG does too.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.conditions.canonical import canonicalize
from repro.planners.base import CheckCounter
from repro.planners.epg import EPG
from repro.planners.ipg import IPG
from repro.plans.cost import CostModel, enumerate_concrete
from repro.plans.feasible import validate_plan
from repro.workloads.synthetic import (
    WorldConfig,
    make_source,
    random_condition,
)

_CONFIGS = [
    WorldConfig(n_attributes=5, n_rows=300, richness=0.6, download_prob=0.5,
                seed=61),
    WorldConfig(n_attributes=5, n_rows=300, richness=0.9, download_prob=0.0,
                seed=62),
]
_WORLDS = [(config, make_source(config)) for config in _CONFIGS]
_MODELS = [CostModel({source.name: source.stats}) for _, source in _WORLDS]


@given(
    st.integers(0, len(_WORLDS) - 1),
    st.integers(0, 10**6),
    st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_ipg_never_worse_than_epg_on_same_ct(world_index, seed, n_atoms):
    config, source = _WORLDS[world_index]
    cost_model = _MODELS[world_index]
    rng = random.Random(seed)
    ct = canonicalize(random_condition(config, n_atoms, rng))
    attributes = frozenset({"key"})

    checker = CheckCounter(source.closed_description)
    epg_choice = EPG(source.name, checker).generate(ct, attributes)
    ipg_plan = IPG(source.name, checker, cost_model).best_plan(ct, attributes)

    if epg_choice is None:
        # IPG may still find plans EPG misses (it subsumes assoc/copy),
        # so nothing to compare; but any plan it returns must be valid.
        if ipg_plan is not None:
            assert validate_plan(ipg_plan, {source.name: source})
        return

    assert ipg_plan is not None, "EPG found plans but IPG returned ∅"
    epg_best = min(
        (cost_model.cost(p) for p in enumerate_concrete(epg_choice, limit=20000)),
        default=float("inf"),
    )
    assert cost_model.cost(ipg_plan) <= epg_best + 1e-6


@given(
    st.integers(0, len(_WORLDS) - 1),
    st.integers(0, 10**6),
    st.integers(1, 4),
)
@settings(max_examples=20, deadline=None)
def test_epg_plans_all_validate(world_index, seed, n_atoms):
    """Every concrete plan EPG represents is feasible by construction."""
    config, source = _WORLDS[world_index]
    rng = random.Random(seed)
    ct = canonicalize(random_condition(config, n_atoms, rng))
    checker = CheckCounter(source.closed_description)
    choice = EPG(source.name, checker).generate(ct, frozenset({"key"}))
    if choice is None:
        return
    count = 0
    for plan in enumerate_concrete(choice, limit=2000):
        assert validate_plan(plan, {source.name: source}, require_fixable=False)
        count += 1
        if count >= 50:  # cap per example for speed
            break
