"""SLO error-budget accounting, the slow-query log, fingerprints.

The tracker's arithmetic must be *exact* -- the objective is a bucket
boundary, so attainment is a cumulative read, not an estimate -- and
the log's eviction accounting must stay exact under a thread storm.
Fingerprints must group by the canonical plan: two spellings of the
same query share one.
"""

from __future__ import annotations

import threading

import pytest

from repro.observability import (
    Histogram,
    SLOTracker,
    SlowQuery,
    SlowQueryLog,
    plan_fingerprint,
)
from repro.query import parse_query
from repro.serving.plan_cache import plan_cache_key


class TestPlanFingerprint:
    def test_stable_and_short(self):
        key = plan_cache_key(parse_query(
            "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
        ))
        assert plan_fingerprint(key) == plan_fingerprint(key)
        assert len(plan_fingerprint(key)) == 12

    def test_equivalent_spellings_share_a_fingerprint(self):
        a = parse_query(
            "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
        )
        b = parse_query(
            "SELECT model FROM cars WHERE price < 40000 and make = 'BMW'"
        )
        assert plan_fingerprint(plan_cache_key(a)) == plan_fingerprint(
            plan_cache_key(b)
        )

    def test_different_queries_differ(self):
        a = parse_query("SELECT model FROM cars WHERE make = 'BMW'")
        b = parse_query("SELECT model FROM cars WHERE make = 'Audi'")
        assert plan_fingerprint(plan_cache_key(a)) != plan_fingerprint(
            plan_cache_key(b)
        )


def _slow(duration=0.2, query="SELECT model FROM cars"):
    return SlowQuery(
        query=query, source="cars", duration_seconds=duration,
        objective_seconds=0.05, fingerprint="abc123def456",
        planner="gencompact", per_source={"cars": (2, 9)},
    )


class TestSlowQueryLog:
    def test_append_and_oldest_first_entries(self):
        log = SlowQueryLog(capacity=4)
        for duration in (0.1, 0.2, 0.3):
            log.append(_slow(duration))
        assert [e.duration_seconds for e in log.entries()] == [0.1, 0.2, 0.3]
        assert len(log) == 3
        assert log.recorded == 3
        assert log.evicted == 0

    def test_capacity_evicts_oldest_and_counts(self):
        log = SlowQueryLog(capacity=2)
        for duration in (0.1, 0.2, 0.3, 0.4):
            log.append(_slow(duration))
        assert [e.duration_seconds for e in log.entries()] == [0.3, 0.4]
        assert log.recorded == 4
        assert log.evicted == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_clear_resets_accounting(self):
        log = SlowQueryLog(capacity=2)
        log.append(_slow())
        log.clear()
        assert len(log) == 0 and log.recorded == 0 and log.evicted == 0

    def test_format_contains_fingerprint_and_breakdown(self):
        log = SlowQueryLog()
        entry = _slow()
        entry.timeline = "mediator.ask [####]"
        log.append(entry)
        text = log.format()
        assert "1 retained of 1 recorded (0 evicted)" in text
        assert "[abc123def456] 200.00 ms (objective 50.00 ms, ok)" in text
        assert "planner=gencompact source=cars" in text
        assert "cars: 2 queries, 9 tuples" in text
        assert "    mediator.ask [####]" in text

    def test_error_entries_are_flagged(self):
        entry = _slow()
        entry.error = "OverloadError: shed"
        text = entry.format()
        assert "ERROR" in text and "error=OverloadError: shed" in text

    def test_concurrent_appends_keep_exact_accounting(self):
        log = SlowQueryLog(capacity=16)
        threads, per_thread = 8, 50
        barrier = threading.Barrier(threads)

        def storm() -> None:
            barrier.wait()
            for _ in range(per_thread):
                log.append(_slow())

        workers = [threading.Thread(target=storm) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        total = threads * per_thread
        assert log.recorded == total
        assert len(log) == 16
        assert log.evicted == total - 16


def _tracker(durations, objective=0.05, target=0.9):
    histogram = Histogram("ask", buckets=(0.01, objective, 0.1, 1.0))
    for duration in durations:
        histogram.observe(duration)
    return SLOTracker(histogram, objective, target=target)


class TestSLOTracker:
    def test_objective_must_be_a_bucket_boundary(self):
        histogram = Histogram("ask", buckets=(0.01, 0.1))
        with pytest.raises(ValueError, match="bucket boundary"):
            SLOTracker(histogram, 0.05)

    def test_rejects_bad_objective_and_target(self):
        histogram = Histogram("ask", buckets=(0.05,))
        with pytest.raises(ValueError):
            SLOTracker(histogram, 0.0)
        with pytest.raises(ValueError):
            SLOTracker(histogram, 0.05, target=1.0)

    def test_empty_histogram_is_ok_with_full_budget(self):
        status = _tracker([]).status()
        assert status["status"] == "ok"
        assert status["attainment"] == 1.0
        assert status["budget_burn"] == 0.0

    def test_exact_attainment_at_the_boundary(self):
        # 8 of 10 within the 50 ms objective (0.05 itself counts: le).
        status = _tracker(
            [0.001] * 5 + [0.05] * 3 + [0.09, 0.5], target=0.5
        ).status()
        assert status["total"] == 10
        assert status["breached"] == 2
        assert status["attainment"] == 0.8
        # Budget = (1 - 0.5) * 10 = 5 allowed breaches; 2 spent.
        assert status["budget_burn"] == pytest.approx(0.4)
        assert status["status"] == "ok"

    def test_budget_exhaustion_flips_to_degraded(self):
        tracker = _tracker([0.001] * 8 + [0.5, 0.5], target=0.9)
        # Budget = 1 allowed breach of 10; 2 spent -> burn 2.0.
        status = tracker.status()
        assert status["budget_burn"] == pytest.approx(2.0)
        assert status["status"] == "degraded"
        assert tracker.degraded

    def test_live_histogram_updates_flow_through(self):
        tracker = _tracker([0.001] * 99, target=0.9)
        assert not tracker.degraded
        for _ in range(20):
            tracker.histogram.observe(0.8)
        assert tracker.degraded

    def test_format_is_one_line_with_the_numbers(self):
        line = _tracker([0.001] * 9 + [0.5], target=0.5).format()
        assert line.startswith("slo ok:")
        assert "90.00% within 50.0 ms" in line
        assert "1/10 breached" in line
        assert "p99" in line
