"""CLI smoke tests for the serving flags of ``python -m repro.trace``.

``--plan-cache`` must make the warm run's ``plan.cache_hit`` span event
visible in the printed timeline -- the one-screen proof the cache
works; ``--max-in-flight`` must thread admission control through
without disturbing a single query; ``--loadgen TxR`` must append the
throughput/latency report.
"""

from __future__ import annotations

import pytest

from repro.trace import _parse_loadgen
from repro.trace import main as trace_main

QUERY = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"


class TestPlanCacheFlag:
    def test_second_run_shows_cache_hit_in_the_timeline(self, capsys):
        assert trace_main([QUERY, "--plan-cache", "64"]) == 0
        out = capsys.readouterr().out
        assert "plan.cache_hit" in out
        assert "· +" in out          # rendered as an event sub-line
        assert "catalog_version=" in out

    def test_cold_run_alone_shows_only_a_miss(self, capsys):
        assert trace_main([QUERY]) == 0
        out = capsys.readouterr().out
        assert "plan.cache_hit" not in out


class TestMaxInFlightFlag:
    def test_single_query_passes_the_gate(self, capsys):
        assert trace_main([QUERY, "--max-in-flight", "2"]) == 0
        out = capsys.readouterr().out
        assert "executed in" in out
        assert "model=" in out


class TestExecutorFlag:
    def test_async_executor_runs_and_shows_task_workers(self, capsys):
        assert trace_main([QUERY, "--executor", "async"]) == 0
        out = capsys.readouterr().out
        assert "executed in" in out
        assert "model=" in out
        # The timeline's source-call spans ran as loop tasks, not
        # threads -- the async engine's signature in the trace.
        assert "worker=Task-" in out

    def test_async_composes_with_metrics_and_loadgen(self, capsys):
        code = trace_main([
            QUERY, "--executor", "async", "--loadgen", "2x4", "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "serving.request_seconds" in out

    def test_serial_stays_the_default(self, capsys):
        assert trace_main([QUERY]) == 0
        assert "worker=Task-" not in capsys.readouterr().out


class TestLoadgenFlag:
    def test_report_is_appended(self, capsys):
        code = trace_main([
            QUERY, "--plan-cache", "64", "--loadgen", "2x6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loadgen [closed] 2 threads, 6 requests" in out
        assert "p95=" in out and "req/s" in out

    def test_loadgen_composes_with_metrics(self, capsys):
        code = trace_main([
            QUERY, "--loadgen", "2x4", "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving.request_seconds" in out

    def test_spec_parser(self):
        assert _parse_loadgen("4x40") == (4, 40)
        assert _parse_loadgen("1X1") == (1, 1)

    @pytest.mark.parametrize("spec", ["", "4", "x40", "4x", "0x5", "4x0",
                                      "axb"])
    def test_bad_specs_exit_with_a_message(self, spec):
        with pytest.raises(SystemExit):
            _parse_loadgen(spec)

    def test_bad_spec_via_argv(self, capsys):
        with pytest.raises(SystemExit):
            trace_main([QUERY, "--loadgen", "nope"])
