"""Metrics federation: merge semantics, the HTTP scraper, degradation.

Three layers under test.  The pure merge (:func:`merge_readings` /
:func:`merge_snapshots`): counters sum, histograms merge bucket-wise
into exactly the histogram one process observing all the traffic would
have built, gauges keep per-instance identity.  The
:class:`FederatedScraper` over real sockets: N telemetry servers in,
one registry-shaped cluster view out, with ``instance=`` labels on the
OpenMetrics re-export, and an unreachable instance *marked* (stale or
unreachable), never fatal.  And the reconciliation battery: 16 threads
hammering 4 instances, then merged == sum of per-instance *exactly*.
"""

from __future__ import annotations

import threading

import pytest

from repro.dash import main as dash_main
from repro.dash import render_cluster, serving_panel
from repro.observability import (
    ClusterView,
    FederatedScraper,
    InstanceStatus,
    MetricsRegistry,
    TelemetryServer,
    merge_readings,
    merge_snapshots,
)
from repro.observability.federation import instance_key


def _registry(counters=(), histogram_values=(), gauges=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, values in histogram_values:
        histogram = registry.histogram(name)
        for value in values:
            histogram.observe(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    return registry


class TestMergeReadings:
    def test_counters_sum(self):
        merged = merge_readings([
            {"type": "counter", "value": 3},
            {"type": "counter", "value": 4},
        ])
        assert merged == {"type": "counter", "value": 7}

    def test_empty_merge_is_an_error(self):
        with pytest.raises(ValueError):
            merge_readings([])

    def test_mixed_kinds_are_marked_not_guessed(self):
        merged = merge_readings([
            {"type": "counter", "value": 3},
            {"type": "gauge", "value": 4, "max": 4},
        ])
        assert merged["merge_conflict"] is True
        assert merged["kinds"] == ["counter", "gauge"]

    def test_histograms_merge_bucket_wise_exactly(self):
        """The decisive property: merging the shards' histograms gives
        exactly the histogram one process seeing all the traffic would
        have built."""
        values_a = [0.001, 0.02, 0.3, 5.0]
        values_b = [0.004, 0.004, 0.8]
        a = _registry(histogram_values=[("h", values_a)]).snapshot()["h"]
        b = _registry(histogram_values=[("h", values_b)]).snapshot()["h"]
        reference = _registry(
            histogram_values=[("h", values_a + values_b)]
        ).snapshot()["h"]
        merged = merge_readings([a, b])
        assert merged["buckets"] == reference["buckets"]
        assert merged["count"] == reference["count"]
        assert merged["min"] == reference["min"]
        assert merged["max"] == reference["max"]
        # Summation order differs across shards; value is identical.
        assert merged["sum"] == pytest.approx(reference["sum"])
        assert merged["mean"] == pytest.approx(reference["mean"])

    def test_boundary_conflicts_degrade_honestly(self):
        a = _registry(histogram_values=[("h", [0.1])]).snapshot()["h"]
        custom = MetricsRegistry()
        custom.histogram("h", buckets=[1.0, 2.0]).observe(0.5)
        b = custom.snapshot()["h"]
        merged = merge_readings([a, b])
        assert merged["boundaries_conflict"] is True
        assert merged["buckets"] == []
        assert merged["count"] == 2  # scalar aggregates stay exact
        assert merged["sum"] == pytest.approx(0.6)
        assert merged["min"] == 0.1 and merged["max"] == 0.5

    def test_exemplars_survive_the_merge_largest_first(self):
        a_reg = MetricsRegistry()
        a_reg.histogram("h", exemplar_slots=2).observe(0.5, trace_id=1)
        b_reg = MetricsRegistry()
        b_reg.histogram("h", exemplar_slots=2).observe(2.0, trace_id=2)
        merged = merge_readings([a_reg.snapshot()["h"],
                                 b_reg.snapshot()["h"]])
        assert [e[0] for e in merged["exemplars"]] == [2.0, 0.5]


class TestMergeSnapshots:
    def test_gauges_keep_per_instance_identity(self):
        snapshots = {
            "shard-0": _registry(gauges=[("in_flight", 3)]).snapshot(),
            "shard-1": _registry(gauges=[("in_flight", 5)]).snapshot(),
        }
        merged = merge_snapshots(snapshots)
        assert "in_flight" not in merged
        assert merged["instance.shard-0.in_flight"]["value"] == 3
        assert merged["instance.shard-1.in_flight"]["value"] == 5

    def test_counters_and_histograms_merge_under_their_own_names(self):
        snapshots = {
            "a": _registry(counters=[("asks", 2)],
                           histogram_values=[("lat", [0.1])]).snapshot(),
            "b": _registry(counters=[("asks", 3)],
                           histogram_values=[("lat", [0.2])]).snapshot(),
        }
        merged = merge_snapshots(snapshots)
        assert merged["asks"]["value"] == 5
        assert merged["lat"]["count"] == 2

    def test_instrument_present_on_one_instance_only(self):
        snapshots = {
            "a": _registry(counters=[("only_here", 7)]).snapshot(),
            "b": _registry().snapshot(),
        }
        assert merge_snapshots(snapshots)["only_here"]["value"] == 7

    def test_merged_view_is_registry_shaped(self):
        """The cluster view renders through the same OpenMetrics
        renderer as one process, with instance labels folded."""
        snapshots = {
            "shard-0": _registry(counters=[("asks", 1)],
                                 gauges=[("in_flight", 2)]).snapshot(),
        }
        view = ClusterView(
            instances=[InstanceStatus("shard-0", "http://x", "ok")],
            merged=merge_snapshots(snapshots),
            scraped_at=0.0, elapsed_seconds=0.0,
        )
        text = view.render_openmetrics()
        assert 'repro_in_flight{instance="shard-0"} 2' in text
        assert "repro_asks_total 1" in text
        assert text.endswith("# EOF\n")


@pytest.fixture
def cluster():
    """Two real telemetry servers over distinct registries."""
    registries = [MetricsRegistry(), MetricsRegistry()]
    servers = []
    for index, registry in enumerate(registries):
        server = TelemetryServer(registry=registry,
                                 instance=f"shard-{index}").start()
        servers.append(server)
    try:
        yield registries, servers
    finally:
        for server in servers:
            server.stop()


class TestFederatedScraper:
    def test_requires_targets(self):
        with pytest.raises(ValueError):
            FederatedScraper([])

    def test_instance_name_prefers_health_then_host_port(self):
        assert FederatedScraper.instance_name(
            "http://127.0.0.1:9464", {"instance": "shard-7"}) == "shard-7"
        assert FederatedScraper.instance_name(
            "http://127.0.0.1:9464/") == "127.0.0.1:9464"

    def test_scrape_merges_real_servers(self, cluster):
        registries, servers = cluster
        registries[0].counter("asks").inc(2)
        registries[1].counter("asks").inc(3)
        registries[0].gauge("in_flight").set(1)
        scraper = FederatedScraper([s.url for s in servers])
        view = scraper.scrape()
        assert view.status == "ok"
        assert view.merged["asks"]["value"] == 5
        assert view.merged["instance.shard-0.in_flight"]["value"] == 1
        assert view.merged[instance_key("shard-0", "up")]["value"] == 1.0
        assert view.merged[instance_key("shard-1", "up")]["value"] == 1.0
        assert view.health()["reachable"] == 2

    def test_openmetrics_reexport_carries_instance_labels(self, cluster):
        registries, servers = cluster
        registries[0].gauge("in_flight").set(4)
        view = FederatedScraper([s.url for s in servers]).scrape()
        text = view.render_openmetrics()
        assert 'repro_in_flight{instance="shard-0"} 4' in text
        assert 'repro_up{instance="shard-0"} 1' in text
        assert 'repro_up{instance="shard-1"} 1' in text

    def test_unreachable_instance_degrades_not_fails(self, cluster):
        registries, servers = cluster
        registries[0].counter("asks").inc(2)
        dead = "http://127.0.0.1:1"  # nothing listens on port 1
        scraper = FederatedScraper([servers[0].url, dead], timeout=0.5)
        view = scraper.scrape()
        assert view.status == "degraded"
        statuses = {i.instance: i for i in view.instances}
        assert statuses["shard-0"].status == "ok"
        assert statuses["127.0.0.1:1"].status == "unreachable"
        assert statuses["127.0.0.1:1"].error
        assert view.merged["asks"]["value"] == 2
        assert view.merged[
            instance_key("127.0.0.1:1", "up")]["value"] == 0.0

    def test_dead_instance_serves_last_known_good_marked_stale(self):
        registry = MetricsRegistry()
        registry.counter("asks").inc(9)
        server = TelemetryServer(registry=registry,
                                 instance="ephemeral").start()
        scraper = FederatedScraper([server.url], timeout=0.5)
        first = scraper.scrape()
        assert first.status == "ok"
        server.stop()
        second = scraper.scrape()
        status = second.instances[0]
        assert status.status == "stale"
        assert status.age_seconds >= 0.0
        assert second.merged["asks"]["value"] == 9  # last known good
        assert second.merged[
            instance_key("ephemeral", "stale")]["value"] == 1.0
        assert second.status == "unreachable"  # nothing answered *now*

    def test_scrape_accounting(self, cluster):
        _, servers = cluster
        scraper = FederatedScraper([servers[0].url])
        scraper.scrape()
        scraper.scrape()
        assert scraper.scrapes == 2
        assert scraper.failures == 0


class TestReconciliationBattery:
    def test_merged_equals_sum_of_per_instance_exactly(self):
        """16 threads hammer 4 instances' registries concurrently, then
        one scrape+merge; every merged counter and histogram must equal
        the arithmetic sum of the per-instance snapshots, exactly."""
        registries = [MetricsRegistry() for _ in range(4)]
        servers = [
            TelemetryServer(registry=r, instance=f"shard-{i}").start()
            for i, r in enumerate(registries)
        ]
        try:
            def hammer(worker: int) -> None:
                registry = registries[worker % 4]
                for i in range(200):
                    registry.counter("asks").inc()
                    registry.counter(f"source.s{worker % 3}.queries").inc()
                    registry.histogram("lat").observe(0.001 * (i % 50))
                    registry.gauge("in_flight").set(worker)

            threads = [threading.Thread(target=hammer, args=(w,))
                       for w in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            view = FederatedScraper([s.url for s in servers]).scrape()
            locals_ = [r.snapshot() for r in registries]
            assert view.merged["asks"]["value"] == sum(
                s["asks"]["value"] for s in locals_) == 16 * 200
            for worker_mod in range(3):
                name = f"source.s{worker_mod}.queries"
                assert view.merged[name]["value"] == sum(
                    s[name]["value"] for s in locals_ if name in s)
            merged_lat = view.merged["lat"]
            assert merged_lat["count"] == 16 * 200
            assert merged_lat["sum"] == pytest.approx(
                sum(s["lat"]["sum"] for s in locals_))
            for index, (boundary, cumulative) in enumerate(
                merged_lat["buckets"]
            ):
                assert cumulative == sum(
                    s["lat"]["buckets"][index][1] for s in locals_)
            # Gauges: per-instance, never summed.
            assert "in_flight" not in view.merged
            for i in range(4):
                assert f"instance.shard-{i}.in_flight" in view.merged
        finally:
            for server in servers:
                server.stop()


class TestDashCluster:
    GOLDEN_SERVING = [
        "",
        "  serving: request sharing",
        "  coalesced hits                      7",
        "  batched hits                        2",
        "  source calls avoided                9",
    ]

    def test_serving_panel_golden(self):
        registry = MetricsRegistry()
        registry.counter("executor.coalesced_hits").inc(7)
        registry.counter("executor.batched_hits").inc(2)
        assert serving_panel(registry.snapshot()) == self.GOLDEN_SERVING

    def test_serving_panel_absent_when_untouched(self):
        assert serving_panel(MetricsRegistry().snapshot()) == []

    def test_render_cluster_has_instance_table_and_panels(self, cluster):
        registries, servers = cluster
        registries[0].counter("executor.coalesced_hits").inc(3)
        registries[0].histogram("lat").observe(0.01)
        view = FederatedScraper([s.url for s in servers]).scrape()
        frame = render_cluster(view)
        lines = frame.splitlines()
        assert lines[0].startswith("repro dash — cluster (2 instances)")
        assert "status OK" in lines[0]
        assert any(line.startswith("  shard-0") and "ok" in line
                   for line in lines)
        assert "  serving: request sharing" in lines
        assert any("lat" in line for line in lines)

    def test_dash_main_cluster_flag(self, cluster, capsys):
        _, servers = cluster
        urls = ",".join(s.url for s in servers)
        assert dash_main(["--cluster", urls]) == 0
        out = capsys.readouterr().out
        assert "cluster (2 instances)" in out
        assert "shard-0" in out and "shard-1" in out

    def test_dash_main_rejects_url_and_cluster_together(self, cluster):
        _, servers = cluster
        with pytest.raises(SystemExit):
            dash_main([servers[0].url, "--cluster", servers[1].url])
        with pytest.raises(SystemExit):
            dash_main([])
