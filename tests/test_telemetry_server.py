"""HTTP smoke tests: the telemetry server, the dash, the CLI flags.

Real sockets, stdlib client: a scraper must be able to GET
``/metrics`` (OpenMetrics, ``# EOF``-terminated), ``/health`` (JSON;
503 once the SLO budget is gone) and ``/snapshot`` (lossless JSON)
from outside the process, and ``python -m repro.dash`` must render a
frame from those endpoints.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.dash import main as dash_main
from repro.dash import render, sparkline
from repro.observability import (
    MetricsRegistry,
    SamplingTracer,
    TelemetryServer,
    use_metrics,
    use_tracer,
)
from repro.trace import build_mediator
from repro.trace import main as trace_main

QUERY = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"


def _get(url: str) -> tuple[int, str, str]:
    """GET -> (status, content type, body); 4xx/5xx bodies included."""
    try:
        with urllib.request.urlopen(url, timeout=10) as reply:
            return (reply.status, reply.headers.get("Content-Type", ""),
                    reply.read().decode("utf-8"))
    except urllib.error.HTTPError as reply:
        return (reply.code, reply.headers.get("Content-Type", ""),
                reply.read().decode("utf-8"))


@pytest.fixture
def served_mediator():
    registry = MetricsRegistry()
    with use_metrics(registry):
        mediator = build_mediator(latency_objective=0.05)
        mediator.ask(QUERY)
        with TelemetryServer(mediator=mediator, registry=registry) as server:
            yield mediator, server


class TestEndpoints:
    def test_metrics_is_openmetrics_text(self, served_mediator):
        _, server = served_mediator
        status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("application/openmetrics-text")
        assert "# TYPE repro_mediator_ask_seconds histogram" in body
        assert 'repro_source_queries_total{source="cars"} 1' in body
        assert body.endswith("# EOF\n")

    def test_health_reports_catalog_admission_and_slo(self, served_mediator):
        mediator, server = served_mediator
        status, content_type, body = _get(server.url + "/health")
        document = json.loads(body)
        assert content_type == "application/json"
        assert document["catalog_version"] == mediator.catalog_version
        assert document["sources"] == len(mediator.catalog)
        assert document["slo"]["total"] == 1
        assert document["slow_queries"]["recorded"] == len(
            mediator.slow_queries
        )
        assert (status, document["status"]) in [(200, "ok"),
                                                (503, "degraded")]

    def test_snapshot_is_the_lossless_registry(self, served_mediator):
        _, server = served_mediator
        status, content_type, body = _get(server.url + "/snapshot")
        snapshot = json.loads(body)
        assert status == 200 and content_type == "application/json"
        assert snapshot["source.cars.queries"]["value"] == 1
        assert snapshot["mediator.ask_seconds"]["type"] == "histogram"
        assert snapshot["mediator.ask_seconds"]["buckets"]  # not stripped

    def test_unknown_path_is_404(self, served_mediator):
        _, server = served_mediator
        status, _, body = _get(server.url + "/nope")
        assert status == 404 and "not found" in body

    def test_health_turns_503_once_the_budget_is_gone(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            mediator = build_mediator(latency_objective=0.05)
            # Burn the whole budget: objective-breaching observations
            # straight into the SLO histogram (deterministic, no sleep).
            for _ in range(10):
                mediator.ask_latency.observe(0.5)
            assert mediator.slo.degraded
            with TelemetryServer(mediator=mediator,
                                 registry=registry) as server:
                status, _, body = _get(server.url + "/health")
        document = json.loads(body)
        assert status == 503
        assert document["status"] == "degraded"
        assert document["slo"]["budget_burn"] >= 1.0

    def test_server_without_mediator_is_always_ok(self):
        registry = MetricsRegistry()
        registry.counter("executor.retries").inc()
        with TelemetryServer(registry=registry) as server:
            health_status, _, health = _get(server.url + "/health")
            metrics_status, _, metrics = _get(server.url + "/metrics")
        assert health_status == 200
        assert json.loads(health) == {"status": "ok"}
        assert metrics_status == 200
        assert "repro_executor_retries_total 1" in metrics

    def test_lifecycle_guards(self):
        server = TelemetryServer()
        with pytest.raises(RuntimeError):
            server.port  # noqa: B018 - the property raises unstarted
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
            assert server.url.startswith("http://127.0.0.1:")
        finally:
            server.stop()
        server.stop()  # idempotent


class TestDash:
    def test_one_shot_renders_health_and_histograms(self, served_mediator,
                                                    capsys):
        _, server = served_mediator
        assert dash_main([server.url]) == 0
        out = capsys.readouterr().out
        assert "repro dash" in out
        assert "catalog v" in out
        assert "slo:" in out
        assert "mediator.ask_seconds" in out
        assert "p95 ms" in out
        assert "source.cars.queries" in out

    def test_watch_bounded_by_iterations(self, served_mediator, capsys):
        _, server = served_mediator
        code = dash_main([server.url, "--watch", "0.01",
                          "--iterations", "2"])
        assert code == 0
        assert capsys.readouterr().out.count("repro dash") == 2

    def test_unreachable_server_is_a_clean_error(self, capsys):
        assert dash_main(["http://127.0.0.1:9"]) == 1
        assert "cannot scrape" in capsys.readouterr().err

    def test_rejects_non_positive_watch(self):
        with pytest.raises(SystemExit):
            dash_main(["http://x", "--watch", "0"])

    def test_sparkline_folds_buckets_to_width(self):
        reading = {"count": 40,
                   "buckets": [[b, c] for b, c in
                               zip(range(32), range(1, 33))]}
        line = sparkline(reading, width=8)
        assert len(line) == 8

    def test_render_minimal_health(self):
        text = render({"status": "ok"}, {}, "http://h")
        assert text == "repro dash — http://h — status OK"


class TestDashProfilingPanel:
    _SNAPSHOT = {
        "profile.phase.ask.wall_seconds": {
            "type": "histogram", "count": 4, "sum": 0.5, "mean": 0.125,
            "min": 0.1, "max": 0.2, "buckets": [],
        },
        "profile.phase.ask.cpu_seconds": {"type": "counter", "value": 0.25},
        "profile.phase.plan.wall_seconds": {
            "type": "histogram", "count": 2, "sum": 0.04, "mean": 0.02,
            "min": 0.01, "max": 0.03, "buckets": [],
        },
        "profile.phase.plan.cpu_seconds": {"type": "counter", "value": 0.04},
        "profile.lock.plan_cache.wait_seconds": {
            "type": "histogram", "count": 10, "sum": 0.002, "mean": 0.0002,
            "min": 0.0, "max": 0.001, "buckets": [],
        },
        "profile.lock.plan_cache.timeouts": {"type": "counter", "value": 1.0},
        "executor.retries": {"type": "counter", "value": 2.0},
    }

    GOLDEN = "\n".join([
        "repro dash — http://h — status OK",
        "",
        "  profile: phase              spans     wall s      cpu s"
        "  cpu/wall",
        "  ask                             4     0.5000     0.2500"
        "      0.50",
        "  plan                            2     0.0400     0.0400"
        "      1.00",
        "",
        "  profile: lock site       acquires     wait s     max ms"
        "  timeouts",
        "  plan_cache                     10     0.0020       1.00"
        "         1",
        "",
        "  executor.retries                                        "
        "        2",
    ])

    def test_golden_frame(self):
        assert render({"status": "ok"}, self._SNAPSHOT, "http://h") \
            == self.GOLDEN

    def test_profile_families_stay_out_of_generic_sections(self):
        text = render({"status": "ok"}, self._SNAPSHOT, "http://h")
        # The phase histogram appears once (in the panel), never in the
        # generic histogram table with p50/p95 columns.
        assert text.count("ask.wall_seconds") == 0
        assert "p95 ms" not in text  # no generic histograms at all here
        assert "executor.retries" in text

    def test_live_profiled_mediator_feeds_the_panel(self, capsys):
        from repro.observability import Tracer, profile_mediator
        registry = MetricsRegistry()
        with use_metrics(registry):
            mediator = build_mediator()
            with use_tracer(Tracer()) as tracer:
                with profile_mediator(mediator, tracer):
                    mediator.ask(QUERY)
            with TelemetryServer(mediator=mediator,
                                 registry=registry) as server:
                assert dash_main([server.url]) == 0
        out = capsys.readouterr().out
        assert "profile: phase" in out
        assert "profile: lock site" in out
        assert "source.service" in out
        assert "check_cache" in out


class TestTraceCliTelemetryFlags:
    def test_sample_prints_sampler_stats(self, capsys):
        assert trace_main([QUERY, "--sample", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "sampler ratio=1" in out
        assert "traces kept" in out

    def test_slo_prints_the_tracker_line(self, capsys):
        assert trace_main([QUERY, "--slo", "5000"]) == 0
        out = capsys.readouterr().out
        assert "slo ok:" in out
        assert "within 5000.0 ms" in out

    def test_slowlog_without_slo_logs_every_ask(self, capsys):
        assert trace_main([QUERY, "--slowlog"]) == 0
        out = capsys.readouterr().out
        assert "slow-query log: 1 retained of 1 recorded" in out
        assert "cars:" in out

    def test_serve_scrapes_metrics_and_health(self, capsys):
        assert trace_main([QUERY, "--serve", "0", "--slo", "5000"]) == 0
        out = capsys.readouterr().out
        assert "telemetry server on http://127.0.0.1:" in out
        assert "GET /metrics -> 200" in out
        assert "# EOF" in out
        assert "GET /health -> 200" in out
        assert '"status": "ok"' in out

    def test_rejects_non_positive_slo(self, capsys):
        with pytest.raises(SystemExit):
            trace_main([QUERY, "--slo", "0"])

    def test_profile_prints_phase_and_lock_breakdown(self, capsys):
        assert trace_main([QUERY, "--profile", "--plan-cache", "16"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "cpu/wall" in out
        assert "source.service" in out
        assert "lock site" in out and "check_cache" in out
        assert "plan_cache" in out

    def test_profile_composes_with_loadgen(self, capsys):
        code = trace_main([QUERY, "--profile", "--loadgen", "2x6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "cpu/wall" in out

    def test_sampling_composes_with_loadgen(self, capsys):
        code = trace_main([QUERY, "--sample", "0.0", "--slo", "60000",
                           "--loadgen", "2x6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "sampler ratio=0" in out


class TestSampledMediatorIntegration:
    def test_slow_query_timeline_renders_under_sampling(self):
        registry = MetricsRegistry()
        tracer = SamplingTracer(ratio=1.0)
        with use_metrics(registry), use_tracer(tracer):
            mediator = build_mediator(latency_objective=1e-9)
            mediator.ask(QUERY)
        entries = mediator.slow_queries.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.query == QUERY
        assert len(entry.fingerprint) == 12
        assert entry.per_source["cars"][0] >= 1
        assert entry.timeline and "plan" in entry.timeline
