"""Serial/parallel parity battery.

The ParallelExecutor's contract is *observational equivalence*: on any
concrete plan it returns exactly the rows the serial Executor returns,
and where the serial executor raises, it raises the same error.  Three
layers of evidence:

1. the golden corpus from ``test_golden_battery`` -- every feasible
   (planner, query) plan executed both ways;
2. hypothesis-generated plan trees (random Union/Intersect/Postprocess
   shapes over mirrored sources, with both supported and rejected leaf
   conditions) -- rows and error types must match;
3. the same generated trees under a seeded :class:`FaultInjector` with
   a recovering retry policy -- the interleaving of fault draws may
   differ between serial and parallel runs, but the *answer* may not.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.conditions.parser import parse_condition
from repro.errors import ReproError
from repro.plans.cost import CostModel
from repro.plans.execute import Executor, reference_answer
from repro.plans.nodes import (
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)
from repro.plans.parallel import ParallelExecutor
from repro.plans.retry import RetryPolicy
from repro.query import TargetQuery
from repro.source.faults import FaultInjector
from repro.source.library import standard_catalog, bookstore
from tests.test_golden_battery import CORPUS, PLANNERS

# ----------------------------------------------------------------------
# Layer 1: the golden corpus, every feasible planner's plan, both ways.


@pytest.fixture(scope="module")
def catalog():
    return standard_catalog(seed=1999)


@pytest.fixture(scope="module")
def parallel_executor(catalog):
    with ParallelExecutor(catalog, max_workers=6) as executor:
        yield executor


@pytest.mark.parametrize("source_name,attrs,text", CORPUS)
def test_golden_corpus_parallel_matches_serial_and_ground_truth(
    catalog, parallel_executor, source_name, attrs, text
):
    cost_model = CostModel({name: s.stats for name, s in catalog.items()})
    source = catalog[source_name]
    query = TargetQuery(parse_condition(text), frozenset(attrs), source_name)
    expected = reference_answer(
        source, query.condition, query.attributes
    ).as_row_set()
    serial = Executor(catalog)
    for planner in PLANNERS:
        result = planner.plan(query, source, cost_model)
        if not result.feasible:
            continue
        serial_rows = serial.execute(result.plan).as_row_set()
        parallel_rows = parallel_executor.execute(result.plan).as_row_set()
        assert parallel_rows == serial_rows == expected, (
            f"{planner.name} diverged on {text!r}"
        )


# ----------------------------------------------------------------------
# Layer 2: property-generated plan trees.

_ATTRS = frozenset({"id", "title", "author", "price"})
_SOURCES = ("b0", "b1", "b2", "b3")

#: Leaf conditions: all native to the bookstore form except the last,
#: which no reordering makes acceptable -- a deterministic rejection.
_LEAF_CONDITIONS = [
    parse_condition("author = 'Carl Jung'"),
    parse_condition("author = 'Sigmund Freud'"),
    parse_condition("title contains 'dream'"),
    parse_condition("subject = 'philosophy'"),
    parse_condition(
        "subject = 'psychology' and title contains 'memory'"
    ),
    parse_condition("price <= 40"),  # unsupported: rejected leaf
]

#: Mediator-side selections over the exported attributes.
_POST_CONDITIONS = [
    parse_condition("price <= 35"),
    parse_condition("author = 'Carl Jung'"),
    parse_condition("title contains 'the'"),
]


def _make_catalog() -> dict:
    catalog = {}
    for name in _SOURCES:
        source = bookstore(n=150, seed=1999)
        source.name = name
        catalog[name] = source
    return catalog


def _leaf(source: str, condition_index: int) -> Plan:
    return SourceQuery(
        _LEAF_CONDITIONS[condition_index], _ATTRS, source
    )


_leaves = st.builds(
    _leaf,
    st.sampled_from(_SOURCES),
    st.integers(0, len(_LEAF_CONDITIONS) - 1),
)


def _combine(children: list[Plan], kind: int, post_index: int) -> Plan:
    if kind == 0:
        return UnionPlan(children)
    if kind == 1:
        return IntersectPlan(children)
    return Postprocess(
        _POST_CONDITIONS[post_index], _ATTRS, UnionPlan(children)
    )


_plans = st.recursive(
    _leaves,
    lambda inner: st.builds(
        _combine,
        st.lists(inner, min_size=2, max_size=3),
        st.integers(0, 2),
        st.integers(0, len(_POST_CONDITIONS) - 1),
    ),
    max_leaves=10,
)


def _outcome(executor, plan: Plan):
    """Rows on success, the exception type on failure."""
    try:
        return executor.execute(plan).as_row_set()
    except ReproError as exc:
        return type(exc)


@given(_plans, st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_generated_plans_rows_and_errors_match_serial(plan, workers):
    catalog = _make_catalog()
    serial_outcome = _outcome(Executor(catalog), plan)
    with ParallelExecutor(catalog, max_workers=workers) as executor:
        parallel_outcome = _outcome(executor, plan)
    assert parallel_outcome == serial_outcome


# ----------------------------------------------------------------------
# Layer 3: same trees under seeded faults with a recovering policy.

_RECOVERING = RetryPolicy(max_attempts=40, base_backoff=0.01)


def _faulted_catalog(fault_seed: int) -> dict:
    catalog = _make_catalog()
    for index, source in enumerate(catalog.values()):
        source.fault_injector = FaultInjector(
            seed=fault_seed + index, transient_rate=0.15, timeout_rate=0.05,
        )
    return catalog


@given(_plans, st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_generated_plans_agree_under_same_fault_seed(plan, fault_seed):
    # Both executors see catalogs with *identical* injector seeds.  The
    # retry policy always recovers (p^40 ~ 0), so both must produce the
    # answer -- and the identical answer -- whatever the interleaving.
    serial_outcome = _outcome(
        Executor(_faulted_catalog(fault_seed), retry_policy=_RECOVERING),
        plan,
    )
    with ParallelExecutor(
        _faulted_catalog(fault_seed), retry_policy=_RECOVERING,
        max_workers=4,
    ) as executor:
        parallel_outcome = _outcome(executor, plan)
    assert parallel_outcome == serial_outcome
