"""Unit + property tests for value-level simplification."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.conditions.atoms import Atom, Op
from repro.conditions.canonical import is_canonical
from repro.conditions.parser import parse_condition
from repro.conditions.simplify import (
    contradicts,
    implies,
    is_definitely_unsatisfiable,
    simplify,
)


def atom(text: str) -> Atom:
    return parse_condition(text).atom


class TestImplies:
    @pytest.mark.parametrize(
        "premise,conclusion",
        [
            ("p < 10", "p < 20"),
            ("p < 10", "p <= 10"),
            ("p <= 10", "p < 11"),
            ("p > 20", "p > 10"),
            ("p > 20", "p >= 20"),
            ("p >= 20", "p > 19"),
            ("p = 5", "p < 10"),
            ("p = 5", "p >= 5"),
            ("p = 5", "p != 6"),
            ("m = 'a'", "m != 'b'"),
            ("m in ('a', 'b')", "m != 'c'"),
            ("p in (1, 2)", "p < 5"),
            ("t contains 'red dreams'", "t contains 'dreams'"),
            ("p < 10", "p != 10"),
            ("p < 10", "p != 12"),
        ],
    )
    def test_positive_cases(self, premise, conclusion):
        assert implies(atom(premise), atom(conclusion))

    @pytest.mark.parametrize(
        "premise,conclusion",
        [
            ("p < 20", "p < 10"),
            ("p <= 10", "p < 10"),
            ("p < 10", "p != 5"),
            ("p = 5", "p = 6"),
            ("q < 10", "p < 20"),      # different attributes
            ("m = 'a'", "m = 'b'"),
            ("p in (1, 20)", "p < 5"),
            ("t contains 'dreams'", "t contains 'red dreams'"),
            ("p < 10", "m = 'a'"),
            ("p != 5", "p != 6"),
            ("m < 'b'", "m < 5"),       # incomparable constants
        ],
    )
    def test_negative_cases(self, premise, conclusion):
        assert not implies(atom(premise), atom(conclusion))

    def test_reflexive(self):
        assert implies(atom("p < 10"), atom("p < 10"))


class TestContradicts:
    @pytest.mark.parametrize(
        "left,right",
        [
            ("m = 'a'", "m = 'b'"),
            ("p = 5", "p > 10"),
            ("p < 10", "p > 20"),
            ("p < 10", "p >= 10"),
            ("p <= 10", "p > 10"),
            ("m = 'a'", "m != 'a'"),
            ("p in (1, 2)", "p > 10"),
        ],
    )
    def test_positive_cases(self, left, right):
        assert contradicts(atom(left), atom(right))
        assert contradicts(atom(right), atom(left))

    @pytest.mark.parametrize(
        "left,right",
        [
            ("p < 10", "p > 5"),
            ("p <= 10", "p >= 10"),
            ("m = 'a'", "m = 'a'"),
            ("q = 1", "p = 2"),
            ("p < 10", "p < 20"),
            ("p in (1, 20)", "p > 10"),
        ],
    )
    def test_negative_cases(self, left, right):
        assert not contradicts(atom(left), atom(right))


class TestSimplify:
    def test_drops_implied_conjunct(self):
        out = simplify(parse_condition("p < 10 and p < 20"))
        assert out == parse_condition("p < 10")

    def test_drops_implying_disjunct(self):
        out = simplify(parse_condition("p < 10 or p < 20"))
        assert out == parse_condition("p < 20")

    def test_deduplicates(self):
        out = simplify(parse_condition("m = 'a' and (m = 'a')"))
        assert out == parse_condition("m = 'a'")

    def test_absorption_or(self):
        out = simplify(parse_condition("m = 'a' or (m = 'a' and p < 5)"))
        assert out == parse_condition("m = 'a'")

    def test_absorption_and(self):
        out = simplify(parse_condition("m = 'a' and (m = 'a' or p < 5)"))
        assert out == parse_condition("m = 'a'")

    def test_untouched_when_nothing_applies(self):
        text = "m = 'a' and p < 10 and (q = 1 or q = 2)"
        assert simplify(parse_condition(text)) == parse_condition(text)

    def test_result_is_canonical(self):
        out = simplify(parse_condition("(p < 10 and (p < 20 and m = 'a'))"))
        assert is_canonical(out)


class TestUnsatisfiability:
    def test_contradictory_conjunction(self):
        assert is_definitely_unsatisfiable(parse_condition("p < 10 and p > 20"))

    def test_contradiction_in_every_dnf_term(self):
        assert is_definitely_unsatisfiable(
            parse_condition("(m = 'a' or m = 'b') and m = 'c'")
        )

    def test_satisfiable_disjunct_defeats(self):
        assert not is_definitely_unsatisfiable(
            parse_condition("(p < 10 and p > 20) or m = 'a'")
        )

    def test_satisfiable_conjunction(self):
        assert not is_definitely_unsatisfiable(
            parse_condition("p > 10 and p < 20")
        )

    def test_true_is_satisfiable(self):
        from repro.conditions.tree import TRUE

        assert not is_definitely_unsatisfiable(TRUE)


class TestMediatorShortCircuit:
    def test_empty_answer_without_source_contact(self):
        from repro.mediator import Mediator
        from tests.conftest import make_example41_source

        mediator = Mediator()
        source = make_example41_source()
        mediator.add_source(source)
        answer = mediator.ask(
            "SELECT model FROM cars WHERE make = 'BMW' and make = 'Toyota'"
        )
        assert answer.rows == []
        assert answer.report.queries == 0
        assert source.meter.snapshot().queries == 0
        assert answer.planning.planner == "unsatisfiable-shortcut"

    def test_can_be_disabled(self):
        from repro.errors import InfeasiblePlanError
        from repro.mediator import Mediator
        from tests.conftest import make_example41_source

        mediator = Mediator(short_circuit_unsatisfiable=False)
        mediator.add_source(make_example41_source())
        # Without the shortcut this contradictory query has no feasible
        # plan (no grammar rule matches two make-equalities).
        import pytest as _pytest

        with _pytest.raises(InfeasiblePlanError):
            mediator.ask(
                "SELECT model FROM cars WHERE make = 'BMW' and make = 'Toyota'"
            )


# ----------------------------------------------------------------------
# Properties: soundness of implies/contradicts against brute-force
# evaluation over a small value universe, and equivalence of simplify.
# ----------------------------------------------------------------------

_VALUES = [0, 1, 5, 9, 10, 11, 20, "a", "b", "c", "red dreams", "dreams"]

_atoms = st.builds(
    Atom,
    st.just("x"),
    st.sampled_from([Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]),
    st.sampled_from([0, 1, 5, 9, 10, 11, 20, "a", "b", "c"]),
)


@given(_atoms, _atoms)
@settings(max_examples=300, deadline=None)
def test_implies_is_sound(premise, conclusion):
    if implies(premise, conclusion):
        for value in _VALUES:
            row = {"x": value}
            if premise.matches(row):
                assert conclusion.matches(row), (premise, conclusion, value)


@given(_atoms, _atoms)
@settings(max_examples=300, deadline=None)
def test_contradicts_is_sound(left, right):
    if contradicts(left, right):
        for value in _VALUES:
            row = {"x": value}
            assert not (left.matches(row) and right.matches(row)), (
                left, right, value,
            )


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_simplify_preserves_semantics(data):
    from repro.conditions.tree import And, Leaf, Or

    leaves = st.builds(Leaf, _atoms)
    trees = st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(And, st.lists(children, min_size=2, max_size=3)),
            st.builds(Or, st.lists(children, min_size=2, max_size=3)),
        ),
        max_leaves=6,
    )
    tree = data.draw(trees)
    simplified = simplify(tree)
    for value in _VALUES:
        row = {"x": value}
        assert tree.evaluate(row) == simplified.evaluate(row)
