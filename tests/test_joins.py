"""Unit and integration tests for capability-sensitive bind-joins."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import InfeasiblePlanError, SchemaError
from repro.joins import BindJoinExecutor, JoinSpec, bind_join
from repro.query import TargetQuery
from repro.source.library import flights


@pytest.fixture(scope="module")
def catalog():
    return {"flights": flights(n=4000, seed=5)}


class TestJoinSpecValidation:
    def test_requires_join_attributes(self, catalog):
        with pytest.raises(SchemaError):
            JoinSpec(
                outer=TargetQuery(TRUE, frozenset({"id"}), "flights"),
                inner_source="flights",
                inner_condition=TRUE,
                inner_attributes=frozenset({"id"}),
                on={},
            )

    def test_inner_projection_must_not_repeat_join_attrs(self, catalog):
        with pytest.raises(SchemaError):
            JoinSpec(
                outer=TargetQuery(TRUE, frozenset({"id"}), "flights"),
                inner_source="flights",
                inner_condition=TRUE,
                inner_attributes=frozenset({"origin"}),
                on={"destination": "origin"},
            )


class TestConnectingFlights:
    """The outer leg leaves SFO; each destination is bound into an
    origin-equality probe for legs into BOS."""

    def test_join_executes_and_is_correct(self, catalog):
        # The flights grammar *requires* a full route: 'origin = X' alone
        # is not supported, so the outer query must carry a destination.
        outer = TargetQuery(
            parse_condition("origin = 'SFO' and destination = 'DEN'"),
            frozenset({"id", "price"}),
            "flights",
        )
        spec = JoinSpec(
            outer=outer,
            inner_source="flights",
            inner_condition=parse_condition("destination = 'BOS'"),
            inner_attributes=frozenset({"airline", "stops"}),
            on={"destination": "origin"},
        )
        executor = BindJoinExecutor(catalog)
        answer = executor.execute(spec)
        assert answer.bindings == 1  # every outer row has destination DEN

        # Ground truth: the set-semantics cross of the two legs' projections.
        relation = catalog["flights"].relation
        legs1 = relation.sp(outer.condition, ["id", "price", "destination"])
        legs2 = relation.sp(
            parse_condition("origin = 'DEN' and destination = 'BOS'"),
            ["airline", "stops"],
        )
        expected = {
            (l1["id"], l1["price"], l1["destination"], l2["airline"], l2["stops"])
            for l1 in legs1
            for l2 in legs2
        }
        got = {
            (r["id"], r["price"], r["destination"], r["airline"], r["stops"])
            for r in answer.result
        }
        assert got == expected and expected

    def test_probe_counts(self, catalog):
        outer = TargetQuery(
            parse_condition("origin = 'SFO' and destination = 'DEN'"),
            frozenset({"id"}),
            "flights",
        )
        spec = JoinSpec(
            outer=outer,
            inner_source="flights",
            inner_condition=parse_condition("destination = 'BOS'"),
            inner_attributes=frozenset({"airline"}),
            on={"destination": "origin"},
        )
        answer = BindJoinExecutor(catalog).execute(spec)
        assert answer.outer_queries == 1
        assert answer.inner_queries == answer.bindings == 1

    def test_infeasible_probe_detected(self, catalog):
        # Binding on airline -> airline: the flights grammar has no
        # airline-only rule, so probes are unplannable and the executor
        # must raise rather than spam the source.
        outer = TargetQuery(
            parse_condition("origin = 'SFO' and destination = 'DEN'"),
            frozenset({"id"}),
            "flights",
        )
        spec = JoinSpec(
            outer=outer,
            inner_source="flights",
            inner_condition=TRUE,
            inner_attributes=frozenset({"price"}),
            on={"airline": "airline"},
        )
        executor = BindJoinExecutor(catalog)
        assert not executor.check_feasible(spec, ("UA",))
        with pytest.raises(InfeasiblePlanError):
            executor.execute(spec)

    def test_unknown_inner_source(self, catalog):
        outer = TargetQuery(
            parse_condition("origin = 'SFO' and destination = 'DEN'"),
            frozenset({"id"}), "flights",
        )
        with pytest.raises(InfeasiblePlanError):
            bind_join(catalog, outer, "nowhere", on={"destination": "origin"})


class TestBindJoinHelper:
    def test_one_shot_helper(self, catalog):
        outer = TargetQuery(
            parse_condition("origin = 'SFO' and destination = 'ORD'"),
            frozenset({"id", "airline"}),
            "flights",
        )
        answer = bind_join(
            catalog,
            outer,
            "flights",
            on={"destination": "origin"},
            inner_condition=parse_condition("destination = 'JFK'"),
            inner_attributes=frozenset({"price"}),
        )
        for row in answer.result:
            assert row["destination"] == "ORD"
        assert answer.bindings == 1
