"""Unit tests for atomic conditions."""

import pytest

from repro.conditions.atoms import Atom, Op, format_value, op_from_text
from repro.errors import ConditionError


class TestOpFromText:
    def test_every_canonical_spelling(self):
        for op in Op:
            assert op_from_text(op.value) is op

    def test_aliases(self):
        assert op_from_text("==") is Op.EQ
        assert op_from_text("<>") is Op.NE
        assert op_from_text("CONTAINS") is Op.CONTAINS

    def test_unknown_operator(self):
        with pytest.raises(ConditionError):
            op_from_text("~=")


class TestAtomValidation:
    def test_empty_attribute_rejected(self):
        with pytest.raises(ConditionError):
            Atom("", Op.EQ, 1)

    def test_in_requires_collection(self):
        with pytest.raises(ConditionError):
            Atom("size", Op.IN, "compact")

    def test_in_rejects_empty_collection(self):
        with pytest.raises(ConditionError):
            Atom("size", Op.IN, ())

    def test_in_normalizes_list_to_tuple(self):
        atom = Atom("size", Op.IN, ["midsize", "compact"])
        assert isinstance(atom.value, tuple)
        assert set(atom.value) == {"compact", "midsize"}

    def test_contains_requires_string(self):
        with pytest.raises(ConditionError):
            Atom("title", Op.CONTAINS, 7)

    def test_ordered_ops_reject_bool(self):
        with pytest.raises(ConditionError):
            Atom("flag", Op.LT, True)

    def test_ordered_ops_reject_tuples(self):
        with pytest.raises(ConditionError):
            Atom("price", Op.LE, (1, 2))


class TestAtomMatches:
    def test_eq_and_ne(self):
        assert Atom("make", Op.EQ, "BMW").matches({"make": "BMW"})
        assert not Atom("make", Op.EQ, "BMW").matches({"make": "Toyota"})
        assert Atom("make", Op.NE, "BMW").matches({"make": "Toyota"})

    def test_missing_attribute_is_false(self):
        assert not Atom("make", Op.EQ, "BMW").matches({"model": "328i"})
        assert not Atom("make", Op.NE, "BMW").matches({})

    def test_none_value_is_false(self):
        assert not Atom("make", Op.EQ, "BMW").matches({"make": None})

    @pytest.mark.parametrize(
        "op,value,row_value,expected",
        [
            (Op.LT, 10, 5, True),
            (Op.LT, 10, 10, False),
            (Op.LE, 10, 10, True),
            (Op.GT, 10, 11, True),
            (Op.GE, 10, 10, True),
            (Op.GE, 10, 9, False),
        ],
    )
    def test_ordered_comparisons(self, op, value, row_value, expected):
        assert Atom("price", op, value).matches({"price": row_value}) is expected

    def test_ordered_comparison_across_types_is_false(self):
        assert not Atom("price", Op.LT, 10).matches({"price": "cheap"})
        assert not Atom("name", Op.LT, "m").matches({"name": 5})

    def test_string_range_comparison(self):
        assert Atom("name", Op.LT, "m").matches({"name": "alpha"})
        assert not Atom("name", Op.LT, "m").matches({"name": "zeta"})

    def test_contains_is_case_insensitive_substring(self):
        atom = Atom("title", Op.CONTAINS, "dreams")
        assert atom.matches({"title": "The Interpretation of Dreams"})
        assert not atom.matches({"title": "On Memory"})
        assert not atom.matches({"title": 42})

    def test_in(self):
        atom = Atom("size", Op.IN, ("compact", "midsize"))
        assert atom.matches({"size": "compact"})
        assert not atom.matches({"size": "fullsize"})


class TestAtomPresentation:
    def test_to_text_round_trippable_forms(self):
        assert Atom("make", Op.EQ, "BMW").to_text() == "make = 'BMW'"
        assert Atom("price", Op.LT, 40000).to_text() == "price < 40000"
        assert Atom("t", Op.CONTAINS, "x").to_text() == "t contains 'x'"

    def test_format_value_escapes_quotes(self):
        assert format_value("it's") == "'it\\'s'"

    def test_format_value_bool_and_tuple(self):
        assert format_value(True) == "true"
        assert format_value((1, 2)) == "(1, 2)"

    def test_atoms_are_hashable_and_equal_by_value(self):
        a = Atom("make", Op.EQ, "BMW")
        b = Atom("make", Op.EQ, "BMW")
        assert a == b and hash(a) == hash(b)
        assert a != Atom("make", Op.EQ, "Audi")
