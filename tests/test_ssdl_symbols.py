"""Unit tests for SSDL symbols and condition tokenization."""

from repro.conditions.atoms import Atom, Op
from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.ssdl.symbols import (
    AND_SYM,
    AtomToken,
    ConstClass,
    Keyword,
    KeywordSym,
    Template,
    const_class_from_text,
    tokenize_condition,
)


class TestConstClass:
    def test_str(self):
        assert ConstClass.STR.admits("x")
        assert not ConstClass.STR.admits(5)

    def test_num_excludes_bool(self):
        assert ConstClass.NUM.admits(5)
        assert ConstClass.NUM.admits(2.5)
        assert not ConstClass.NUM.admits(True)
        assert not ConstClass.NUM.admits("5")

    def test_bool(self):
        assert ConstClass.BOOL.admits(True)
        assert not ConstClass.BOOL.admits(1)

    def test_list(self):
        assert ConstClass.LIST.admits(("a", "b"))
        assert not ConstClass.LIST.admits("a")

    def test_any(self):
        assert ConstClass.ANY.admits(object())

    def test_paper_aliases(self):
        assert const_class_from_text("$m") is ConstClass.STR
        assert const_class_from_text("$p") is ConstClass.NUM
        assert const_class_from_text("$l") is ConstClass.LIST
        assert const_class_from_text("$str") is ConstClass.STR
        assert const_class_from_text("$bogus") is None


class TestTemplateMatching:
    def test_class_template(self):
        template = Template("make", Op.EQ, ConstClass.STR)
        assert template.matches(AtomToken(Atom("make", Op.EQ, "BMW")))
        assert not template.matches(AtomToken(Atom("make", Op.EQ, 5)))
        assert not template.matches(AtomToken(Atom("model", Op.EQ, "BMW")))
        assert not template.matches(AtomToken(Atom("make", Op.NE, "BMW")))
        assert not template.matches(Keyword.AND)

    def test_literal_template(self):
        template = Template("style", Op.EQ, "sedan")
        assert template.matches(AtomToken(Atom("style", Op.EQ, "sedan")))
        assert not template.matches(AtomToken(Atom("style", Op.EQ, "coupe")))

    def test_keyword_symbol(self):
        assert AND_SYM.matches(Keyword.AND)
        assert not AND_SYM.matches(Keyword.OR)
        assert not KeywordSym(Keyword.TRUE).matches(
            AtomToken(Atom("a", Op.EQ, 1))
        )


class TestTokenization:
    def test_leaf(self):
        tokens = tokenize_condition(parse_condition("make = 'BMW'"))
        assert tokens == (AtomToken(Atom("make", Op.EQ, "BMW")),)

    def test_true(self):
        assert tokenize_condition(TRUE) == (Keyword.TRUE,)

    def test_flat_conjunction_has_no_parens(self):
        tokens = tokenize_condition(
            parse_condition("make = 'BMW' and price < 40000")
        )
        kinds = [t if isinstance(t, Keyword) else "atom" for t in tokens]
        assert kinds == ["atom", Keyword.AND, "atom"]

    def test_nested_child_is_parenthesized(self):
        tokens = tokenize_condition(
            parse_condition("a = 1 and (b = 2 or c = 3)")
        )
        kinds = [t if isinstance(t, Keyword) else "atom" for t in tokens]
        assert kinds == [
            "atom",
            Keyword.AND,
            Keyword.LPAREN,
            "atom",
            Keyword.OR,
            "atom",
            Keyword.RPAREN,
        ]

    def test_nested_same_kind_also_parenthesized(self):
        tokens = tokenize_condition(
            parse_condition("a = 1 and (b = 2 and c = 3)")
        )
        assert Keyword.LPAREN in tokens and Keyword.RPAREN in tokens
