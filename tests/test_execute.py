"""Unit tests for the executor (mediator-side plan evaluation)."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import PlanExecutionError, UnsupportedQueryError
from repro.plans.execute import Executor, reference_answer
from repro.plans.nodes import (
    IntersectPlan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    make_choice,
)
from tests.conftest import make_example41_source


@pytest.fixture
def source():
    return make_example41_source()


@pytest.fixture
def executor(source):
    return Executor({source.name: source})


def sq(text, attrs=("model",), source="cars"):
    return SourceQuery(parse_condition(text), frozenset(attrs), source)


class TestSourceQueries:
    def test_simple(self, executor):
        result = executor.execute(sq("make = 'BMW' and price < 40000"))
        assert result.as_row_set() == {("328i",), ("318i",)}

    def test_fixes_order_automatically(self, executor):
        result = executor.execute(sq("price < 40000 and make = 'BMW'"))
        assert len(result) == 2

    def test_without_fixing_the_source_rejects(self, source):
        executor = Executor({source.name: source}, fix_queries=False)
        with pytest.raises(UnsupportedQueryError):
            executor.execute(sq("price < 40000 and make = 'BMW'"))

    def test_unknown_source(self, executor):
        with pytest.raises(PlanExecutionError):
            executor.execute(sq("make = 'BMW' and price < 1", source="ghost"))


class TestComposites:
    def test_postprocess_select_project(self, executor):
        inner = sq("make = 'BMW' and price < 40000", attrs=("model", "color"))
        plan = Postprocess(
            parse_condition("color = 'red'"), frozenset({"model"}), inner
        )
        assert executor.execute(plan).as_row_set() == {("328i",)}

    def test_postprocess_true_projects_only(self, executor):
        inner = sq("make = 'BMW' and price < 40000", attrs=("model", "color"))
        plan = Postprocess(TRUE, frozenset({"model"}), inner)
        assert executor.execute(plan).as_row_set() == {("328i",), ("318i",)}

    def test_union(self, executor):
        plan = UnionPlan(
            [sq("make = 'BMW' and color = 'red'"),
             sq("make = 'Toyota' and color = 'red'")]
        )
        assert executor.execute(plan).as_row_set() == {
            ("328i",), ("Camry",), ("Celica",),
        }

    def test_intersect(self, executor):
        plan = IntersectPlan(
            [sq("make = 'BMW' and price < 40000", attrs=("model", "year")),
             sq("make = 'BMW' and color = 'red'", attrs=("model", "year"))]
        )
        assert executor.execute(plan).as_row_set() == {("328i", 1998)}

    def test_choice_rejected(self, executor):
        choice = make_choice(
            [sq("make = 'BMW' and color = 'red'"),
             sq("make = 'BMW' and price < 40000")]
        )
        with pytest.raises(PlanExecutionError):
            executor.execute(choice)

    @pytest.mark.parametrize("node_cls", [UnionPlan, IntersectPlan])
    def test_empty_combination_raises_plan_error(self, executor, node_cls):
        # The constructor refuses < 2 children, but a degenerate node can
        # still reach the executor (hand-built, or from a future
        # deserializer bug).  Regression: this used to be a bare
        # IndexError from reading parts[0].
        degenerate = node_cls.__new__(node_cls)
        object.__setattr__(degenerate, "_children", ())
        with pytest.raises(PlanExecutionError, match="no inputs"):
            executor.execute(degenerate)


class TestReports:
    def test_execute_with_report_meters_traffic(self, executor, source):
        plan = UnionPlan(
            [sq("make = 'BMW' and color = 'red'"),
             sq("make = 'Toyota' and color = 'red'")]
        )
        report = executor.execute_with_report(plan)
        assert report.queries == 2
        assert report.tuples_transferred == 3
        assert report.measured_cost(100, 1) == 203

    def test_report_only_counts_this_plan(self, executor, source):
        source.execute(
            parse_condition("make = 'BMW' and color = 'red'"), ["model"]
        )
        report = executor.execute_with_report(
            sq("make = 'Toyota' and color = 'red'")
        )
        assert report.queries == 1


class TestReferenceAnswer:
    def test_ignores_capabilities(self, source):
        # year = 1999 is not supported by any form but ground truth works.
        result = reference_answer(
            source, parse_condition("year = 1999"), ["model"]
        )
        assert result.as_row_set() == {("740il",), ("Camry",), ("Civic",)}
