"""Unit tests for the Section 4 restriction-pattern factories."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import SSDLError
from repro.ssdl.capabilities import (
    atomic_only,
    conjunctive_only,
    forbidden_attributes,
    gated_exports,
    with_download,
)

TEMPLATES = {
    "make": "make = $str",
    "color": "color = $str",
    "price": "price <= $num",
}
EXPORTS = ["id", "make", "color", "price"]


class TestAtomicOnly:
    def test_accepts_single_atoms_only(self):
        desc = atomic_only(TEMPLATES, EXPORTS).build()
        assert desc.check(parse_condition("make = 'BMW'"))
        assert desc.check(parse_condition("price <= 100"))
        assert not desc.check(
            parse_condition("make = 'BMW' and price <= 100")
        )
        assert not desc.check(
            parse_condition("make = 'BMW' or make = 'Audi'")
        )

    def test_wrong_operator_rejected(self):
        desc = atomic_only(TEMPLATES, EXPORTS).build()
        assert not desc.check(parse_condition("price >= 100"))


class TestConjunctiveOnly:
    def test_accepts_conjunctions_up_to_limit(self):
        desc = conjunctive_only(TEMPLATES, EXPORTS, max_conditions=2).build()
        assert desc.check(parse_condition("make = 'BMW'"))
        assert desc.check(parse_condition("make = 'BMW' and color = 'red'"))
        assert not desc.check(
            parse_condition("make = 'BMW' and color = 'red' and price <= 1")
        )

    def test_size_restriction_is_the_only_restriction(self):
        desc = conjunctive_only(TEMPLATES, EXPORTS).build()
        assert desc.check(
            parse_condition("make = 'BMW' and color = 'red' and price <= 1")
        )

    def test_rejects_disjunctions(self):
        desc = conjunctive_only(TEMPLATES, EXPORTS).build()
        assert not desc.check(
            parse_condition("make = 'BMW' or color = 'red'")
        )

    def test_required_field(self):
        desc = conjunctive_only(TEMPLATES, EXPORTS, required=["make"]).build()
        assert desc.check(parse_condition("make = 'BMW'"))
        assert desc.check(parse_condition("make = 'BMW' and color = 'red'"))
        # A query without the required make field is rejected.
        assert not desc.check(parse_condition("color = 'red'"))
        assert not desc.check(parse_condition("color = 'red' and price <= 1"))

    def test_unknown_required_attribute(self):
        with pytest.raises(SSDLError):
            conjunctive_only(TEMPLATES, EXPORTS, required=["ghost"])

    def test_impossible_requirement(self):
        with pytest.raises(SSDLError):
            conjunctive_only(
                TEMPLATES, EXPORTS, max_conditions=1,
                required=["make", "color"],
            )

    def test_too_many_templates_guarded(self):
        many = {f"a{i}": f"a{i} = $str" for i in range(9)}
        with pytest.raises(SSDLError):
            conjunctive_only(many, ["a0"])


class TestForbiddenAttributes:
    def test_forbidden_attribute_not_filterable(self):
        desc = forbidden_attributes(TEMPLATES, EXPORTS, ["price"]).build()
        assert desc.check(parse_condition("make = 'BMW' and color = 'red'"))
        assert not desc.check(parse_condition("price <= 100"))
        assert not desc.check(parse_condition("make = 'BMW' and price <= 1"))
        # ...but still exported.
        result = desc.check(parse_condition("make = 'BMW'"))
        assert result.supports({"price"})

    def test_everything_forbidden_rejected(self):
        with pytest.raises(SSDLError):
            forbidden_attributes(TEMPLATES, EXPORTS, list(TEMPLATES))


class TestGatedExports:
    def test_pin_pattern(self):
        desc = gated_exports(
            {"account_no": "account_no = $num"},
            ["account_no", "owner"],
            gate_template="pin = $num",
            gated_attributes=["balance"],
        ).build()
        plain = desc.check(parse_condition("account_no = 7"))
        assert plain.supports({"owner"})
        assert not plain.supports({"balance"})
        gated = desc.check(parse_condition("account_no = 7 and pin = 1234"))
        assert gated.supports({"balance"})

    def test_gate_alone_is_not_a_query(self):
        desc = gated_exports(
            {"account_no": "account_no = $num"},
            ["account_no"],
            gate_template="pin = $num",
            gated_attributes=["balance"],
        ).build()
        assert not desc.check(parse_condition("pin = 1234"))


class TestWithDownload:
    def test_adds_true_rule(self):
        builder = atomic_only(TEMPLATES, EXPORTS)
        desc = with_download(builder, EXPORTS).build()
        assert desc.check(TRUE)
        assert desc.check(TRUE).supports({"id"})
