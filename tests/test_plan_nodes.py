"""Unit tests for the plan algebra nodes."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import PlanExecutionError
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    download_plan,
    make_choice,
    sp,
)

A = frozenset({"model", "year"})


def sq(text="make = 'BMW' and price < 40000", attrs=A, source="cars"):
    return SourceQuery(parse_condition(text), frozenset(attrs), source)


class TestSp:
    def test_string_input_builds_source_query(self):
        plan = sp(parse_condition("a = 1"), {"x"}, "src")
        assert isinstance(plan, SourceQuery)
        assert plan.source == "src"

    def test_plan_input_builds_postprocess(self):
        inner = sq(attrs={"model", "year", "color"})
        plan = sp(parse_condition("color = 'red'"), A, inner)
        assert isinstance(plan, Postprocess)
        assert plan.attributes == A

    def test_true_condition_same_attrs_collapses(self):
        inner = sq()
        assert sp(TRUE, A, inner) is inner

    def test_true_condition_different_attrs_projects(self):
        inner = sq(attrs={"model", "year", "color"})
        plan = sp(TRUE, A, inner)
        assert isinstance(plan, Postprocess)


class TestPostprocessValidation:
    def test_requires_condition_attributes_from_input(self):
        inner = sq(attrs=A)  # no color in the input
        with pytest.raises(PlanExecutionError):
            Postprocess(parse_condition("color = 'red'"), A, inner)

    def test_requires_projection_from_input(self):
        inner = sq(attrs={"model"})
        with pytest.raises(PlanExecutionError):
            Postprocess(TRUE, frozenset({"model", "year"}), inner)


class TestCombinations:
    def test_union_requires_matching_attributes(self):
        with pytest.raises(PlanExecutionError):
            UnionPlan([sq(attrs={"model"}), sq(attrs={"year"})])

    def test_union_requires_two_children(self):
        with pytest.raises(PlanExecutionError):
            UnionPlan([sq()])

    def test_attributes_exposed(self):
        union = UnionPlan([sq(), sq("make = 'BMW' and color = 'red'")])
        assert union.attributes == A

    def test_source_queries_iterates_leaves(self):
        plan = IntersectPlan(
            [sq(), Postprocess(TRUE, A, sq(attrs=A | {"color"}))]
        )
        assert len(list(plan.source_queries())) == 2

    def test_equality_and_hash(self):
        left = UnionPlan([sq(), sq("make = 'BMW' and color = 'red'")])
        right = UnionPlan([sq(), sq("make = 'BMW' and color = 'red'")])
        assert left == right and hash(left) == hash(right)
        assert left != IntersectPlan(list(left.children))


class TestChoice:
    def test_make_choice_none_for_empty(self):
        assert make_choice([]) is None
        assert make_choice([None, None]) is None

    def test_make_choice_collapses_singleton(self):
        only = sq()
        assert make_choice([only, None]) is only

    def test_make_choice_deduplicates(self):
        assert make_choice([sq(), sq()]) == sq()

    def test_choice_is_not_concrete(self):
        choice = make_choice([sq(), sq("make = 'BMW' and color = 'red'")])
        assert isinstance(choice, ChoicePlan)
        assert not choice.is_concrete
        wrapper = Postprocess(TRUE, frozenset({"model"}), choice)
        assert not wrapper.is_concrete

    def test_concrete_plans_report_concrete(self):
        assert sq().is_concrete
        assert UnionPlan([sq(), sq("make = 'X' and color = 'red'")]).is_concrete


class TestDownloadPlan:
    def test_fetches_condition_attributes(self):
        condition = parse_condition("color = 'red' or color = 'black'")
        plan = download_plan(condition, A, "cars")
        assert isinstance(plan, Postprocess)
        inner = plan.input
        assert isinstance(inner, SourceQuery)
        assert inner.condition.is_true
        assert inner.attrs == A | {"color"}

    def test_true_condition_download_is_bare_query(self):
        plan = download_plan(TRUE, A, "cars")
        assert isinstance(plan, SourceQuery)
        assert plan.condition.is_true
