"""The named-workload registry: discovery, seeding, the replay-twice
determinism contract for every workload, and the CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.workloads import (
    Workload,
    WorkloadReport,
    available_workloads,
    derive_seed,
    get_workload,
)
from repro.workloads.named import WORKLOADS, register

ALL_WORKLOADS = (
    "adversarial_ssdl",
    "dynamic_federation",
    "minimal_answers",
    "zipf_traffic",
)

#: Small-but-representative knobs so replay tests stay quick.
SMALL_KNOBS = {
    "dynamic_federation": dict(rounds=80, n_rows=50),
    "adversarial_ssdl": dict(n_grammars=2, conditions_per_grammar=16),
    "zipf_traffic": dict(n_requests=80, duration=0.3, n_rows=60),
    "minimal_answers": dict(n_queries=20, n_rows=60),
}


class TestRegistry:
    def test_all_four_scenarios_are_registered(self):
        assert tuple(available_workloads()) == ALL_WORKLOADS

    def test_get_workload_threads_seed_and_knobs(self):
        workload = get_workload("dynamic_federation", seed=5, rounds=10)
        assert workload.seed == 5
        assert workload.rounds == 10

    def test_unknown_name_lists_the_alternatives(self):
        with pytest.raises(KeyError, match="dynamic_federation"):
            get_workload("nope")

    def test_register_rejects_duplicates_and_anonymous(self):
        with pytest.raises(ValueError, match="registered twice"):
            @register
            class Duplicate(Workload):  # noqa: F811 - intentional clash
                name = "zipf_traffic"

                def run(self):  # pragma: no cover - never invoked
                    raise NotImplementedError

                def battery(self):  # pragma: no cover - never invoked
                    raise NotImplementedError

        with pytest.raises(ValueError, match="no workload name"):
            @register
            class Anonymous(Workload):
                def run(self):  # pragma: no cover - never invoked
                    raise NotImplementedError

                def battery(self):  # pragma: no cover - never invoked
                    raise NotImplementedError

    def test_every_workload_documents_itself(self):
        for name in ALL_WORKLOADS:
            assert WORKLOADS[name].description


class TestDeriveSeed:
    def test_stable_and_label_sensitive(self):
        assert derive_seed(1999, "traffic") == derive_seed(1999, "traffic")
        assert derive_seed(1999, "traffic") != derive_seed(1999, "faults")
        assert derive_seed(1999, "traffic") != derive_seed(2000, "traffic")
        assert 0 <= derive_seed(1999, "traffic") < 2**31


class TestReplayContract:
    """The tentpole property: every named workload, replayed with the
    same seed and knobs, reproduces its summary bit-for-bit."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_replay_twice_diffs_nothing(self, name):
        knobs = SMALL_KNOBS[name]
        first = get_workload(name, seed=271, **knobs).run()
        second = get_workload(name, seed=271, **knobs).run()
        assert first.summary == second.summary
        assert first.workload == name
        assert first.seed == 271

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_different_seeds_differ(self, name):
        knobs = SMALL_KNOBS[name]
        first = get_workload(name, seed=1, **knobs).run()
        second = get_workload(name, seed=2, **knobs).run()
        assert first.summary != second.summary


class TestWorkloadReport:
    def test_format_and_json(self):
        report = WorkloadReport("demo", 7, {"asks": 3}, {"wall": 0.5})
        text = report.format()
        assert "workload demo (seed=7)" in text
        assert "asks = 3" in text and "[wall] = 0.5" in text
        decoded = json.loads(report.to_json())
        assert decoded["summary"] == {"asks": 3}
        assert decoded["details"] == {"wall": 0.5}


class TestCLI:
    def _run(self, *args):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.workloads", *args],
            capture_output=True, text=True, env=env, timeout=120,
        )

    def test_list(self):
        proc = self._run("--list")
        assert proc.returncode == 0
        for name in ALL_WORKLOADS:
            assert name in proc.stdout

    def test_run_json(self):
        proc = self._run("minimal_answers", "--seed", "3", "--json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["workload"] == "minimal_answers"
        assert payload["seed"] == 3
        assert payload["summary"]["mismatched_answers"] == 0

    def test_battery(self):
        proc = self._run("minimal_answers", "--battery")
        assert proc.returncode == 0
        assert "PASS" in proc.stdout

    def test_unknown_workload_fails(self):
        proc = self._run("nope")
        assert proc.returncode == 2
        assert "unknown workload" in proc.stderr

    def test_no_workload_prints_usage(self):
        proc = self._run()
        assert proc.returncode == 2
