"""Unit tests for schemas and the set-semantics relation."""

import pytest

from repro.conditions.parser import parse_condition
from repro.data.relation import Relation
from repro.data.schema import AttrType, Attribute, Schema
from repro.errors import SchemaError, UnknownAttributeError


@pytest.fixture
def schema():
    return Schema.of(
        "t", [("id", AttrType.INT), ("name", AttrType.STRING),
              ("price", AttrType.FLOAT)], key="id"
    )


@pytest.fixture
def relation(schema):
    rows = [
        {"id": 1, "name": "a", "price": 10.0},
        {"id": 2, "name": "b", "price": 20.0},
        {"id": 3, "name": "a", "price": 30.0},
        {"id": 4, "name": "c", "price": 10.0},
    ]
    return Relation(schema, rows)


class TestSchema:
    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", (Attribute("a"), Attribute("a")))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", ())

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema.of("t", ["a"], key="nope")

    def test_contains_and_lookup(self, schema):
        assert "name" in schema
        assert "ghost" not in schema
        assert schema.attribute("price").type is AttrType.FLOAT
        with pytest.raises(UnknownAttributeError):
            schema.attribute("ghost")

    def test_validate_attributes(self, schema):
        assert schema.validate_attributes(["id", "name"]) == {"id", "name"}
        with pytest.raises(UnknownAttributeError):
            schema.validate_attributes(["id", "ghost"])

    def test_row_validation(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "name": "a"})  # missing price
        with pytest.raises(SchemaError):
            schema.validate_row(
                {"id": 1, "name": "a", "price": 1.0, "extra": 2}
            )
        with pytest.raises(SchemaError):
            schema.validate_row({"id": "one", "name": "a", "price": 1.0})

    def test_int_rejects_bool(self):
        attr = Attribute("n", AttrType.INT)
        assert attr.admits(3)
        assert not attr.admits(True)

    def test_float_accepts_int(self):
        assert Attribute("x", AttrType.FLOAT).admits(3)

    def test_none_is_always_admitted(self):
        assert Attribute("x", AttrType.INT).admits(None)


class TestRelationOperators:
    def test_select(self, relation):
        out = relation.select(parse_condition("name = 'a'"))
        assert len(out) == 2
        assert {r["id"] for r in out} == {1, 3}

    def test_project_deduplicates(self, relation):
        out = relation.project(["name"])
        assert len(out) == 3  # a, b, c
        assert out.schema.key is None

    def test_project_keeps_key_when_included(self, relation):
        out = relation.project(["id", "name"])
        assert out.schema.key == "id"
        assert len(out) == 4

    def test_project_unknown_attribute(self, relation):
        with pytest.raises(UnknownAttributeError):
            relation.project(["ghost"])

    def test_sp_is_select_then_project(self, relation):
        out = relation.sp(parse_condition("price <= 10"), ["name"])
        assert out.as_row_set() == {("a",), ("c",)}

    def test_union(self, relation):
        left = relation.select(parse_condition("id <= 2")).project(["name"])
        right = relation.select(parse_condition("id >= 2")).project(["name"])
        assert left.union(right).as_row_set() == {("a",), ("b",), ("c",)}

    def test_intersect(self, relation):
        left = relation.select(parse_condition("price <= 20")).project(["id", "name"])
        right = relation.select(parse_condition("price >= 20")).project(["id", "name"])
        assert left.intersect(right).as_row_set() == {(2, "b")}

    def test_intersect_anomaly_without_key(self, relation):
        # Projecting away the key makes π∩π over-approximate π(σ∧σ):
        # 'a' appears on both sides via *different* tuples (ids 1 and 3).
        # This is the paper-inherited anomaly documented in DESIGN.md.
        left = relation.select(parse_condition("price <= 20")).project(["name"])
        right = relation.select(parse_condition("price >= 20")).project(["name"])
        both = relation.sp(
            parse_condition("price <= 20 and price >= 20"), ["name"]
        )
        assert left.intersect(right).as_row_set() == {("a",), ("b",)}
        assert both.as_row_set() == {("b",)}

    def test_set_ops_require_same_attributes(self, relation):
        left = relation.project(["name"])
        right = relation.project(["id"])
        with pytest.raises(SchemaError):
            left.union(right)
        with pytest.raises(SchemaError):
            left.intersect(right)

    def test_distinct(self, schema):
        rel = Relation(
            schema,
            [{"id": 1, "name": "a", "price": 1.0},
             {"id": 1, "name": "a", "price": 1.0}],
        )
        assert len(rel.distinct()) == 1

    def test_rows_returns_copies(self, relation):
        rows = relation.rows
        rows[0]["name"] = "mutated"
        assert relation.rows[0]["name"] != "mutated"

    def test_validation_on_construction(self, schema):
        with pytest.raises(SchemaError):
            Relation(schema, [{"id": 1, "name": "a"}])
