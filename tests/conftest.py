"""Shared fixtures: the paper's Example 4.1 source and small worlds."""

from __future__ import annotations

import pytest

from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.plans.cost import CostModel
from repro.source.source import CapabilitySource
from repro.ssdl.text import parse_ssdl

EXAMPLE_41_SSDL = """
s  -> s1 | s2
s1 -> make = $m and price < $p
s2 -> make = $m and color = $c
attributes s1 : make, model, year, color
attributes s2 : make, model, year
"""

EXAMPLE_41_ROWS = [
    {"make": "BMW", "model": "328i", "year": 1998, "color": "red", "price": 38000},
    {"make": "BMW", "model": "318i", "year": 1997, "color": "black", "price": 31000},
    {"make": "BMW", "model": "740il", "year": 1999, "color": "silver", "price": 62000},
    {"make": "Toyota", "model": "Camry", "year": 1999, "color": "red", "price": 19000},
    {"make": "Toyota", "model": "Corolla", "year": 1996, "color": "blue", "price": 11000},
    {"make": "Toyota", "model": "Celica", "year": 1998, "color": "red", "price": 21000},
    {"make": "Honda", "model": "Accord", "year": 1997, "color": "black", "price": 17000},
    {"make": "Honda", "model": "Civic", "year": 1999, "color": "white", "price": 14000},
]


def make_example41_source(name: str = "cars") -> CapabilitySource:
    schema = Schema.of(
        "cars",
        [("make", AttrType.STRING), ("model", AttrType.STRING),
         ("year", AttrType.INT), ("color", AttrType.STRING),
         ("price", AttrType.INT)],
    )
    description = parse_ssdl(EXAMPLE_41_SSDL, name="example41")
    return CapabilitySource(name, Relation(schema, EXAMPLE_41_ROWS), description)


@pytest.fixture
def example41() -> CapabilitySource:
    """The paper's Example 4.1 car source, with a tiny dataset."""
    return make_example41_source()


@pytest.fixture
def example41_cost(example41) -> CostModel:
    return CostModel({example41.name: example41.stats}, k1=100.0, k2=1.0)
