"""Unit tests for independent plan-feasibility validation."""

import pytest

from repro.conditions.parser import parse_condition
from repro.plans.feasible import validate_plan
from repro.plans.nodes import SourceQuery, UnionPlan, make_choice
from tests.conftest import make_example41_source

A = frozenset({"model"})


@pytest.fixture
def catalog():
    return {"cars": make_example41_source()}


def sq(text, attrs=A, source="cars"):
    return SourceQuery(parse_condition(text), frozenset(attrs), source)


class TestValidatePlan:
    def test_supported_plan(self, catalog):
        report = validate_plan(sq("make = 'BMW' and price < 40000"), catalog)
        assert report.feasible
        assert bool(report)

    def test_none_is_infeasible(self, catalog):
        assert not validate_plan(None, catalog)

    def test_unsupported_condition_reported(self, catalog):
        report = validate_plan(sq("year = 1999"), catalog)
        assert not report.feasible
        assert len(report.unsupported) == 1

    def test_unsupported_projection_reported(self, catalog):
        report = validate_plan(
            sq("make = 'BMW' and color = 'red'", attrs={"color"}), catalog
        )
        assert not report.feasible

    def test_unknown_source_reported(self, catalog):
        report = validate_plan(
            sq("make = 'BMW' and price < 1", source="ghost"), catalog
        )
        assert not report.feasible

    def test_commuted_order_is_fine_when_fixable(self, catalog):
        report = validate_plan(sq("price < 40000 and make = 'BMW'"), catalog)
        assert report.feasible

    def test_every_query_of_composites_checked(self, catalog):
        plan = UnionPlan(
            [sq("make = 'BMW' and price < 40000"), sq("year = 1999")]
        )
        report = validate_plan(plan, catalog)
        assert not report.feasible
        assert len(report.unsupported) == 1

    def test_choice_branches_all_checked(self, catalog):
        plan = make_choice(
            [sq("make = 'BMW' and price < 40000"), sq("year = 1999")]
        )
        report = validate_plan(plan, catalog)
        assert not report.feasible
