"""Unit tests for EPG (Algorithm 5.1), walking the paper's Example 5.1/5.2."""

import pytest

from repro.conditions.parser import parse_condition
from repro.planners.base import CheckCounter
from repro.planners.epg import EPG
from repro.planners.mark import mark
from repro.plans.cost import enumerate_concrete
from repro.plans.feasible import validate_plan
from repro.plans.nodes import ChoicePlan, IntersectPlan, SourceQuery

A = frozenset({"model", "year"})


@pytest.fixture
def checker(example41):
    return CheckCounter(example41.description)


def generate(example41, checker, text, attrs=A):
    condition = parse_condition(text)
    marking = mark(condition, checker)
    epg = EPG(example41.name, checker, marking)
    return epg.generate(condition, frozenset(attrs))


class TestExample51and52:
    """t0 = (price<40000 ^ color=red ^ make=BMW): no part evaluable at R.
    t1 = ((make=BMW ^ price<40000) ^ (make=BMW ^ color=red)): two parts."""

    T0 = "price < 40000 and color = 'red' and make = 'BMW'"
    T1 = ("(make = 'BMW' and price < 40000) and "
          "(make = 'BMW' and color = 'red')")

    def test_t0_yields_no_plans(self, example41, checker):
        # Every node of t0 has an empty export field (wrong order / no
        # download rule), so EPG returns the paper's ∅.
        assert generate(example41, checker, self.T0) is None

    def test_t1_yields_feasible_plans(self, example41, checker):
        choice = generate(example41, checker, self.T1)
        assert choice is not None
        plans = list(enumerate_concrete(choice))
        assert plans, "EPG found no plans for t1"
        for plan in plans:
            assert validate_plan(plan, {example41.name: example41})

    def test_t1_contains_the_intersection_plan(self, example41, checker):
        # SP(n1, A, R) ∩ SP(n2, A, R) -- Example 5.2's first impure plan.
        choice = generate(example41, checker, self.T1)
        plans = list(enumerate_concrete(choice))
        n1 = parse_condition("make = 'BMW' and price < 40000")
        n2 = parse_condition("make = 'BMW' and color = 'red'")
        expected = IntersectPlan(
            [SourceQuery(n1, A, "cars"), SourceQuery(n2, A, "cars")]
        )
        assert expected in plans

    def test_t1_contains_the_nested_plan(self, example41, checker):
        # SP(n2, A, SP(n1, A ∪ Attr(n2), R)) -- the second impure plan:
        # evaluate n2 locally on the result of the n1 source query.
        choice = generate(example41, checker, self.T1)
        plans = list(enumerate_concrete(choice))
        nested = [
            p for p in plans
            if type(p).__name__ == "Postprocess"
            and isinstance(p.input, SourceQuery)
        ]
        assert nested, "no local-evaluation plan generated"


class TestPureAndDownload:
    def test_pure_plan_when_supported(self, example41, checker):
        choice = generate(example41, checker, "make = 'BMW' and price < 40000")
        plans = list(enumerate_concrete(choice))
        pure = SourceQuery(
            parse_condition("make = 'BMW' and price < 40000"), A, "cars"
        )
        assert pure in plans

    def test_pure_generated_even_with_impure_alternatives(
        self, example41, checker
    ):
        # EPG is exhaustive: it keeps searching even after the pure plan.
        choice = generate(example41, checker, "make = 'BMW' and price < 40000")
        assert isinstance(choice, ChoicePlan) or isinstance(choice, SourceQuery)

    def test_leaf_without_support_is_empty(self, example41, checker):
        assert generate(example41, checker, "year = 1999") is None

    def test_download_plan_when_true_supported(self):
        from repro.ssdl.builder import DescriptionBuilder
        from repro.source.source import CapabilitySource
        from tests.conftest import EXAMPLE_41_ROWS
        from repro.data.relation import Relation
        from repro.data.schema import AttrType, Schema

        schema = Schema.of(
            "cars",
            [("make", AttrType.STRING), ("model", AttrType.STRING),
             ("year", AttrType.INT), ("color", AttrType.STRING),
             ("price", AttrType.INT)],
        )
        desc = (
            DescriptionBuilder("dl")
            .rule("all", "true", attributes=["make", "model", "year", "color",
                                             "price"])
            .build()
        )
        source = CapabilitySource("cars", Relation(schema, EXAMPLE_41_ROWS), desc)
        checker = CheckCounter(source.description)
        choice = generate(source, checker, "year = 1999")
        plans = list(enumerate_concrete(choice))
        assert len(plans) == 1
        (download,) = plans
        assert download.input.condition.is_true


class TestOrNodes:
    def test_or_requires_all_children(self, example41, checker):
        # Neither disjunct alone is supported (bare atoms are not rules),
        # so the union plan cannot be built and the result is ∅.
        choice = generate(
            example41, checker, "color = 'red' or color = 'black'"
        )
        assert choice is None

    def test_or_union_when_children_plannable(self, example41, checker):
        text = ("(make = 'BMW' and price < 40000) or "
                "(make = 'Toyota' and price < 30000)")
        choice = generate(example41, checker, text)
        plans = list(enumerate_concrete(choice))
        assert any(type(p).__name__ == "UnionPlan" for p in plans)


class TestMemoization:
    def test_repeated_subtrees_share_work(self, example41, checker):
        condition = parse_condition(
            "(make = 'BMW' and price < 40000) and "
            "(make = 'BMW' and price < 40000)"
        )
        marking = mark(condition, checker)
        epg = EPG(example41.name, checker, marking)
        epg.generate(condition, A)
        # Both children are the same tree: one recursive evaluation each
        # for (node, attrs) pairs; ensure the memo is actually keyed.
        assert len(epg._memo) <= epg.stats.recursive_calls
