"""Trace-tree integration: cross-thread parenting and JSONL round-trips.

Two guarantees the tracing layer must keep under real executions:

1. **Cross-thread span parenting.**  The ParallelExecutor hands the
   submitting thread's span context to each worker, so a run at any
   worker count yields one *connected* span tree -- no orphans -- with
   exactly the serial run's tree shape (an order-insensitive multiset
   of root-to-span name paths; siblings may start in any order).
2. **Lossless JSONL export.**  Export -> reload reproduces the span
   tree and every attribute -- ids, parent links, status, recorded
   exceptions -- including the ERROR spans produced by seeded
   :class:`FaultInjector` runs.
"""

from __future__ import annotations

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import ReproError
from repro.observability import (
    Tracer,
    orphan_spans,
    read_jsonl,
    tree_shape,
    use_tracer,
)
from repro.observability.trace import STATUS_ERROR
from repro.plans.cost import CostModel
from repro.plans.execute import Executor
from repro.plans.nodes import SourceQuery, UnionPlan
from repro.plans.parallel import ParallelExecutor
from repro.plans.retry import RetryPolicy
from repro.query import TargetQuery
from repro.source.faults import FaultInjector
from repro.source.library import bookstore, standard_catalog
from tests.test_golden_battery import CORPUS, PLANNERS

WORKERS = 8

_ATTRS = frozenset({"id", "title", "author", "price"})


@pytest.fixture(scope="module")
def catalog():
    return standard_catalog(seed=1999)


def _traced(executor, plan) -> list:
    """Execute under a fresh tracer, inside one root span."""
    with use_tracer(Tracer()) as tracer:
        with tracer.span("run"):
            executor.execute(plan)
    return tracer.finished_spans()


def _mirrored_catalog(**injector_kwargs) -> dict:
    catalog = {}
    for index, name in enumerate(("b0", "b1", "b2", "b3")):
        source = bookstore(n=120, seed=1999)
        source.name = name
        if injector_kwargs:
            source.fault_injector = FaultInjector(
                seed=7 + index, **injector_kwargs
            )
        catalog[name] = source
    return catalog


def _fanout_plan() -> UnionPlan:
    """A nested union over the mirrors: real parallel fan-out."""
    jung = parse_condition("author = 'Carl Jung'")
    freud = parse_condition("author = 'Sigmund Freud'")
    return UnionPlan([
        UnionPlan([
            SourceQuery(jung, _ATTRS, "b0"),
            SourceQuery(freud, _ATTRS, "b1"),
        ]),
        UnionPlan([
            SourceQuery(jung, _ATTRS, "b2"),
            SourceQuery(freud, _ATTRS, "b3"),
        ]),
    ])


# ----------------------------------------------------------------------
# Satellite: cross-thread span parenting.


@pytest.mark.parametrize("source_name,attrs,text", CORPUS)
def test_golden_corpus_parallel_tree_matches_serial(
    catalog, source_name, attrs, text
):
    cost_model = CostModel({name: s.stats for name, s in catalog.items()})
    source = catalog[source_name]
    query = TargetQuery(parse_condition(text), frozenset(attrs), source_name)
    with ParallelExecutor(catalog, max_workers=WORKERS) as parallel:
        for planner in PLANNERS:
            result = planner.plan(query, source, cost_model)
            if not result.feasible:
                continue
            serial_spans = _traced(Executor(catalog), result.plan)
            parallel_spans = _traced(parallel, result.plan)
            assert not orphan_spans(parallel_spans), (
                f"{planner.name} produced detached spans on {text!r}"
            )
            assert tree_shape(parallel_spans) == tree_shape(serial_spans), (
                f"{planner.name} tree diverged on {text!r}"
            )


def test_nested_fanout_yields_one_connected_tree():
    catalog = _mirrored_catalog()
    plan = _fanout_plan()
    serial_spans = _traced(Executor(catalog), plan)
    with ParallelExecutor(catalog, max_workers=WORKERS) as executor:
        parallel_spans = _traced(executor, plan)
    assert not orphan_spans(parallel_spans)
    assert tree_shape(parallel_spans) == tree_shape(serial_spans)
    # Sanity on the shape itself: one root, four source calls under it,
    # each wrapping one source-service span.
    shape = tree_shape(parallel_spans)
    assert shape[("run",)] == 1
    assert shape[("run", "executor.source_call")] == 4
    assert shape[("run", "executor.source_call", "source.service")] == 4


def test_fanout_really_crossed_threads():
    # The shape test above would pass trivially if everything ran on
    # the main thread; pin down that workers actually recorded spans.
    catalog = _mirrored_catalog()
    with ParallelExecutor(catalog, max_workers=WORKERS) as executor:
        spans = _traced(executor, _fanout_plan())
    workers = {
        s.attributes["worker"] for s in spans
        if s.name == "executor.source_call"
    }
    assert workers - {"MainThread"}, "no source call ran on a worker thread"
    assert not orphan_spans(spans)


# ----------------------------------------------------------------------
# Satellite: JSONL round-trip, including exception spans.


def _assert_round_trip(spans, tmp_path):
    from repro.observability import write_jsonl

    path = tmp_path / "trace.jsonl"
    assert write_jsonl(spans, path) == len(spans)
    reloaded = read_jsonl(path)
    assert reloaded == spans  # ids, parent links, attrs, events, status
    assert tree_shape(reloaded) == tree_shape(spans)
    assert orphan_spans(reloaded) == orphan_spans(spans)
    return reloaded


def test_round_trip_of_a_clean_parallel_run(tmp_path):
    catalog = _mirrored_catalog()
    with ParallelExecutor(catalog, max_workers=WORKERS) as executor:
        spans = _traced(executor, _fanout_plan())
    reloaded = _assert_round_trip(spans, tmp_path)
    assert all(s.status != STATUS_ERROR for s in reloaded)


def test_round_trip_preserves_exception_spans(tmp_path):
    # Every draw faults and nothing retries: the source call fails,
    # the error propagates, and both spans record the exception.
    catalog = _mirrored_catalog(transient_rate=1.0)
    plan = _fanout_plan()
    with use_tracer(Tracer()) as tracer:
        with pytest.raises(ReproError):
            with tracer.span("run"):
                Executor(catalog).execute(plan)
    spans = tracer.finished_spans()
    errored = [s for s in spans if s.status == STATUS_ERROR]
    assert errored, "the faulted run recorded no ERROR spans"
    reloaded = _assert_round_trip(spans, tmp_path)
    reloaded_errors = [s for s in reloaded if s.status == STATUS_ERROR]
    for before, after in zip(errored, reloaded_errors):
        assert after.error == before.error
        names = [e.name for e in after.events]
        if after.name == "executor.source_call":
            assert "exception" in names
            exception = next(
                e for e in after.events if e.name == "exception"
            )
            assert exception.attributes["exception_type"]


def test_round_trip_of_a_recovering_faulted_run(tmp_path):
    # A recovering retry policy under seeded faults: the run succeeds,
    # the retries live on as span events/attributes, and all of it
    # survives the export.
    recovering = RetryPolicy(max_attempts=40, base_backoff=0.001)
    catalog = _mirrored_catalog(transient_rate=0.5)
    executor = Executor(catalog, retry_policy=recovering)
    with use_tracer(Tracer()) as tracer:
        with tracer.span("run"):
            report = executor.execute_with_report(_fanout_plan())
    spans = tracer.finished_spans()
    calls = [s for s in spans if s.name == "executor.source_call"]
    assert sum(s.attributes["attempts"] for s in calls) == report.attempts
    assert sum(s.attributes["retries"] for s in calls) == report.retries
    assert report.retries > 0  # seed 7..10 at rate 0.5 always retries
    retry_events = [
        e for s in calls for e in s.events if e.name == "retry"
    ]
    assert len(retry_events) == report.retries
    _assert_round_trip(spans, tmp_path)
