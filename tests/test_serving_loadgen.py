"""Load-harness regressions: accounting, both client models, percentiles.

The harness's one invariant -- ``completed + shed + errors ==
requests`` -- is checked in every scenario below, reconciled against
the mediator's own serving counters where the scenario makes that
meaningful (shed vs. admission controller, completed vs. plan cache).
"""

from __future__ import annotations

import time

import pytest

from repro.mediator import Mediator
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.serving import LoadHarness, percentile
from repro.source.faults import SimulatedLatency
from repro.source.library import bookstore, car_guide
from repro.workloads.scenarios import all_scenarios

MIX = [
    "SELECT id, title FROM bookstore WHERE author = 'Carl Jung'",
    "SELECT id, model FROM car_guide WHERE make = 'BMW'",
]


def _mediator(**kwargs) -> Mediator:
    mediator = Mediator(**kwargs)
    mediator.add_source(bookstore(n=200, seed=1999))
    mediator.add_source(car_guide(n=200, seed=1999))
    return mediator


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_small_sample_and_empty(self):
        assert percentile([], 95) == 0.0
        assert percentile([3.0], 50) == 3.0
        assert percentile([1.0, 9.0], 99) == 9.0
        assert percentile([5.0, 1.0, 9.0], 50) == 5.0  # sorts first


class TestClosedLoop:
    def test_every_request_lands_in_exactly_one_bucket(self):
        with use_metrics(MetricsRegistry()) as registry:
            mediator = _mediator(plan_cache_entries=32)
            harness = LoadHarness(mediator, MIX, threads=4)
            report = harness.run(24)
            assert report.completed + report.shed + report.errors == 24
            assert report.completed == 24 and report.shed == 0
            assert report.mode == "closed" and report.threads == 4
            assert len(report.latencies) == 24
            assert report.duration_seconds > 0
            assert report.throughput_rps > 0
            stats = mediator.plan_cache.stats
            assert stats.hits + stats.misses == 24
            snapshot = registry.snapshot()
            assert snapshot["serving.request_seconds"]["count"] == 24

    def test_shed_requests_reconcile_with_the_admission_gate(self):
        with use_metrics(MetricsRegistry()):
            mediator = _mediator(max_in_flight=1, admission_timeout=0.01)
            slow = mediator.source("bookstore")
            slow.latency = SimulatedLatency(seed=3, base=0.05, jitter=0.0)
            harness = LoadHarness(mediator, [MIX[0]], threads=6)
            report = harness.run(12)
            assert report.completed + report.shed + report.errors == 12
            assert report.shed >= 1
            assert report.shed == mediator.admission.shed
            assert report.completed == mediator.admission.admitted

    def test_infeasible_queries_land_in_the_errors_bucket(self):
        with use_metrics(MetricsRegistry()):
            mediator = _mediator()
            # car_guide has no 'author' attribute -> UnsupportedQueryError.
            bad = "SELECT id FROM car_guide WHERE author = 'Carl Jung'"
            harness = LoadHarness(mediator, [MIX[0], bad], threads=2)
            report = harness.run(8)
            assert report.completed + report.shed + report.errors == 8
            assert report.errors == 4 and report.completed == 4

    def test_scenario_mix_replays(self):
        """The workload scenarios are valid harness input end to end."""
        with use_metrics(MetricsRegistry()):
            scenarios = all_scenarios(seed=1999)
            mediator = Mediator(plan_cache_entries=64)
            for scenario in scenarios:
                mediator.add_source(scenario.source)
            queries = [scenario.query for scenario in scenarios]
            report = LoadHarness(mediator, queries, threads=2).run(6)
            assert report.completed == 6
            # Two passes over a three-query mix: pass two hits except
            # where a second occurrence raced its still-in-flight first.
            assert mediator.plan_cache.stats.hits >= 2


class TestOpenLoop:
    def test_arrivals_are_paced_by_the_rate(self):
        with use_metrics(MetricsRegistry()):
            mediator = _mediator(plan_cache_entries=32)
            harness = LoadHarness(mediator, MIX, threads=2,
                                  mode="open", rate=100.0)
            started = time.perf_counter()
            report = harness.run(10)
            elapsed = time.perf_counter() - started
            assert report.completed == 10
            assert report.mode == "open"
            # The last arrival is scheduled at 9/100 = 90ms from the
            # epoch: an open-loop run cannot finish before it.
            assert elapsed >= 0.09

    def test_open_loop_requires_a_rate(self):
        with pytest.raises(ValueError):
            LoadHarness(_mediator(), MIX, mode="open")
        with pytest.raises(ValueError):
            LoadHarness(_mediator(), MIX, mode="open", rate=0.0)


class TestValidation:
    def test_rejects_bad_arguments(self):
        mediator = _mediator()
        with pytest.raises(ValueError):
            LoadHarness(mediator, [])
        with pytest.raises(ValueError):
            LoadHarness(mediator, MIX, threads=0)
        with pytest.raises(ValueError):
            LoadHarness(mediator, MIX, mode="sideways")
        with pytest.raises(ValueError):
            LoadHarness(mediator, MIX).run(0)

    def test_report_format_is_one_line(self):
        with use_metrics(MetricsRegistry()):
            report = LoadHarness(_mediator(), MIX, threads=2).run(4)
            text = report.format()
            assert text.startswith("loadgen [closed] 2 threads, 4 requests")
            assert "p95=" in text and "req/s" in text
            assert "\n" not in text
