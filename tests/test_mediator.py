"""Integration tests for the Mediator facade and the query parser."""

import pytest

from repro.errors import (
    ConditionParseError,
    InfeasiblePlanError,
    PlanExecutionError,
    UnknownAttributeError,
)
from repro.mediator import Mediator
from repro.planners.baselines import DNFPlanner
from repro.query import parse_query
from tests.conftest import make_example41_source


@pytest.fixture
def mediator():
    m = Mediator()
    m.add_source(make_example41_source())
    return m


class TestParseQuery:
    def test_basic(self):
        query = parse_query(
            "SELECT model, year FROM cars WHERE make = 'BMW' and price < 40000"
        )
        assert query.attributes == {"model", "year"}
        assert query.source == "cars"
        assert query.condition.is_and

    def test_no_where_is_true(self):
        query = parse_query("SELECT model FROM cars")
        assert query.condition.is_true

    def test_case_insensitive_keywords(self):
        query = parse_query("select model from cars where make = 'BMW'")
        assert query.source == "cars"

    def test_trailing_semicolon(self):
        assert parse_query("SELECT a FROM t;").attributes == {"a"}

    def test_round_trip_text(self):
        query = parse_query("SELECT model FROM cars WHERE make = 'BMW'")
        again = parse_query(query.to_text())
        assert again == query

    @pytest.mark.parametrize(
        "bad",
        ["", "SELECT FROM cars", "model FROM cars", "SELECT a WHERE b = 1"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConditionParseError):
            parse_query(bad)


class TestMediator:
    def test_ask_end_to_end(self, mediator):
        answer = mediator.ask(
            "SELECT model, year FROM cars "
            "WHERE make = 'BMW' and price < 40000"
        )
        assert {row["model"] for row in answer.rows} == {"328i", "318i"}
        assert answer.report.queries == 1
        assert answer.planning.feasible

    def test_ask_fixes_order(self, mediator):
        answer = mediator.ask(
            "SELECT model FROM cars WHERE price < 40000 and make = 'BMW'"
        )
        assert len(answer.rows) == 2

    def test_infeasible_raises(self, mediator):
        with pytest.raises(InfeasiblePlanError):
            mediator.ask("SELECT model FROM cars WHERE year = 1999")

    def test_unknown_source(self, mediator):
        with pytest.raises(PlanExecutionError):
            mediator.ask("SELECT a FROM nowhere WHERE a = 1")

    def test_unknown_projection_attribute(self, mediator):
        with pytest.raises(UnknownAttributeError):
            mediator.plan("SELECT ghost FROM cars WHERE make = 'BMW'")

    def test_unknown_condition_attribute(self, mediator):
        with pytest.raises(UnknownAttributeError):
            mediator.plan("SELECT model FROM cars WHERE ghost = 1")

    def test_duplicate_source_rejected(self, mediator):
        with pytest.raises(PlanExecutionError):
            mediator.add_source(make_example41_source())

    def test_per_query_planner_override(self, mediator):
        result = mediator.plan(
            "SELECT model FROM cars WHERE make = 'BMW' and price < 40000",
            DNFPlanner(),
        )
        assert result.planner == "DNF"

    def test_answer_exposes_relation(self, mediator):
        answer = mediator.ask(
            "SELECT model FROM cars WHERE make = 'BMW' and color = 'red'"
        )
        assert answer.result.as_row_set() == {("328i",)}

    def test_cost_model_covers_all_sources(self, mediator):
        cm = mediator.cost_model()
        assert "cars" in cm.stats
