"""AsyncExecutor under load: fan-out, cancellation, resource hygiene.

What the event-loop engine must survive that the thread pool never
could (or could only by burning a thread per call):

* a 2,000-leaf union under seeded faults, within a deadline, while the
  process grows by exactly **one** thread (the loop) -- no pool;
* retry backoff spent with ``asyncio.sleep``: concurrent calls back
  off *simultaneously*, so the report's accumulated backoff exceeds
  the wall clock that elapsed;
* Intersect cancellation: the first deterministic failure cancels the
  surviving (slow, coalesced) branches and leaves nothing behind -- no
  orphan tasks, no held concurrency slots, the source immediately
  usable again;
* admission integration: one async ask occupies one admission slot no
  matter how wide its internal fan-out; a second concurrent ask sheds.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import OverloadError, QueryFixingError
from repro.mediator import Mediator
from repro.plans.async_exec import AsyncExecutor
from repro.plans.nodes import IntersectPlan, SourceQuery, UnionPlan
from repro.plans.retry import RetryPolicy
from repro.source.faults import FaultInjector, SimulatedLatency
from repro.source.library import BOOK_EXPORTS, bookstore

_ATTRS = frozenset(BOOK_EXPORTS)

#: Always recovers (p_fail^40 ~ 0) and really sleeps its backoff -- on
#: the loop that means ``asyncio.sleep``, never a blocked thread.
_RECOVERING = RetryPolicy(
    max_attempts=40, base_backoff=0.001, real_sleep=True
)


def _loop_threads() -> int:
    return sum(
        1 for t in threading.enumerate() if t.name == "repro-async-loop"
    )


class TestFanOut:
    def test_two_thousand_faulted_calls_one_extra_thread(self):
        catalog = {}
        for index in range(4):
            source = bookstore(n=50, seed=1999)
            source.name = f"b{index}"
            source.latency = SimulatedLatency(
                seed=index, base=0.002, real_sleep=True
            )
            source.fault_injector = FaultInjector(
                seed=11 + index, transient_rate=0.15, timeout_rate=0.05
            )
            catalog[source.name] = source
        # 2,000 distinct leaves (coalescing has nothing to collapse):
        # one known author, 1,999 misses.
        leaves = [
            SourceQuery(
                parse_condition("author = 'Carl Jung'"), _ATTRS, "b0"
            )
        ] + [
            SourceQuery(
                parse_condition(f"author = 'nobody-{index}'"),
                _ATTRS,
                f"b{index % 4}",
            )
            for index in range(1, 2000)
        ]
        before = threading.active_count()
        started = time.perf_counter()
        with AsyncExecutor(catalog, retry_policy=_RECOVERING) as executor:
            report = executor.execute_with_report(UnionPlan(leaves))
            during = threading.active_count()
            assert executor.pending_task_count() == 0
        elapsed = time.perf_counter() - started
        # Deadline guard: 2,000 concurrent 2 ms sleeps plus retries must
        # overlap, not serialize (serially this is > 4 s before faults).
        assert elapsed < 20.0
        assert during - before == 1  # the loop thread and nothing else
        assert report.queries == 2000
        assert report.attempts >= 2000
        assert report.retries > 0  # the injectors really fired
        assert len(report.result) > 0  # Carl Jung's books survived
        for source in catalog.values():
            assert source.in_flight == 0
        # close() joined the loop thread.
        assert _loop_threads() == 0

    def test_backoff_is_spent_concurrently_not_serially(self):
        source = bookstore(n=50, seed=1999)
        source.fault_injector = FaultInjector(seed=3, transient_rate=0.5)
        policy = RetryPolicy(
            max_attempts=40, base_backoff=0.05, real_sleep=True
        )
        leaves = [
            SourceQuery(
                parse_condition(f"author = 'nobody-{index}'"),
                _ATTRS,
                "bookstore",
            )
            for index in range(40)
        ]
        started = time.perf_counter()
        with AsyncExecutor(
            {"bookstore": source}, retry_policy=policy
        ) as executor:
            report = executor.execute_with_report(UnionPlan(leaves))
        elapsed = time.perf_counter() - started
        assert report.retries > 0
        # The one-line proof the waits were asyncio.sleep: more backoff
        # was *accumulated* than wall-clock time passed, which is only
        # possible if the calls backed off simultaneously.
        assert report.backoff_seconds > elapsed


class TestIntersectCancellation:
    def _world(self):
        rejecting = bookstore(n=30, seed=1999)
        rejecting.name = "rejecting"
        slow = bookstore(n=30, seed=1999)
        slow.name = "slow"
        slow.max_concurrency = 1
        slow.latency = SimulatedLatency(seed=5, base=0.5, real_sleep=True)
        return {"rejecting": rejecting, "slow": slow}

    def test_first_failure_cancels_slow_siblings_cleanly(self):
        catalog = self._world()
        # Child 0 fails deterministically (price-only queries are
        # outside the bookstore grammar); children 1 and 2 are the
        # *same* slow call, so they share one coalesced flight whose
        # two waiters both get cancelled.
        doomed = SourceQuery(
            parse_condition("price <= 40"), _ATTRS, "rejecting"
        )
        slow_leaf = SourceQuery(
            parse_condition("author = 'Carl Jung'"), _ATTRS, "slow"
        )
        plan = IntersectPlan([doomed, slow_leaf, slow_leaf])
        with AsyncExecutor(catalog) as executor:
            started = time.perf_counter()
            with pytest.raises(QueryFixingError):
                executor.execute(plan)
            elapsed = time.perf_counter() - started
            # The slow branches (0.5 s) were cancelled, not awaited.
            assert elapsed < 0.4
            assert executor.pending_task_count() == 0
            assert catalog["slow"].in_flight == 0
            # The cancelled flight released its one concurrency slot:
            # a fresh call on the same source completes instead of
            # deadlocking on a leaked semaphore.
            with ThreadPoolExecutor(max_workers=1) as pool:
                future = pool.submit(executor.execute, slow_leaf)
                result = future.result(timeout=5.0)
            assert len(result) >= 0
        assert catalog["slow"].meter.snapshot().queries == 1

    def test_cancellation_during_gate_wait_releases_nothing_twice(self):
        catalog = self._world()
        # Two *different* slow calls on a concurrency-1 source: the
        # second waits on the gate itself when the intersect dies.
        doomed = SourceQuery(
            parse_condition("price <= 40"), _ATTRS, "rejecting"
        )
        slow_a = SourceQuery(
            parse_condition("author = 'Carl Jung'"), _ATTRS, "slow"
        )
        slow_b = SourceQuery(
            parse_condition("author = 'Sigmund Freud'"), _ATTRS, "slow"
        )
        plan = IntersectPlan([doomed, slow_a, slow_b])
        with AsyncExecutor(catalog) as executor:
            with pytest.raises(QueryFixingError):
                executor.execute(plan)
            assert executor.pending_task_count() == 0
            assert catalog["slow"].in_flight == 0
            with ThreadPoolExecutor(max_workers=1) as pool:
                future = pool.submit(executor.execute, slow_a)
                future.result(timeout=5.0)


class TestAdmissionIntegration:
    def test_one_async_ask_holds_one_slot_despite_fan_out(self):
        mediator = Mediator(executor="async", max_in_flight=1)
        source = bookstore(n=100, seed=1999)
        mediator.add_source(source)
        try:
            # The disjunction plans into a two-leaf union: both leaves
            # execute inside the *one* admission slot this ask holds.
            answer = mediator.ask(
                "SELECT title FROM bookstore WHERE "
                "author = 'Carl Jung' or author = 'Sigmund Freud'"
            )
            assert answer.report.queries == 2
        finally:
            mediator.close()

    def test_second_concurrent_ask_sheds(self):
        mediator = Mediator(executor="async", max_in_flight=1,
                            admission_timeout=0.05)
        source = bookstore(n=100, seed=1999)
        source.latency = SimulatedLatency(seed=9, base=0.4, real_sleep=True)
        mediator.add_source(source)
        query = "SELECT title FROM bookstore WHERE author = 'Carl Jung'"
        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                first = pool.submit(mediator.ask, query)
                time.sleep(0.1)  # let the first ask take the slot
                with pytest.raises(OverloadError):
                    mediator.ask(query)
                assert len(first.result(timeout=5.0).rows) > 0
            # Slot released: the mediator serves again.
            assert len(mediator.ask(query).rows) > 0
        finally:
            mediator.close()
