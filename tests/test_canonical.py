"""Unit tests for Section 6.4 canonical form."""

from repro.conditions.canonical import canonicalize, is_canonical
from repro.conditions.parser import parse_condition
from repro.conditions.semantics import logically_equivalent
from repro.conditions.tree import TRUE


class TestPaperExamples:
    def test_flat_conjunction_is_canonical(self):
        # "(price < 40000 ^ color = red ^ make = BMW) is canonical because
        # all of the root node's three children are leaf nodes."
        tree = parse_condition(
            "price < 40000 and color = 'red' and make = 'BMW'"
        )
        assert is_canonical(tree)
        assert canonicalize(tree) == tree

    def test_nested_same_kind_is_not_canonical(self):
        # "(price < 40000 ^ (color = red ^ make = BMW)) is not canonical."
        tree = parse_condition(
            "price < 40000 and (color = 'red' and make = 'BMW')"
        )
        assert not is_canonical(tree)
        flat = canonicalize(tree)
        assert is_canonical(flat)
        assert flat == parse_condition(
            "price < 40000 and color = 'red' and make = 'BMW'"
        )


class TestProperties:
    def test_alternating_tree_untouched(self):
        tree = parse_condition("a = 1 and (b = 2 or c = 3)")
        assert canonicalize(tree) == tree

    def test_deeply_nested_flattening(self):
        tree = parse_condition("a = 1 and (b = 2 and (c = 3 and d = 4))")
        flat = canonicalize(tree)
        assert flat.is_and and len(flat.children) == 4

    def test_preserves_leaf_order(self):
        tree = parse_condition("(b = 2 and a = 1) and (d = 4 and c = 3)")
        flat = canonicalize(tree)
        assert [leaf.atom.attribute for leaf in flat.children] == [
            "b", "a", "d", "c",
        ]

    def test_mixed_nesting(self):
        tree = parse_condition(
            "(a = 1 or (b = 2 or c = 3)) and (d = 4 and e = 5)"
        )
        flat = canonicalize(tree)
        assert is_canonical(flat)
        assert flat.is_and and len(flat.children) == 3
        assert flat.children[0].is_or and len(flat.children[0].children) == 3

    def test_idempotent_and_equivalent(self):
        tree = parse_condition(
            "((a = 1 and b = 2) and c = 3) or ((d = 4 or e = 5) or f = 6)"
        )
        once = canonicalize(tree)
        assert canonicalize(once) == once
        assert logically_equivalent(tree, once)

    def test_true_and_leaves_pass_through(self):
        assert canonicalize(TRUE) is TRUE
        leaf_tree = parse_condition("a = 1")
        assert canonicalize(leaf_tree) == leaf_tree
