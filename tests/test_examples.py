"""Smoke tests: every shipped example must run and print what it promises.

Each example's ``main()`` is executed in-process with stdout captured.
These are the library's end-to-end integration tests from the user's
chair.
"""

import importlib.util
import pathlib
import sys


EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "chosen plan" in out
        assert "executed with 2 source queries" in out

    def test_car_shopping(self, capsys):
        out = run_example("car_shopping", capsys)
        assert "GenCompact" in out and "infeasible" in out
        assert "paper's notation" in out

    def test_custom_source(self, capsys):
        out = run_example("custom_source", capsys)
        assert "order-fixed" in out
        assert "s2 cannot export color" in out

    def test_bank_pin(self, capsys):
        out = run_example("bank_pin", capsys)
        assert "infeasible (as the policy demands)" in out
        assert "refused by the source itself" in out

    def test_connecting_flights(self, capsys):
        out = run_example("connecting_flights", capsys)
        assert "leg-pairs found" in out

    def test_price_comparison(self, capsys):
        out = run_example("price_comparison", capsys)
        assert "dealer wins" in out
        assert "classifieds wins" in out

    def test_web_form(self, capsys):
        out = run_example("web_form", capsys)
        assert "compiled" in out and "grammar rules" in out
        assert "4-field query" in out

    def test_discover_capabilities(self, capsys):
        out = run_example("discover_capabilities", capsys)
        assert "inferred description" in out
        assert "-> rejected" in out  # order sensitivity learned

    def test_reproduce_paper_help(self, capsys):
        """The experiment runner example delegates to the CLI; just check
        it wires up (running the full suite is the benchmarks' job)."""
        from repro.experiments.__main__ import main

        assert main(["--quick", "e8"]) == 0
        assert "E8" in capsys.readouterr().out
