"""Cross-process trace propagation: ``TraceContext`` inject/extract,
remote-parented spans, and propagated sampling decisions.

The contract under test: a context injected on one side and extracted
on the other reconstructs the same identity bit-for-bit; spans opened
under ``attach_remote`` land in the caller's trace with the caller's
span as parent; a ``SamplingTracer`` on the callee side honors the
*caller's* sampling decision instead of re-flipping its own coin; and
a remote-parented trace survives the JSONL export/reload round trip
with its ancestry intact.
"""

from __future__ import annotations

import threading

import pytest

from repro.observability import (
    NullTracer,
    SamplingTracer,
    TRACEPARENT_HEADER,
    TraceContext,
    Tracer,
    read_jsonl,
    use_tracer,
    write_jsonl,
)
from repro.observability.trace import MAX_REMOTE_TRACES


class TestTraceContext:
    def test_traceparent_round_trip(self):
        context = TraceContext(trace_id=0xABC, span_id=0x123, sampled=True)
        header = context.to_traceparent()
        assert header == f"00-{0xABC:032x}-{0x123:016x}-01"
        assert TraceContext.from_traceparent(header) == context

    def test_unsampled_flag_round_trips(self):
        context = TraceContext(trace_id=5, span_id=9, sampled=False)
        assert context.to_traceparent().endswith("-00")
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed is not None and parsed.sampled is False

    def test_inject_extract_round_trip(self):
        context = TraceContext(trace_id=(1 << 127) + 3, span_id=(1 << 63) + 7)
        carrier = context.inject()
        assert TRACEPARENT_HEADER in carrier
        assert TraceContext.extract(carrier) == context

    def test_inject_into_existing_headers_preserves_them(self):
        carrier = {"content-type": "application/json"}
        TraceContext(trace_id=1, span_id=2).inject(carrier)
        assert carrier["content-type"] == "application/json"
        assert TraceContext.extract(carrier) is not None

    def test_extract_is_header_case_insensitive(self):
        context = TraceContext(trace_id=7, span_id=11)
        carrier = {"Traceparent": context.to_traceparent()}
        assert TraceContext.extract(carrier) == context

    @pytest.mark.parametrize("header", [
        "",
        "garbage",
        "00-zz-11-01",                              # non-hex
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "00-" + "1" * 31 + "-" + "1" * 16 + "-01",  # short trace id
        "00-" + "1" * 32 + "-" + "1" * 16 + "-1",   # short flags
        None,
        42,
    ])
    def test_malformed_headers_extract_to_none(self, header):
        assert TraceContext.from_traceparent(header) is None
        carrier = {TRACEPARENT_HEADER: header}
        assert TraceContext.extract(carrier) is None

    def test_uppercase_hex_is_normalized_not_rejected(self):
        header = "00-" + "A" * 32 + "-" + "1" * 16 + "-01"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == int("a" * 32, 16)

    def test_extract_of_empty_or_missing_carrier(self):
        assert TraceContext.extract(None) is None
        assert TraceContext.extract({}) is None
        assert TraceContext.extract({"other": "x"}) is None

    def test_out_of_range_ids_are_rejected_at_construction(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id=0, span_id=1)
        with pytest.raises(ValueError):
            TraceContext(trace_id=1, span_id=0)
        with pytest.raises(ValueError):
            TraceContext(trace_id=1 << 128, span_id=1)
        with pytest.raises(ValueError):
            TraceContext(trace_id=1, span_id=1 << 64)


class TestCurrentContext:
    def test_no_open_span_means_no_context(self):
        assert Tracer().current_trace_context() is None

    def test_context_snapshots_the_active_span(self):
        tracer = Tracer()
        with tracer.span("outer"), tracer.span("inner") as inner:
            context = tracer.current_trace_context()
            assert context is not None
            assert context.trace_id == inner.trace_id
            assert context.span_id == inner.span_id
            assert context.sampled is True

    def test_full_recorder_propagates_sampled_true(self):
        tracer = Tracer()
        assert tracer.sampling_decision(12345) is True

    def test_null_tracer_has_no_context_and_samples_nothing(self):
        tracer = NullTracer()
        assert tracer.current_trace_context() is None
        assert tracer.sampling_decision(1) is False
        assert tracer.remote_context(1) is None
        context = TraceContext(trace_id=1, span_id=1)
        with tracer.attach_remote(context):
            pass  # a no-op context manager, not an error


class TestAttachRemote:
    def _hop(self, caller, callee):
        """One simulated process hop: caller injects, callee extracts."""
        with caller.span("client.call"):
            carrier = caller.current_trace_context().inject()
        context = TraceContext.extract(carrier)
        with callee.attach_remote(context):
            with callee.span("server.ask"):
                with callee.span("server.plan"):
                    pass
        return context

    def test_local_spans_join_the_remote_trace(self):
        caller, callee = Tracer(), Tracer()
        context = self._hop(caller, callee)
        spans = callee.finished_spans()
        assert [s.name for s in spans] == ["server.plan", "server.ask"]
        assert all(s.trace_id == context.trace_id for s in spans)
        root = spans[-1]
        assert root.parent_id == context.span_id
        assert spans[0].parent_id == root.span_id

    def test_placeholder_span_is_never_recorded(self):
        callee = Tracer()
        context = TraceContext(trace_id=3, span_id=4)
        with callee.attach_remote(context) as placeholder:
            assert placeholder.attributes["remote"] is True
        assert callee.finished_spans() == []

    def test_remote_context_is_remembered(self):
        callee = Tracer()
        context = TraceContext(trace_id=21, span_id=22, sampled=False)
        with callee.attach_remote(context):
            assert callee.remote_context(21) == context
        assert callee.remote_context(999) is None

    def test_remote_table_is_bounded(self):
        callee = Tracer()
        for offset in range(MAX_REMOTE_TRACES + 10):
            with callee.attach_remote(
                TraceContext(trace_id=offset + 1, span_id=1)
            ):
                pass
        assert callee.remote_context(1) is None  # oldest evicted
        assert callee.remote_context(MAX_REMOTE_TRACES + 10) is not None

    def test_nested_local_work_sees_remote_ancestry_in_context(self):
        callee = Tracer()
        context = TraceContext(trace_id=77, span_id=88)
        with callee.attach_remote(context):
            with callee.span("work"):
                current = callee.current_trace_context()
                assert current.trace_id == 77
                assert current.span_id != 88  # the local span, not the
                # remote placeholder, is what propagates onward


class TestPropagatedSamplingDecision:
    def _serve_remote(self, tracer, context):
        with tracer.attach_remote(context):
            with tracer.span("server.ask"):
                pass

    def test_remote_keep_decision_overrides_local_drop(self):
        tracer = SamplingTracer(ratio=0.0)  # would drop everything
        context = TraceContext(trace_id=101, span_id=5, sampled=True)
        self._serve_remote(tracer, context)
        assert tracer.traces_kept == 1
        assert tracer.sampling_decision(101) is True

    def test_remote_drop_decision_overrides_local_keep(self):
        tracer = SamplingTracer(ratio=1.0)  # would keep everything
        context = TraceContext(trace_id=102, span_id=5, sampled=False)
        self._serve_remote(tracer, context)
        assert tracer.traces_dropped == 1
        assert tracer.sampling_decision(102) is False

    def test_unknown_trace_falls_back_to_the_head_coin(self):
        tracer = SamplingTracer(ratio=1.0)
        assert tracer.sampling_decision(424242) is True

    def test_tail_rules_still_keep_an_unsampled_remote_error(self):
        tracer = SamplingTracer(ratio=0.0)
        context = TraceContext(trace_id=103, span_id=5, sampled=False)
        with tracer.attach_remote(context):
            with pytest.raises(RuntimeError):
                with tracer.span("server.ask"):
                    raise RuntimeError("boom")
        assert tracer.traces_kept == 1

    def test_remote_parented_root_settles_the_trace(self):
        """The local top span under attach_remote *is* the local root:
        the trace must settle, not pend forever waiting for the remote
        parent to finish in this process."""
        tracer = SamplingTracer(ratio=1.0)
        context = TraceContext(trace_id=104, span_id=5, sampled=True)
        with tracer.attach_remote(context):
            with tracer.span("server.ask"):
                with tracer.span("server.plan"):
                    pass
        assert tracer.stats()["pending_traces"] == 0
        assert tracer.traces_kept == 1
        assert tracer.spans_kept == 2

    def test_decision_is_propagated_onward_unchanged(self):
        """A middle hop re-injects the decision it extracted."""
        tracer = SamplingTracer(ratio=1.0)  # local coin says keep
        inbound = TraceContext(trace_id=105, span_id=5, sampled=False)
        with tracer.attach_remote(inbound):
            with use_tracer(tracer):
                with tracer.span("server.ask"):
                    outbound = tracer.current_trace_context()
        assert outbound.trace_id == 105
        assert outbound.sampled is False  # the caller's decision, not ours


class TestPinnedTraces:
    def test_pin_keeps_a_trace_the_head_would_drop(self):
        tracer = SamplingTracer(ratio=0.0)
        with tracer.span("root") as root:
            tracer.pin_trace(root.trace_id)
        assert tracer.traces_kept == 1
        assert tracer.traces_pinned == 1
        assert tracer.stats()["pinned_traces"] == 0  # consumed

    def test_pin_after_settle_is_a_noop(self):
        tracer = SamplingTracer(ratio=0.0)
        with tracer.span("root") as root:
            pass
        tracer.pin_trace(root.trace_id)
        assert tracer.traces_kept == 0
        assert tracer.stats()["pinned_traces"] == 1  # parked, bounded

    def test_pin_table_is_bounded(self):
        tracer = SamplingTracer(ratio=0.0, max_pending_traces=4)
        for trace_id in range(1, 10):
            tracer.pin_trace(trace_id)
        assert tracer.stats()["pinned_traces"] == 4

    def test_reset_clears_pins(self):
        tracer = SamplingTracer(ratio=0.0)
        tracer.pin_trace(1)
        tracer.reset()
        assert tracer.stats()["pinned_traces"] == 0
        assert tracer.traces_pinned == 0


class TestExportRoundTrip:
    def test_remote_parented_trace_survives_jsonl(self, tmp_path):
        """Serialize a remote-parented trace, reload it, and check the
        ancestry: the reloaded spans still chain up to the remote span
        id that never lived in this process."""
        caller, callee = Tracer(), SamplingTracer(ratio=1.0)
        with caller.span("client.call"):
            carrier = caller.current_trace_context().inject()
        context = TraceContext.extract(carrier)
        with callee.attach_remote(context):
            with callee.span("server.ask"):
                with callee.span("server.plan"):
                    pass
                with callee.span("server.execute"):
                    pass
        path = tmp_path / "remote.jsonl"
        count = write_jsonl(callee.finished_spans(), path)
        assert count == 3
        reloaded = read_jsonl(path)
        assert len(reloaded) == 3
        by_name = {span.name: span for span in reloaded}
        root = by_name["server.ask"]
        assert root.trace_id == context.trace_id
        assert root.parent_id == context.span_id
        for child in ("server.plan", "server.execute"):
            assert by_name[child].parent_id == root.span_id
            assert by_name[child].trace_id == context.trace_id
        # The reloaded ids re-inject to the same wire form.
        rebuilt = TraceContext(trace_id=root.trace_id, span_id=root.span_id)
        again = TraceContext.extract(rebuilt.inject())
        assert (again.trace_id, again.span_id) == (root.trace_id,
                                                   root.span_id)


class TestConcurrentRemoteAttach:
    def test_parallel_hops_keep_their_own_ancestry(self):
        """16 threads each attach a distinct remote context and trace
        local work; every span must land in its own thread's remote
        trace (ContextVar isolation) and every decision must be honored
        exactly."""
        tracer = SamplingTracer(ratio=0.0, capacity=4096)
        contexts = [
            # High span ids: a real remote id comes from another
            # process's allocator and never collides with this one's
            # low sequential ids.
            TraceContext(trace_id=1000 + i, span_id=(1 << 40) + i,
                         sampled=(i % 2 == 0))
            for i in range(16)
        ]
        errors: list[BaseException] = []

        def hop(context: TraceContext) -> None:
            try:
                for _ in range(20):
                    with tracer.attach_remote(context):
                        with tracer.span("server.ask"):
                            with tracer.span("server.plan"):
                                pass
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=hop, args=(c,))
                   for c in contexts]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        sampled = {c.trace_id for c in contexts if c.sampled}
        assert tracer.traces_kept == 20 * len(sampled)
        assert tracer.traces_dropped == 20 * (16 - len(sampled))
        for span in tracer.finished_spans():
            assert span.trace_id in sampled
            context = tracer.remote_context(span.trace_id)
            if span.name == "server.ask":
                assert span.parent_id == context.span_id
