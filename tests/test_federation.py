"""Dynamic federation: eager removal, capability drift, the stale-plan
oracle, and the concurrent catalog-version race batteries."""

from __future__ import annotations

import random
import threading
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasiblePlanError, PlanExecutionError
from repro.mediator import Mediator
from repro.ssdl.builder import DescriptionBuilder
from repro.workloads.federation import (
    DriftingCatalog,
    DynamicFederationWorkload,
    oracle_ask,
)
from tests.conftest import make_example41_source

BMW = "SELECT model FROM {} WHERE make = 'BMW' and price < 40000"


@pytest.fixture
def served_mediator():
    """Two sources behind a plan cache, with cars2's plan hot."""
    mediator = Mediator(plan_cache_entries=64)
    mediator.add_source(make_example41_source("cars"))
    mediator.add_source(make_example41_source("cars2"))
    mediator.ask(BMW.format("cars2"))  # populate cache + template store
    mediator.ask(BMW.format("cars2"))
    assert mediator.plan_cache.stats.hits == 1
    return mediator


class TestRemoveSource:
    def test_removed_source_cannot_be_served_from_cache(self, served_mediator):
        """The regression the eager path exists for: a removed source
        must never be answerable from a cached plan."""
        served_mediator.remove_source("cars2")
        with pytest.raises(PlanExecutionError, match="unknown source"):
            served_mediator.ask(BMW.format("cars2"))

    def test_removed_source_cannot_be_template_rebound(self, served_mediator):
        """A constant-varying respelling (the template-rebind path) of a
        removed source's query must fail too, not rebind a stale plan."""
        served_mediator.remove_source("cars2")
        with pytest.raises(PlanExecutionError, match="unknown source"):
            served_mediator.ask(
                "SELECT model FROM cars2 "
                "WHERE make = 'Honda' and price < 20000"
            )

    def test_removal_is_eager(self, served_mediator):
        """Cache, template store and compiled grammars drop *now*, not
        lazily at next lookup."""
        source = served_mediator.remove_source("cars2")
        assert len(served_mediator.plan_cache) == 0
        assert len(served_mediator.plan_templates) == 0
        assert not source.description.compiled
        assert "cars2" not in served_mediator._compiled_versions

    def test_survivor_still_served(self, served_mediator):
        served_mediator.remove_source("cars2")
        assert served_mediator.ask(BMW.format("cars")).rows

    def test_unknown_source_raises(self, served_mediator):
        with pytest.raises(PlanExecutionError, match="unknown source"):
            served_mediator.remove_source("nope")

    def test_removed_source_can_rejoin(self, served_mediator):
        removed = served_mediator.remove_source("cars2")
        version = served_mediator.catalog_version
        served_mediator.add_source(removed)
        assert served_mediator.catalog_version > version
        assert served_mediator.ask(BMW.format("cars2")).rows

    def test_removal_bumps_version_and_counts(self, served_mediator):
        version = served_mediator.catalog_version
        served_mediator.remove_source("cars2")
        assert served_mediator.catalog_version == version + 1


class TestMutateSource:
    def test_post_drift_semantics(self):
        """After a mutation the *new* grammar governs immediately: a
        shape the old grammar supported becomes infeasible, a cached
        plan for it is never served."""
        mediator = Mediator(plan_cache_entries=64)
        mediator.add_source(make_example41_source("cars"))
        query = BMW.format("cars")
        assert mediator.ask(query).rows  # hot in the cache
        narrow = (
            DescriptionBuilder("narrowed")
            .rule("only_color", "color = $str",
                  attributes=["make", "model", "year", "color"])
            .build()
        )
        version = mediator.catalog_version
        mediator.mutate_source("cars", narrow)
        assert mediator.catalog_version == version + 1
        with pytest.raises(InfeasiblePlanError):
            mediator.ask(query)
        rows = mediator.ask(
            "SELECT model FROM cars WHERE color = 'red'").rows
        assert rows

    def test_mutation_recompiles_eagerly(self):
        mediator = Mediator()
        mediator.add_source(make_example41_source("cars"))
        narrow = (
            DescriptionBuilder("narrowed")
            .rule("only_make", "make = $str",
                  attributes=["make", "model"])
            .build()
        )
        source = mediator.mutate_source("cars", narrow)
        assert source.description is narrow
        assert source.compiled  # the *new* grammar is compiled


class TestOracle:
    def test_ok_and_infeasible(self):
        mediator = Mediator()
        mediator.add_source(make_example41_source("cars"))
        from repro.query import parse_query

        assert oracle_ask(mediator, parse_query(BMW.format("cars"))).kind \
            == "ok"
        infeasible = parse_query(
            "SELECT model FROM cars WHERE year = 1998")
        assert oracle_ask(mediator, infeasible).kind == "infeasible"

    def test_detects_backdated_plan(self):
        """The oracle itself must catch a plan stamped older than the
        ask's admission version (the bug it exists to find)."""
        from repro.query import parse_query

        query = parse_query(BMW.format("cars"))
        stub = SimpleNamespace(
            catalog_version=7,
            ask=lambda q: SimpleNamespace(
                planning=SimpleNamespace(catalog_version=6)),
        )
        outcome = oracle_ask(stub, query)
        assert outcome.kind == "stale"
        assert outcome.admitted_version == 7
        assert outcome.served_version == 6

    def test_detects_unstamped_plan(self):
        from repro.query import parse_query

        stub = SimpleNamespace(
            catalog_version=3,
            ask=lambda q: SimpleNamespace(
                planning=SimpleNamespace(catalog_version=None)),
        )
        assert oracle_ask(stub, parse_query(BMW.format("cars"))).kind \
            == "stale"


class TestDriftingCatalog:
    def test_seeded_drift_schedule_replays(self):
        logs = []
        for _ in range(2):
            mediator = Mediator(plan_cache_entries=32)
            catalog = DriftingCatalog(mediator, seed=23, n_rows=40)
            for _ in range(12):
                catalog.drift()
            logs.append([(kind, name) for kind, name, _ in catalog.events])
        assert logs[0] == logs[1]

    def test_removed_source_queries_dropped(self):
        mediator = Mediator()
        catalog = DriftingCatalog(mediator, seed=5, n_rows=40)
        name = catalog.remove_source()
        assert catalog.queries_for(name) == []
        assert name not in catalog.live_names()

    def test_run_seed_threads_fault_injectors(self):
        """Satellite: FaultInjector seeds derive from the run seed, so
        the same run seed gives bit-identical fault schedules."""
        draws = []
        for _ in range(2):
            mediator = Mediator()
            catalog = DriftingCatalog(mediator, seed=77, n_rows=30,
                                      fault_rate=0.5)
            name = catalog.live_names()[0]
            injector = mediator.source(name).fault_injector
            draws.append([
                type(injector.draw(name)).__name__ for _ in range(20)
            ])
        assert draws[0] == draws[1]


class TestDynamicFederationWorkload:
    def test_run_is_deterministic_and_stale_free(self):
        knobs = dict(seed=31, rounds=150, n_rows=60)
        first = DynamicFederationWorkload(**knobs).run()
        second = DynamicFederationWorkload(**knobs).run()
        assert first.summary == second.summary
        assert first.summary["stale_serves"] == 0
        assert first.summary["drift_events"] > 0
        assert first.summary["asks"] == 150

    def test_sixteen_thread_battery(self):
        """The tentpole oracle: 16 threads of concurrent asks and
        drift, zero stale serves (asserted inside the battery)."""
        out = DynamicFederationWorkload(seed=13, n_rows=50).battery(
            threads=16, drifts_per_driver=8)
        assert out["threads"] == 16
        assert out["stale_serves"] == 0
        assert out["asks"] > 0
        assert out["drift_events"] == 16


class TestVersionRaceBattery:
    """Hypothesis battery: under arbitrary seeded interleavings of
    add/drift/ask across threads, a served plan's catalog version
    always matches or postdates the ask's admission version."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_interleaved_drift_never_serves_stale(self, seed):
        mediator = Mediator(plan_cache_entries=32)
        catalog = DriftingCatalog(mediator, seed=seed, initial_sources=2,
                                  n_rows=30, max_sources=4)
        violations = []  # filled by workers, asserted on the main thread
        stop = threading.Event()

        def asker(slot: int) -> None:
            rng = random.Random(seed * 7 + slot)
            while not stop.is_set():
                query = catalog.pick_query(rng)
                if query is None:  # pragma: no cover - never empties
                    continue
                outcome = oracle_ask(mediator, query)
                if outcome.kind == "stale":
                    violations.append(outcome)
                elif outcome.kind == "ok" and (
                    outcome.served_version < outcome.admitted_version
                ):  # pragma: no cover - the oracle already flags this
                    violations.append(outcome)

        def drifter() -> None:
            try:
                for _ in range(4):
                    catalog.drift()
            finally:
                stop.set()

        threads = [threading.Thread(target=asker, args=(i,), daemon=True)
                   for i in range(2)]
        threads.append(threading.Thread(target=drifter, daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive()
        assert not violations, (
            f"stale serves under interleaving: {violations[:3]}"
        )
