"""Property battery: compiled Check is *equivalent* to the Earley Check.

The compiled token-trie recognizer is an exact bounded-language
compilation of the grammar, so over any condition that fits the horizon
it must return byte-for-byte the same :class:`CheckResult` -- the same
family of exportable attribute sets *and* the same matched condition
nonterminals, in the same order -- as the Earley reference.  The battery
drives both recognizers over randomly generated grammars (synthetic
worlds of varying richness) and randomly generated condition trees, and
separately forces the beyond-horizon fallback path to prove the
*fallback* answer is also the reference answer.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ssdl.description import SourceDescription
from repro.workloads.synthetic import (
    WorldConfig,
    make_description,
    random_condition,
)

_CONFIGS = [
    WorldConfig(n_attributes=4, n_rows=10, richness=0.4, download_prob=0.0,
                seed=401),
    WorldConfig(n_attributes=6, n_rows=10, richness=0.8, download_prob=0.5,
                seed=402),
    WorldConfig(n_attributes=8, n_rows=10, richness=1.0, download_prob=1.0,
                seed=403),
]


def _pair(config: WorldConfig, **compile_kwargs):
    """(compiled, reference) descriptions of one random grammar."""
    reference = make_description(config)
    compiled = SourceDescription(
        reference.condition_nonterminals,
        reference.productions,
        reference.attributes,
        name=f"{reference.name}-compiled",
    )
    report = compiled.compile(**compile_kwargs)
    assert report.compiled
    return compiled, reference


_PAIRS = [_pair(config) for config in _CONFIGS]
#: Horizon 4: one atom fits (3 tokens), any connector tree does not --
#: every multi-atom condition exercises the fallback path.
_TINY = [_pair(config, max_tokens=4) for config in _CONFIGS]


@given(
    st.integers(0, len(_CONFIGS) - 1),
    st.integers(0, 10**6),
    st.integers(1, 5),
    st.floats(0.0, 1.0),
)
@settings(max_examples=120, deadline=None)
def test_compiled_check_equals_earley_check(world_index, seed, n_atoms,
                                            or_prob):
    config = _CONFIGS[world_index]
    compiled, reference = _PAIRS[world_index]
    condition = random_condition(
        config, n_atoms, random.Random(seed), or_prob=or_prob
    )
    got = compiled.check(condition)
    want = reference.check(condition)
    assert got.attribute_sets == want.attribute_sets
    assert got.matched == want.matched


@given(
    st.integers(0, len(_CONFIGS) - 1),
    st.integers(0, 10**6),
    st.integers(2, 5),
)
@settings(max_examples=60, deadline=None)
def test_fallback_path_equals_earley_check(world_index, seed, n_atoms):
    config = _CONFIGS[world_index]
    compiled, reference = _TINY[world_index]
    before = compiled.check_fallbacks
    condition = random_condition(config, n_atoms, random.Random(seed))
    got = compiled.check(condition)
    want = reference.check(condition)
    assert got.attribute_sets == want.attribute_sets
    assert got.matched == want.matched
    # Multi-atom trees exceed the 4-token horizon, so (cache misses
    # aside) the compiled description must have taken the fallback.
    if compiled.check_calls > 0:
        assert compiled.check_fallbacks >= before
