"""Unit tests for the web-form -> SSDL compiler."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import SSDLError
from repro.ssdl.forms import (
    CheckboxField,
    KeywordField,
    NumberField,
    SelectField,
    TextField,
    WebForm,
)


def car_form(**kwargs) -> WebForm:
    return WebForm(
        "car_form",
        fields=[
            SelectField("style", options=("sedan", "coupe")),
            TextField("make"),
            NumberField("price", op="<="),
            CheckboxField("size"),
        ],
        exports=["id", "make", "model", "price"],
        **kwargs,
    )


class TestFieldKinds:
    def test_text_field_equality(self):
        desc = WebForm("f", [TextField("make")], ["make"]).compile()
        assert desc.check(parse_condition("make = 'BMW'"))
        assert not desc.check(parse_condition("make != 'BMW'"))
        assert not desc.check(parse_condition("make = 5"))

    def test_keyword_field_contains(self):
        desc = WebForm("f", [KeywordField("title")], ["title"]).compile()
        assert desc.check(parse_condition("title contains 'dreams'"))
        assert not desc.check(parse_condition("title = 'dreams'"))

    def test_number_field_operator(self):
        desc = WebForm("f", [NumberField("price", op="<=")], ["price"]).compile()
        assert desc.check(parse_condition("price <= 100"))
        assert not desc.check(parse_condition("price >= 100"))
        assert not desc.check(parse_condition("price <= 'x'"))

    def test_number_field_rejects_unknown_op(self):
        with pytest.raises(SSDLError):
            NumberField("price", op="~")

    def test_select_field_options_only(self):
        desc = WebForm(
            "f", [SelectField("style", options=("sedan",))], ["style"]
        ).compile()
        assert desc.check(parse_condition("style = 'sedan'"))
        assert not desc.check(parse_condition("style = 'wagon'"))

    def test_select_needs_options(self):
        with pytest.raises(SSDLError):
            SelectField("style", options=())

    def test_checkbox_single_and_list(self):
        desc = WebForm("f", [CheckboxField("size")], ["size"]).compile()
        assert desc.check(parse_condition("size = 'compact'"))
        assert desc.check(
            parse_condition("size = 'compact' or size = 'midsize'")
        )
        assert desc.check(
            parse_condition("size = 'a' or size = 'b' or size = 'c'")
        )


class TestFormStructure:
    def test_all_field_combinations(self):
        desc = car_form().compile()
        assert desc.check(parse_condition("make = 'BMW'"))
        assert desc.check(
            parse_condition("style = 'sedan' and price <= 20000")
        )
        assert desc.check(
            parse_condition(
                "style = 'sedan' and make = 'Toyota' and price <= 20000 "
                "and (size = 'compact' or size = 'midsize')"
            )
        )

    def test_field_order_is_fixed(self):
        desc = car_form().compile()
        assert not desc.check(parse_condition("make = 'BMW' and style = 'sedan'"))

    def test_max_filled(self):
        desc = car_form(max_filled=2).compile()
        assert desc.check(parse_condition("style = 'sedan' and make = 'BMW'"))
        assert not desc.check(
            parse_condition("style = 'sedan' and make = 'BMW' and price <= 1")
        )

    def test_required_field(self):
        form = WebForm(
            "f",
            fields=[TextField("make", required=True), NumberField("price", op="<=")],
            exports=["id"],
        )
        desc = form.compile()
        assert desc.check(parse_condition("make = 'BMW'"))
        assert desc.check(parse_condition("make = 'BMW' and price <= 1"))
        assert not desc.check(parse_condition("price <= 1"))

    def test_allow_empty_is_download(self):
        desc = WebForm(
            "f", [TextField("make")], ["id", "make"], allow_empty=True
        ).compile()
        assert desc.check(TRUE)

    def test_exports(self):
        desc = car_form().compile()
        result = desc.check(parse_condition("make = 'BMW'"))
        assert result.supports({"id", "model", "price"})
        assert not result.supports({"mileage"})


class TestValidation:
    def test_no_fields(self):
        with pytest.raises(SSDLError):
            WebForm("f", [], ["id"]).compile()

    def test_duplicate_attributes(self):
        with pytest.raises(SSDLError):
            WebForm("f", [TextField("a"), TextField("a")], ["a"]).compile()

    def test_too_many_fields(self):
        fields = [TextField(f"a{i}") for i in range(9)]
        with pytest.raises(SSDLError):
            WebForm("f", fields, ["a0"]).compile()

    def test_required_beyond_limit(self):
        form = WebForm(
            "f",
            [TextField("a", required=True), TextField("b", required=True)],
            ["a"],
            max_filled=1,
        )
        with pytest.raises(SSDLError):
            form.compile()


class TestEndToEnd:
    def test_planning_against_a_compiled_form(self):
        from repro.data.generate import generate_cars
        from repro.source.source import CapabilitySource
        from repro.wrapper import Wrapper

        form = WebForm(
            "car_form",
            fields=[
                SelectField("style", options=("sedan", "coupe", "wagon",
                                              "convertible", "suv")),
                TextField("make"),
                NumberField("price", op="<="),
                CheckboxField("size"),
            ],
            exports=["id", "make", "model", "style", "size", "price"],
        )
        source = CapabilitySource("cars", generate_cars(800), form.compile())
        wrapper = Wrapper(source)
        # Example 1.2's query planned against the compiled form.
        answer = wrapper.query(
            "style = 'sedan' and (size = 'compact' or size = 'midsize') and "
            "((make = 'Toyota' and price <= 20000) or "
            "(make = 'BMW' and price <= 40000))",
            ["id", "make", "model"],
        )
        # At this scale the per-query overhead k1 dominates, so GenCompact
        # may legitimately prefer one broader query over the paper's
        # two-query shape; either way the answer must be exact.
        assert answer.queries_sent in (1, 2)
        expected = source.relation.sp(
            answer.planning.query.condition, {"id", "make", "model"}
        ).as_row_set()
        assert answer.result.as_row_set() == expected
