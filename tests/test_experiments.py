"""Shape tests for the reconstructed evaluation suite (quick instances).

These assert the *qualitative* claims each experiment exists to
reproduce -- who wins, what is preserved -- not absolute numbers.
"""

import math

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.e1_plan_quality import run as run_e1
from repro.experiments.e2_data_transfer import run as run_e2
from repro.experiments.e5_pruning import run as run_e5
from repro.experiments.e6_capability_richness import run as run_e6
from repro.experiments.e7_feasibility import run as run_e7
from repro.experiments.e8_mcsc import run as run_e8
from repro.experiments.e9_commutativity import run as run_e9
from repro.experiments.report import Table


class TestRegistry:
    def test_all_ten_registered(self):
        assert sorted(EXPERIMENTS, key=lambda n: int(n[1:])) == [
            f"e{i}" for i in range(1, 11)
        ]


class TestTable:
    def test_add_checks_arity(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_format_and_column(self):
        table = Table("t", ["a", "b"], notes="note")
        table.add(1, 2.5)
        text = table.format()
        assert "t" in text and "2.50" in text and "note" in text
        assert table.column("a") == [1]


@pytest.fixture(scope="module")
def e1():
    return run_e1(quick=True)


class TestE1PlanQuality:
    def test_gencompact_always_feasible_and_cheapest(self, e1):
        by_scenario: dict = {}
        for row in e1.rows:
            by_scenario.setdefault(row[0], {})[row[1]] = row[3]
        for scenario, costs in by_scenario.items():
            gc = costs["GenCompact"]
            assert math.isfinite(gc), scenario
            for planner, cost in costs.items():
                assert gc <= cost + 1e-9, (scenario, planner)

    def test_disco_naive_infeasible_on_examples(self, e1):
        for row in e1.rows:
            scenario, planner, feasible = row[0], row[1], row[2]
            if "Example" in scenario or "bookstore" in scenario or "car" in scenario:
                if planner in ("DISCO", "Naive"):
                    assert feasible == "no", (scenario, planner)


class TestE2DataTransfer:
    def test_all_feasible_plans_correct(self):
        table = run_e2(quick=True)
        for row in table.rows:
            assert row[6] in ("yes", "n/a"), row

    def test_gencompact_moves_least_data(self):
        table = run_e2(quick=True)
        by_scenario: dict = {}
        for row in table.rows:
            if row[6] == "yes":
                by_scenario.setdefault(row[0], {})[row[1]] = row[4]
        for scenario, costs in by_scenario.items():
            gc = costs["GenCompact"]
            for planner, cost in costs.items():
                assert gc <= cost + 1e-9, (scenario, planner)


class TestE5Pruning:
    def test_optimum_preserved_in_every_configuration(self):
        table = run_e5(quick=True)
        assert all(row[5] == "yes" for row in table.rows)

    def test_pr3_reduces_mcsc_candidates(self):
        table = run_e5(quick=True)
        by_config = {row[0]: row for row in table.rows}
        assert by_config["no PR3"][3] > by_config["all pruning"][3]


class TestE6Richness:
    def test_gc_feasibility_dominates(self):
        table = run_e6(quick=True)
        for row in table.rows:
            assert row[1] >= row[2] - 1e-9  # GC >= CNF
            assert row[1] >= row[3] - 1e-9  # GC >= DNF

    def test_cost_ratios_at_least_one(self):
        table = run_e6(quick=True)
        for row in table.rows:
            for ratio in (row[4], row[5]):
                if ratio != "n/a":
                    assert ratio >= 1.0 - 1e-6


class TestE7Feasibility:
    def test_paper_ordering(self):
        table = run_e7(quick=True)
        rates = dict(zip(table.column("planner"), table.column("rate")))
        assert rates["GenCompact"] >= rates["CNF (Garlic)"]
        assert rates["GenCompact"] >= rates["DNF"]
        assert rates["CNF (Garlic)"] >= rates["DISCO"]
        assert rates["DISCO"] >= rates["Naive"]
        assert rates["GenCompact"] == rates["GenModular"]


class TestE8MCSC:
    def test_solvers_agree(self):
        table = run_e8(quick=True)
        assert all(row[6] == "yes" for row in table.rows)

    def test_greedy_ratio_at_least_one(self):
        table = run_e8(quick=True)
        assert all(row[5] >= 1.0 - 1e-9 for row in table.rows)


class TestE9Commutativity:
    def test_closed_description_processes_fewer_cts(self):
        table = run_e9(quick=True)
        by_config = {row[0]: row for row in table.rows}
        rule_cts = by_config["GenModular + commutative rule"][2]
        gc_cts = by_config["GenCompact (closed description)"][2]
        assert gc_cts < rule_cts

    def test_gencompact_plans_everything(self):
        table = run_e9(quick=True)
        by_config = {row[0]: row for row in table.rows}
        feasible = by_config["GenCompact (closed description)"][1]
        count, total = feasible.split("/")
        assert count == total
