"""Coverage for the smaller shared pieces: stats merging, counters,
describe strings, convenience APIs."""

import pytest

from repro.conditions.parser import parse_condition
from repro.mediator import Mediator
from repro.multisource import MirrorGroup
from repro.planners.base import CheckCounter, PlannerStats, PlanningResult
from repro.query import TargetQuery, parse_query
from tests.conftest import make_example41_source


class TestPlannerStats:
    def test_merge_adds_counters(self):
        a = PlannerStats(cts_processed=2, check_calls=10, elapsed_sec=0.5)
        b = PlannerStats(cts_processed=3, check_calls=5, elapsed_sec=0.25,
                         rewrite_truncated=True)
        a.merge(b)
        assert a.cts_processed == 5
        assert a.check_calls == 15
        assert a.elapsed_sec == pytest.approx(0.75)
        assert a.rewrite_truncated

    def test_merge_preserves_truncation_flag(self):
        a = PlannerStats(rewrite_truncated=True)
        a.merge(PlannerStats())
        assert a.rewrite_truncated


class TestCheckCounter:
    def test_counts_requests_not_parses(self, example41):
        counter = CheckCounter(example41.description)
        condition = parse_condition("make = 'BMW' and price < 40000")
        counter.check(condition)
        counter.check(condition)  # cached parse, still a request
        assert counter.calls == 2
        assert example41.description.check_calls == 1

    def test_supports_delegates(self, example41):
        counter = CheckCounter(example41.description)
        assert counter.supports(
            parse_condition("make = 'BMW' and price < 40000"), {"model"}
        )
        assert counter.calls == 1


class TestPlanningResultDescribe:
    def test_infeasible_describe(self):
        query = TargetQuery(
            parse_condition("a = 1"), frozenset({"a"}), "src"
        )
        result = PlanningResult("X", query, None, float("inf"))
        text = result.describe()
        assert "INFEASIBLE" in text and "∅" in text


class TestMediatorExplain:
    def test_explain_renders_plan(self):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        text = mediator.explain(
            "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
        )
        assert "GenCompact" in text
        assert "SourceQuery" in text

    def test_explain_infeasible(self):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        text = mediator.explain("SELECT model FROM cars WHERE year = 1999")
        assert "INFEASIBLE" in text


class TestMirrorAsk:
    def test_executes_winner(self):
        from tests.test_multisource import poor_source, rich_source, q

        group = MirrorGroup([rich_source(), poor_source()])
        report = group.ask(q("make = 'BMW' and price <= 60000"))
        assert report.result.as_row_set() == {(0,), (1,)}
        assert report.queries == 1

    def test_infeasible_raises(self):
        from repro.errors import InfeasiblePlanError
        from tests.test_multisource import rich_source, q

        group = MirrorGroup([rich_source("r1"), rich_source("r2")])
        with pytest.raises(InfeasiblePlanError):
            group.ask(q("price <= 100"))


class TestTargetQueryText:
    def test_str_includes_source_and_condition(self):
        query = parse_query("SELECT a, b FROM src WHERE a = 1")
        text = str(query)
        assert "src" in text and "a = 1" in text
        assert parse_query(text) == query

    def test_true_condition_text(self):
        query = parse_query("SELECT a FROM src")
        assert "true" in query.to_text().lower()


class TestRelationSample:
    def test_sample_bounds(self):
        import random

        source = make_example41_source()
        rng = random.Random(3)
        sample = source.relation.sample(3, rng)
        assert len(sample) == 3
        full = source.relation.sample(1000, rng)
        assert len(full) == len(source.relation)
