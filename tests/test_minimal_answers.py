"""Minimal-answer mode: atom/condition implication, Union-branch
pruning, and the pruned == unpruned property battery."""

from __future__ import annotations

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import TRUE, And, Leaf, Or
from repro.mediator import Mediator
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.plans.minimal import (
    atom_implies,
    branch_profile,
    branch_subsumes,
    condition_implies,
    prune_subsumed,
)
from repro.plans.nodes import Postprocess, SourceQuery, UnionPlan
from repro.workloads.minimal_answers import (
    MinimalAnswerWorkload,
    overlap_queries,
    overlap_source,
)


def atom(attr, op, value):
    return Atom(attr, op, value)


class TestAtomImplies:
    def test_equality_cases(self):
        assert atom_implies(atom("a", Op.EQ, 5), atom("a", Op.LE, 5))
        assert atom_implies(atom("a", Op.EQ, 5), atom("a", Op.LT, 6))
        assert atom_implies(atom("a", Op.EQ, 5), atom("a", Op.NE, 6))
        assert atom_implies(atom("a", Op.EQ, 5), atom("a", Op.IN, (4, 5)))
        assert not atom_implies(atom("a", Op.EQ, 5), atom("a", Op.IN, (4,)))
        assert not atom_implies(atom("a", Op.EQ, 5), atom("a", Op.NE, 5))
        assert atom_implies(atom("a", Op.EQ, "Dreams of X"),
                            atom("a", Op.CONTAINS, "dreams"))

    def test_range_cases(self):
        assert atom_implies(atom("p", Op.LT, 10), atom("p", Op.LT, 20))
        assert atom_implies(atom("p", Op.LT, 10), atom("p", Op.LE, 10))
        assert atom_implies(atom("p", Op.LE, 10), atom("p", Op.LT, 11))
        assert not atom_implies(atom("p", Op.LE, 10), atom("p", Op.LT, 10))
        assert atom_implies(atom("p", Op.GT, 10), atom("p", Op.GE, 10))
        assert atom_implies(atom("p", Op.GE, 11), atom("p", Op.GT, 10))
        assert not atom_implies(atom("p", Op.GE, 10), atom("p", Op.GT, 10))
        assert atom_implies(atom("p", Op.LT, 10), atom("p", Op.NE, 10))
        assert atom_implies(atom("p", Op.GT, 10), atom("p", Op.NE, 10))
        assert not atom_implies(atom("p", Op.LT, 10), atom("p", Op.NE, 9))

    def test_in_decomposes(self):
        assert atom_implies(atom("a", Op.IN, (1, 2)), atom("a", Op.LE, 5))
        assert not atom_implies(atom("a", Op.IN, (1, 9)), atom("a", Op.LE, 5))

    def test_contains_substring(self):
        assert atom_implies(atom("t", Op.CONTAINS, "dreams of"),
                            atom("t", Op.CONTAINS, "dreams"))
        assert not atom_implies(atom("t", Op.CONTAINS, "dreams"),
                                atom("t", Op.CONTAINS, "dreams of"))

    def test_soundness_guards(self):
        assert not atom_implies(atom("a", Op.EQ, 5), atom("b", Op.EQ, 5))
        # Cross-type comparisons must not prove anything (nor raise).
        assert not atom_implies(atom("a", Op.LT, "zz"), atom("a", Op.LT, 5))
        assert not atom_implies(atom("a", Op.NE, 5), atom("a", Op.LT, 9))


class TestConditionImplies:
    A5 = Leaf(atom("a", Op.EQ, 5))
    P10 = Leaf(atom("p", Op.LT, 10))
    P20 = Leaf(atom("p", Op.LT, 20))

    def test_connector_tableau(self):
        assert condition_implies(self.P10, TRUE)
        assert not condition_implies(TRUE, self.P10)
        assert condition_implies(And([self.A5, self.P10]), self.P20)
        assert condition_implies(self.P10, Or([self.A5, self.P20]))
        assert condition_implies(Or([self.P10, self.P20]), self.P20)
        assert not condition_implies(Or([self.P10, self.A5]), self.P20)
        assert condition_implies(self.P10, And([self.P20,
                                                Leaf(atom("p", Op.NE, 15))]))

    def test_size_guard_stays_sound(self):
        wide = Or([Leaf(atom("a", Op.EQ, i)) for i in range(300)])
        assert not condition_implies(wide, TRUE)  # refused, not wrong


def tower(source, condition, attrs=("k",)):
    return SourceQuery(condition, frozenset(attrs), source)


class TestPruning:
    CAT = Leaf(atom("cat", Op.EQ, "books"))
    NARROW = And([Leaf(atom("cat", Op.EQ, "books")),
                  Leaf(atom("p", Op.LT, 10))])

    def test_branch_profile_conjoins_postprocess_chain(self):
        plan = Postprocess(self.CAT, frozenset(["k"]),
                           tower("s", self.NARROW, ("k", "cat", "p")))
        profile = branch_profile(plan)
        assert profile is not None
        source, condition = profile
        assert source == "s"
        assert condition_implies(condition, self.CAT)

    def test_branch_profile_rejects_nested_union(self):
        nested = UnionPlan([tower("s", self.CAT), tower("s", self.NARROW)])
        assert branch_profile(nested) is None

    def test_subsumed_branch_is_pruned(self):
        plan = UnionPlan([tower("s", self.CAT), tower("s", self.NARROW)])
        pruned, dropped = prune_subsumed(plan)
        assert dropped == 1
        assert pruned == tower("s", self.CAT)  # collapsed to the keeper

    def test_equivalent_branches_keep_the_first(self):
        plan = UnionPlan([tower("s", self.CAT), tower("s", self.CAT,
                                                      ("k",))])
        pruned, dropped = prune_subsumed(plan)
        assert dropped == 1
        assert pruned == tower("s", self.CAT)

    def test_cross_source_branches_are_kept(self):
        plan = UnionPlan([tower("s1", self.CAT), tower("s2", self.NARROW)])
        pruned, dropped = prune_subsumed(plan)
        assert dropped == 0
        assert pruned is plan

    def test_disjoint_branches_are_kept(self):
        other = Leaf(atom("tag", Op.EQ, "new"))
        plan = UnionPlan([tower("s", self.CAT), tower("s", other)])
        assert prune_subsumed(plan) == (plan, 0)

    def test_subsumes_requires_same_source(self):
        assert not branch_subsumes(tower("s1", self.CAT),
                                   tower("s2", self.NARROW))
        assert branch_subsumes(tower("s", self.CAT),
                               tower("s", self.NARROW))


class TestMediatorIntegration:
    def test_minimal_mode_prunes_and_preserves_answers(self):
        baseline = Mediator()
        baseline.add_source(overlap_source(seed=3, n_rows=60))
        minimal = Mediator(minimal_answers=True)
        minimal.add_source(overlap_source(seed=3, n_rows=60))
        query = overlap_queries(seed=4, count=1)[0]
        registry = MetricsRegistry()
        with use_metrics(registry):
            base = baseline.ask(query)
            less = minimal.ask(query)

        def keyset(rows):
            return {tuple(sorted(r.items())) for r in rows}

        assert keyset(base.rows) == keyset(less.rows)
        assert less.report.queries <= base.report.queries

    def test_battery(self):
        out = MinimalAnswerWorkload(seed=37, n_queries=40, n_rows=100
                                    ).battery()
        assert out["mismatched_answers"] == 0
        assert out["branches_pruned"] >= 1
        assert out["source_queries_saved"] >= out["branches_pruned"]

    def test_run_is_deterministic(self):
        knobs = dict(seed=41, n_queries=30, n_rows=80)
        assert MinimalAnswerWorkload(**knobs).run().summary \
            == MinimalAnswerWorkload(**knobs).run().summary
