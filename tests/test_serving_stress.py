"""Serving-layer concurrency regressions: exact accounting, no deadlocks.

Three guarantees under 16-thread contention:

* **reconciliation** -- every ``ask()`` outcome is accounted exactly
  once: plan-cache ``hits + misses`` equals the asks that reached the
  planner, admission ``admitted + shed`` equals the asks that reached
  the gate, and the registry counters agree with the local stats;
* **invalidation under mutation** -- concurrent ``add_source`` calls
  bump the catalog version and cached plans from the old catalog are
  never served (invalidations observed, answers stay correct);
* **deadline over deadlock** -- at ``max_in_flight=1`` with nested
  parallel-executor fan-out, contended asks end in ``OverloadError``
  within the queue timeout; nothing ever hangs (every test joins its
  threads under a hard deadline).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import OverloadError
from repro.mediator import Mediator
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.serving import AdmissionController
from repro.source.faults import SimulatedLatency
from repro.source.library import bookstore, car_guide

N_THREADS = 16
JOIN_DEADLINE = 30.0


def _run_threads(worker, count: int = N_THREADS) -> None:
    """Start ``count`` threads on ``worker(slot)`` and join them under a
    hard deadline -- a hang fails the test instead of freezing it."""
    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(count)
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + JOIN_DEADLINE
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
    assert not any(thread.is_alive() for thread in threads), \
        "worker threads did not finish before the deadline (deadlock?)"


QUERIES = [
    "SELECT id, title FROM bookstore WHERE author = 'Carl Jung'",
    "SELECT id, title FROM bookstore WHERE author = 'Sigmund Freud' "
    "and title contains 'dreams'",
    "SELECT id, model FROM car_guide WHERE make = 'BMW'",
    "SELECT id, model FROM car_guide WHERE style = 'sedan' "
    "and (size = 'compact' or size = 'midsize')",
]


def _mediator(**kwargs) -> Mediator:
    mediator = Mediator(**kwargs)
    mediator.add_source(bookstore(n=300, seed=1999))
    mediator.add_source(car_guide(n=300, seed=1999))
    return mediator


class TestCacheReconciliation:
    def test_16_threads_hits_plus_misses_equals_asks(self):
        with use_metrics(MetricsRegistry()) as registry:
            mediator = _mediator(plan_cache_entries=64)
            per_thread = 8
            failures: list[BaseException] = []

            def worker(slot: int) -> None:
                try:
                    for index in range(per_thread):
                        query = QUERIES[(slot + index) % len(QUERIES)]
                        mediator.ask(query)
                except BaseException as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)

            _run_threads(worker)
            assert not failures
            stats = mediator.plan_cache.stats
            total = N_THREADS * per_thread
            assert stats.hits + stats.misses == total
            # Racing threads may plan the same key concurrently (both
            # miss, both put), but never more often than once per
            # thread per key; the cache still converges to one entry
            # per canonical key.
            assert len(QUERIES) <= stats.misses <= len(QUERIES) * N_THREADS
            assert stats.hits >= total - len(QUERIES) * N_THREADS
            assert stats.invalidations == 0
            snapshot = registry.snapshot()
            assert snapshot["serving.plan_cache.hits"]["value"] == stats.hits
            assert snapshot["serving.plan_cache.misses"]["value"] == \
                stats.misses

    def test_invalidation_under_concurrent_add_source(self):
        with use_metrics(MetricsRegistry()):
            mediator = _mediator(plan_cache_entries=64)
            stop = threading.Event()
            failures: list[BaseException] = []
            answers: list[frozenset] = []

            def asker(slot: int) -> None:
                try:
                    while not stop.is_set():
                        answer = mediator.ask(QUERIES[slot % len(QUERIES)])
                        if slot % len(QUERIES) == 0:
                            answers.append(answer.result.as_row_set())
                except BaseException as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)

            threads = [
                threading.Thread(target=asker, args=(slot,), daemon=True)
                for slot in range(8)
            ]
            for thread in threads:
                thread.start()
            version_before = mediator.catalog_version
            for index in range(5):
                extra = bookstore(n=50, seed=index)
                extra.name = f"mirror{index}"
                mediator.add_source(extra)
                time.sleep(0.02)
            stop.set()
            deadline = time.monotonic() + JOIN_DEADLINE
            for thread in threads:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
            assert not any(thread.is_alive() for thread in threads)
            assert not failures
            assert mediator.catalog_version == version_before + 5
            # Every post-mutation lookup dropped its stale entry ...
            assert mediator.plan_cache.stats.invalidations >= 1
            # ... and the answers never changed (the catalog only grew).
            assert len(set(answers)) == 1

    def test_stale_plan_is_never_served_across_a_bump(self):
        with use_metrics(MetricsRegistry()):
            mediator = _mediator(plan_cache_entries=16)
            cold = mediator.ask(QUERIES[0])
            mediator.bump_catalog()
            warm = mediator.ask(QUERIES[0])
            assert warm.planning is not cold.planning
            assert mediator.plan_cache.stats.invalidations == 1


class TestAdmissionReconciliation:
    def test_generous_gate_admits_everything(self):
        with use_metrics(MetricsRegistry()) as registry:
            mediator = _mediator(plan_cache_entries=64, max_in_flight=4,
                                 admission_timeout=10.0)
            failures: list[BaseException] = []

            def worker(slot: int) -> None:
                try:
                    for index in range(4):
                        mediator.ask(QUERIES[(slot + index) % len(QUERIES)])
                except BaseException as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)

            _run_threads(worker)
            assert not failures
            admission = mediator.admission
            assert admission.admitted == N_THREADS * 4
            assert admission.shed == 0
            assert admission.in_flight == 0
            snapshot = registry.snapshot()
            assert snapshot["serving.admission.admitted"]["value"] == \
                admission.admitted
            gauge = snapshot["serving.admission.in_flight"]
            assert gauge["value"] == 0
            assert 1 <= gauge["max"] <= 4

    def test_overload_sheds_with_exact_accounting(self):
        with use_metrics(MetricsRegistry()) as registry:
            mediator = _mediator(max_in_flight=1, admission_timeout=0.02)
            slow = mediator.source("bookstore")
            slow.latency = SimulatedLatency(seed=7, base=0.08, jitter=0.0)
            outcomes: list[str] = []
            lock = threading.Lock()

            def worker(slot: int) -> None:
                try:
                    mediator.ask(QUERIES[0])
                    result = "ok"
                except OverloadError as exc:
                    assert exc.waited >= 0.0
                    result = "shed"
                with lock:
                    outcomes.append(result)

            _run_threads(worker, count=8)
            assert len(outcomes) == 8
            shed = outcomes.count("shed")
            admission = mediator.admission
            assert shed >= 1, "an 80ms source behind a 20ms queue must shed"
            assert outcomes.count("ok") >= 1
            assert admission.admitted + admission.shed == 8
            assert admission.shed == shed
            assert admission.in_flight == 0
            snapshot = registry.snapshot()
            assert snapshot["serving.admission.shed"]["value"] == shed
            waits = snapshot["serving.admission.queue_wait_seconds"]
            assert waits["count"] == 8

    def test_max_in_flight_one_with_nested_fanout_sheds_not_deadlocks(self):
        """The deadline guard: a parallel executor fanning a Union out
        *inside* one admitted request must not consume admission slots,
        so max_in_flight=1 stays live -- contenders shed within the
        queue timeout instead of deadlocking on the gate."""
        with use_metrics(MetricsRegistry()):
            mediator = _mediator(
                plan_cache_entries=16, max_in_flight=1,
                admission_timeout=0.2, parallel_workers=4,
            )
            slow = mediator.source("bookstore")
            slow.latency = SimulatedLatency(seed=11, base=0.03, jitter=0.0)
            # A two-branch Union plan (one source query per author).
            fanout_query = QUERIES[1].replace(
                "author = 'Sigmund Freud' and title contains 'dreams'",
                "author = 'Sigmund Freud' or author = 'Carl Jung'",
            )
            outcomes: list[str] = []
            lock = threading.Lock()

            def worker(slot: int) -> None:
                try:
                    answer = mediator.ask(fanout_query)
                    assert len(answer.rows) > 0
                    result = "ok"
                except OverloadError:
                    result = "shed"
                with lock:
                    outcomes.append(result)

            started = time.monotonic()
            _run_threads(worker, count=6)
            elapsed = time.monotonic() - started
            assert len(outcomes) == 6
            assert outcomes.count("ok") >= 1
            assert mediator.admission.admitted + mediator.admission.shed == 6
            # Liveness: six 60ms requests through a width-1 gate with a
            # 200ms shed deadline must finish far inside the join
            # deadline -- this bound is what "no deadlock" means.
            assert elapsed < JOIN_DEADLINE / 2


class TestAdmissionController:
    def test_reentrant_admission_never_self_deadlocks(self):
        with use_metrics(MetricsRegistry()):
            gate = AdmissionController(1, queue_timeout=0.05)
            with gate.admit():
                with gate.admit():      # same thread: passes through
                    assert gate.in_flight == 1
            assert gate.in_flight == 0
            assert gate.admitted == 1   # one request, however nested

    def test_timeout_zero_sheds_immediately_when_full(self):
        with use_metrics(MetricsRegistry()):
            gate = AdmissionController(1, queue_timeout=0.0)
            entered = threading.Event()
            release = threading.Event()

            def holder() -> None:
                with gate.admit():
                    entered.set()
                    release.wait(JOIN_DEADLINE)

            thread = threading.Thread(target=holder, daemon=True)
            thread.start()
            assert entered.wait(JOIN_DEADLINE)
            with pytest.raises(OverloadError):
                with gate.admit():
                    pass  # pragma: no cover - never admitted
            release.set()
            thread.join(JOIN_DEADLINE)
            assert not thread.is_alive()
            assert gate.admitted == 1 and gate.shed == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, queue_timeout=-1.0)
