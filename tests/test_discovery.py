"""Tests for black-box capability discovery."""

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import SSDLError
from repro.ssdl.discovery import discover_description
from repro.source.library import bank
from tests.conftest import make_example41_source

SAMPLES = {
    "make": ("BMW", "Toyota"),
    "price": (40000, 20000),
    "color": ("red", "black"),
    "year": (1998, 1999),
}


@pytest.fixture
def source():
    return make_example41_source()


@pytest.fixture
def report(source):
    return discover_description(source, source.schema, SAMPLES)


class TestDiscoveryOnExample41:
    def test_finds_the_two_forms(self, report):
        # Example 4.1 has *no* single-field rule; both discovered shapes
        # are pairs.
        inferred = report.description
        assert inferred.check(parse_condition("make = 'Audi' and price < 1"))
        assert inferred.check(parse_condition("make = 'VW' and color = 'blue'"))

    def test_respects_order_sensitivity(self, report):
        inferred = report.description
        assert not inferred.check(
            parse_condition("color = 'blue' and make = 'VW'")
        )

    def test_never_claims_unsupported_shapes(self, source, report):
        """Soundness modulo class generalization: every inferred-supported
        probe-shaped query is natively supported."""
        probes = [
            "make = 'Honda' and color = 'white'",
            "year = 1999",
            "color = 'red'",
            "make = 'Honda'",
            "price <= 20000",
            "make = 'Honda' and year = 1999",
        ]
        for text in probes:
            condition = parse_condition(text)
            if report.description.check(condition):
                assert source.description.check(condition), text

    def test_exports_discovered(self, report):
        result = report.description.check(
            parse_condition("make = 'X' and color = 'y'")
        )
        assert result
        # s2 cannot export color or price; discovery must have noticed.
        assert not result.supports({"color"})
        assert result.supports({"make", "model", "year"})

    def test_download_not_claimed(self, report):
        from repro.conditions.tree import TRUE

        assert not report.download_allowed
        assert not report.description.check(TRUE)

    def test_probe_accounting(self, report):
        assert report.probes_sent > 0
        assert 0 < report.probes_accepted <= report.probes_sent


class TestLiteralGuard:
    def test_two_value_rule_prevents_overgeneralizing(self):
        """A form accepting only style='sedan' must not be inferred as
        accepting style = $str."""
        from repro.data.relation import Relation
        from repro.data.schema import AttrType, Schema
        from repro.source.source import CapabilitySource
        from repro.ssdl.builder import DescriptionBuilder

        schema = Schema.of(
            "t", [("id", AttrType.INT), ("style", AttrType.STRING),
                  ("make", AttrType.STRING)], key="id"
        )
        desc = (
            DescriptionBuilder("d")
            .rule("sedans_only", "style = 'sedan'", attributes=["id", "style"])
            .rule("any_make", "make = $str", attributes=["id", "make", "style"])
            .build()
        )
        rows = [{"id": 0, "style": "sedan", "make": "a"}]
        source = CapabilitySource("t", Relation(schema, rows), desc)
        report = discover_description(
            source, schema,
            {"style": ("sedan", "coupe"), "make": ("a", "b")},
        )
        # make generalizes (two values accepted); style must not (only
        # 'sedan' was accepted).
        inferred = report.description
        assert inferred.check(parse_condition("make = 'zzz'"))
        assert not inferred.check(parse_condition("style = 'coupe'"))
        assert not inferred.check(parse_condition("style = 'sedan'"))


class TestDiscoveryPlanning:
    def test_planning_with_the_inferred_description(self, source, report):
        """Plans built against the inferred description execute against
        the real (natively enforced) source."""
        from repro.plans.cost import CostModel
        from repro.plans.execute import Executor, reference_answer
        from repro.planners.gencompact import GenCompact
        from repro.query import TargetQuery
        from repro.source.source import CapabilitySource

        # A source object that *plans* with the inferred description but
        # *enforces* the native one.
        twin = CapabilitySource(
            "cars", source.relation, report.description
        )
        query = TargetQuery(
            parse_condition("make = 'BMW' and color = 'red'"),
            frozenset({"model", "year"}),
            "cars",
        )
        result = GenCompact().plan(
            query, twin, CostModel({"cars": twin.stats})
        )
        assert result.feasible
        answer = Executor({"cars": source}).execute(result.plan)
        expected = reference_answer(
            source, query.condition, query.attributes
        ).as_row_set()
        assert answer.as_row_set() == expected


class TestValidation:
    def test_needs_two_distinct_values(self, source):
        with pytest.raises(SSDLError):
            discover_description(
                source, source.schema, {"make": ("BMW", "BMW")}
            )

    def test_unknown_attribute_rejected(self, source):
        with pytest.raises(SSDLError):
            discover_description(source, source.schema, {"ghost": ("a", "b")})

    def test_nothing_found_raises(self):
        source = bank(n=50)
        # Probing only the balance attribute: no form filters on it.
        with pytest.raises(SSDLError):
            discover_description(
                source, source.schema, {"balance": (1.0, 2.0)}
            )

    def test_bad_width(self, source):
        with pytest.raises(SSDLError):
            discover_description(source, source.schema, SAMPLES, max_width=0)
