"""Edge cases across modules: the paths mainline tests don't reach."""

import pytest

from repro.conditions.canonical import canonicalize
from repro.conditions.parser import parse_condition
from repro.conditions.rewrite import (
    RewriteEngine,
    copy_rule,
    distributive_rule,
    factoring_rule,
)
from repro.conditions.tree import TRUE, And, Or, leaf
from repro.errors import (
    ConditionError,
    PlanExecutionError,
    SSDLParseError,
)
from repro.planners.base import CheckCounter
from repro.planners.epg import EPG
from repro.planners.ipg import IPG
from repro.plans.cost import CostModel
from repro.plans.execute import Executor
from repro.plans.nodes import (
    IntersectPlan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    make_choice,
)
from repro.query import TargetQuery
from repro.ssdl.text import parse_ssdl
from tests.conftest import make_example41_source


class TestSSDLTextEdges:
    def test_alternative_arrows(self):
        for arrow in ("->", "::=", ":="):
            desc = parse_ssdl(
                f"s {arrow} r\nr {arrow} a = $str\nattributes r : a"
            )
            assert desc.check(parse_condition("a = 'x'"))

    def test_comments_and_blank_lines(self):
        desc = parse_ssdl(
            """
            # leading comment

            s -> r     # trailing comment
            r -> a = $str
            attributes r : a   # another
            """
        )
        assert desc.check(parse_condition("a = 'x'"))

    def test_attributes_accumulate_across_lines(self):
        desc = parse_ssdl(
            "s -> r\nr -> a = $str\nattributes r : a\nattributes r : b"
        )
        assert desc.attributes["r"] == frozenset({"a", "b"})

    def test_paper_style_attribute_syntax(self):
        # "attributes :: s1 : ..." as printed in the paper.
        desc = parse_ssdl(
            "s -> r\nr -> a = $str\nattributes :: r : a"
        )
        assert desc.attributes["r"] == frozenset({"a"})

    def test_unbalanced_template_at_line_end(self):
        with pytest.raises(SSDLParseError):
            parse_ssdl("s -> r\nr -> a =\nattributes r : a")


class TestRewriteEdges:
    def test_factoring_dual_and_of_ors(self):
        tree = parse_condition("(x = 0 or a = 1) and (x = 0 or b = 2)")
        produced = list(factoring_rule(tree))
        assert parse_condition("x = 0 or (a = 1 and b = 2)") in produced

    def test_distributive_inside_nested_position(self):
        tree = parse_condition("z = 9 or (a = 1 and (b = 2 or c = 3))")
        produced = list(distributive_rule(tree))
        expected = parse_condition(
            "z = 9 or ((a = 1 and b = 2) or (a = 1 and c = 3))"
        )
        assert expected in produced

    def test_copy_rule_skips_true(self):
        assert list(copy_rule(TRUE)) == []

    def test_engine_size_guard_blocks_copy_blowup(self):
        engine = RewriteEngine(
            rules=(copy_rule,), max_trees=50, max_steps=500,
            max_size_factor=1.2,
        )
        seed = parse_condition("a = 1 and b = 2 and c = 3")
        result = engine.explore(seed)
        for tree in result.trees:
            assert tree.size() <= seed.size() * 1.2 + 2


class TestEPGEdges:
    def test_or_node_with_download_only(self):
        from repro.data.relation import Relation
        from repro.data.schema import AttrType, Schema
        from repro.source.source import CapabilitySource
        from repro.ssdl.builder import DescriptionBuilder

        schema = Schema.of("t", [("a", AttrType.STRING)])
        desc = DescriptionBuilder("d").rule("dl", "true", attributes=["a"]).build()
        source = CapabilitySource(
            "t", Relation(schema, [{"a": "x"}, {"a": "y"}]), desc
        )
        checker = CheckCounter(source.description)
        epg = EPG("t", checker)
        choice = epg.generate(
            parse_condition("a = 'x' or a = 'y'"), frozenset({"a"})
        )
        # Branch downloads and whole-node downloads both appear.
        assert choice is not None
        from repro.plans.cost import enumerate_concrete

        plans = list(enumerate_concrete(choice))
        assert all(
            q.condition.is_true for p in plans for q in p.source_queries()
        )

    def test_intersection_of_child_choices(self, example41):
        checker = CheckCounter(example41.closed_description)
        epg = EPG("cars", checker)
        choice = epg.generate(
            parse_condition(
                "(make = 'BMW' and price < 40000) and "
                "(make = 'BMW' and color = 'red')"
            ),
            frozenset({"model"}),
        )
        from repro.plans.cost import enumerate_concrete

        assert any(
            isinstance(p, IntersectPlan) for p in enumerate_concrete(choice)
        )


class TestIPGEdges:
    def test_true_condition_query(self, example41, example41_cost):
        checker = CheckCounter(example41.closed_description)
        ipg = IPG("cars", checker, example41_cost)
        # No download rule: SP(true, ...) is infeasible.
        assert ipg.best_plan(TRUE, frozenset({"model"})) is None

    def test_memo_hits_across_repeated_subtrees(self, example41, example41_cost):
        checker = CheckCounter(example41.closed_description)
        ipg = IPG("cars", checker, example41_cost)
        sub = "(make = 'BMW' and price < 40000)"
        condition = canonicalize(
            parse_condition(f"{sub} or {sub}")
        )
        # After canonicalization duplicates may collapse; use distinct
        # constants to keep two children but identical shape.
        condition = parse_condition(
            "(make = 'BMW' and price < 40000) or "
            "(make = 'BMW' and price < 40000)"
        )
        plan = ipg.best_plan(canonicalize(condition), frozenset({"model"}))
        assert plan is not None

    def test_multi_export_family_uses_best_set(self):
        from repro.data.relation import Relation
        from repro.data.schema import AttrType, Schema
        from repro.source.source import CapabilitySource
        from repro.ssdl.builder import DescriptionBuilder

        schema = Schema.of(
            "t", [("id", AttrType.INT), ("a", AttrType.STRING),
                  ("b", AttrType.STRING)], key="id"
        )
        # Same condition shape under two forms with different exports.
        desc = (
            DescriptionBuilder("d")
            .rule("narrow", "a = $str", attributes=["id"])
            .rule("wide", "a = $str", attributes=["id", "a", "b"])
            .build()
        )
        rows = [{"id": 0, "a": "x", "b": "p"}, {"id": 1, "a": "x", "b": "q"},
                {"id": 2, "a": "y", "b": "p"}]
        source = CapabilitySource("t", Relation(schema, rows), desc)
        model = CostModel({"t": source.stats})
        checker = CheckCounter(source.closed_description)
        ipg = IPG("t", checker, model)
        # Needs b exported + filtered locally: only the wide form works.
        plan = ipg.best_plan(
            canonicalize(parse_condition("a = 'x' and b = 'p'")),
            frozenset({"id"}),
        )
        assert plan is not None
        executor = Executor({"t": source})
        assert executor.execute(plan).as_row_set() == {(0,)}


class TestExecutorEdges:
    def test_nested_union_of_intersections(self, example41):
        executor = Executor({"cars": example41})
        A = frozenset({"model"})

        def sq(text):
            return SourceQuery(parse_condition(text), A, "cars")

        plan = UnionPlan([
            IntersectPlan([sq("make = 'BMW' and price < 40000"),
                           sq("make = 'BMW' and color = 'red'")]),
            sq("make = 'Honda' and color = 'white'"),
        ])
        assert executor.execute(plan).as_row_set() == {("328i",), ("Civic",)}

    def test_choice_nested_inside_composite_rejected(self, example41):
        executor = Executor({"cars": example41})
        A = frozenset({"model"})
        choice = make_choice([
            SourceQuery(parse_condition("make = 'BMW' and color = 'red'"), A,
                        "cars"),
            SourceQuery(parse_condition("make = 'BMW' and price < 40000"), A,
                        "cars"),
        ])
        wrapped = Postprocess(TRUE, A, choice)
        with pytest.raises(PlanExecutionError):
            executor.execute(wrapped)


class TestConditionEdges:
    def test_leaf_helper_accepts_op_objects(self):
        from repro.conditions.atoms import Op

        node = leaf("a", Op.LE, 5)
        assert node.atom.op is Op.LE

    def test_nested_empty_conjunction_via_true(self):
        from repro.conditions.tree import conjunction

        assert conjunction([TRUE, TRUE]) is TRUE

    def test_and_of_same_leaf_twice_is_legal(self):
        tree = And([leaf("a", "=", 1), leaf("a", "=", 1)])
        assert tree.size() == 3

    def test_or_inside_or_text_round_trip(self):
        tree = Or([leaf("a", "=", 1), Or([leaf("b", "=", 2), leaf("c", "=", 3)])])
        assert parse_condition(tree.to_text()) == tree


class TestTargetQueryEdges:
    def test_query_object_accepted_by_mediator(self, example41):
        from repro.mediator import Mediator

        mediator = Mediator()
        mediator.add_source(example41)
        query = TargetQuery(
            parse_condition("make = 'BMW' and price < 40000"),
            frozenset({"model"}),
            "cars",
        )
        answer = mediator.ask(query)
        assert len(answer.rows) == 2

    def test_true_condition_needs_download_rule(self, example41):
        from repro.errors import InfeasiblePlanError
        from repro.mediator import Mediator

        mediator = Mediator()
        mediator.add_source(example41)
        with pytest.raises(InfeasiblePlanError):
            mediator.ask("SELECT model FROM cars")
