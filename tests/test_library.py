"""Capability probes for every source in the library.

These tests pin down exactly what each simulated site's form accepts --
the contract the examples and benchmarks rely on.
"""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import UnsupportedQueryError
from repro.source.library import (
    bank,
    bookstore,
    car_guide,
    classifieds,
    flights,
    standard_catalog,
)


@pytest.fixture(scope="module")
def shops():
    return {
        "bookstore": bookstore(n=300),
        "car_guide": car_guide(n=300),
        "bank": bank(n=300),
        "flights": flights(n=300),
        "classifieds": classifieds(n=100),
    }


class TestBookstore:
    def test_single_author_search(self, shops):
        source = shops["bookstore"]
        assert source.check(parse_condition("author = 'Carl Jung'"))

    def test_author_plus_title_words(self, shops):
        source = shops["bookstore"]
        assert source.check(
            parse_condition("author = 'Carl Jung' and title contains 'dreams'")
        )

    def test_two_authors_at_once_rejected(self, shops):
        # The Example 1.1 limitation.
        source = shops["bookstore"]
        assert not source.check(
            parse_condition("author = 'Carl Jung' or author = 'Anna Freud'")
        )

    def test_no_download(self, shops):
        assert not shops["bookstore"].check(TRUE)

    def test_no_price_search(self, shops):
        assert not shops["bookstore"].check(parse_condition("price <= 10"))

    def test_subject_search(self, shops):
        assert shops["bookstore"].check(parse_condition("subject = 'psychology'"))


class TestCarGuide:
    def test_full_form(self, shops):
        source = shops["car_guide"]
        assert source.description.check(
            parse_condition(
                "style = 'sedan' and make = 'BMW' and price <= 40000 "
                "and (size = 'compact' or size = 'midsize')"
            )
        )

    def test_any_single_slot(self, shops):
        source = shops["car_guide"]
        for text in ("style = 'sedan'", "make = 'BMW'", "price <= 40000",
                     "size = 'compact'"):
            assert source.description.check(parse_condition(text)), text

    def test_size_list_alone(self, shops):
        source = shops["car_guide"]
        assert source.check(
            parse_condition("size = 'compact' or size = 'midsize'")
        )

    def test_field_order_is_native_contract(self, shops):
        source = shops["car_guide"]
        swapped = parse_condition("make = 'BMW' and style = 'sedan'")
        assert not source.description.check(swapped)   # native rejects
        assert source.check(swapped)                    # planning accepts
        with pytest.raises(UnsupportedQueryError):
            source.execute(swapped, ["id"])             # enforcement
        fixed = source.fix(swapped, ["id"])
        assert len(source.execute(fixed, ["id"])) >= 0  # no raise

    def test_color_not_searchable_but_exported(self, shops):
        source = shops["car_guide"]
        assert not source.check(parse_condition("color = 'red'"))
        result = source.check(parse_condition("make = 'BMW'"))
        assert result.supports({"color"})

    def test_mileage_only_via_id_lookup(self, shops):
        source = shops["car_guide"]
        assert not source.check(parse_condition("make = 'BMW'")).supports(
            {"mileage"}
        )
        assert source.check(parse_condition("id = 5")).supports({"mileage"})


class TestBank:
    def test_balance_needs_pin(self, shops):
        source = shops["bank"]
        no_pin = source.check(parse_condition("account_no = 100001"))
        assert no_pin.supports({"owner"}) and not no_pin.supports({"balance"})
        with_pin = source.check(
            parse_condition("account_no = 100001 and pin = 1234")
        )
        assert with_pin.supports({"balance"})

    def test_branch_scan_never_reveals_balance(self, shops):
        source = shops["bank"]
        result = source.check(parse_condition("branch = 'downtown'"))
        assert result and not result.supports({"balance"})

    def test_pin_alone_is_not_a_query(self, shops):
        assert not shops["bank"].check(parse_condition("pin = 1234"))


class TestFlights:
    def test_route_required(self, shops):
        source = shops["flights"]
        assert source.check(
            parse_condition("origin = 'SFO' and destination = 'BOS'")
        )
        assert not source.check(parse_condition("origin = 'SFO'"))
        assert not source.check(parse_condition("airline = 'UA'"))

    def test_route_with_airline_or_price(self, shops):
        source = shops["flights"]
        assert source.check(
            parse_condition(
                "origin = 'SFO' and destination = 'BOS' and airline = 'UA'"
            )
        )
        assert source.check(
            parse_condition(
                "origin = 'SFO' and destination = 'BOS' and price <= 300"
            )
        )

    def test_no_download(self, shops):
        assert not shops["flights"].check(TRUE)


class TestClassifieds:
    def test_download_allowed(self, shops):
        source = shops["classifieds"]
        assert source.check(TRUE)
        result = source.execute(TRUE, ["id", "make"])
        assert len(result) == len(source.relation)

    def test_by_make(self, shops):
        assert shops["classifieds"].check(parse_condition("make = 'BMW'"))


class TestStandardCatalog:
    def test_contains_all_five(self):
        catalog = standard_catalog()
        assert set(catalog) == {
            "bookstore", "car_guide", "bank", "flights", "classifieds",
        }

    def test_names_match_keys(self):
        for name, source in standard_catalog().items():
            assert source.name == name
