"""Tests for the bottleneck (response-time) cost model -- the Section 7
"different cost models" adaptation, including PR1's unsoundness there."""

import pytest

from repro.conditions.parser import parse_condition
from repro.planners.gencompact import GenCompact
from repro.planners.ipg import IPG
from repro.planners.base import CheckCounter
from repro.planners.mcsc import CoverCandidate, solve_minmax
from repro.plans.cost import BottleneckCostModel, CostModel
from repro.plans.nodes import SourceQuery, UnionPlan
from repro.query import TargetQuery
from tests.conftest import make_example41_source


def cand(coverage, cost, payload=None):
    return CoverCandidate(frozenset(coverage), float(cost), payload)


class TestSolveMinmax:
    def test_prefers_low_bottleneck_over_low_sum(self):
        candidates = [
            cand({0, 1}, 100),            # sum-optimal single set
            cand({0}, 60), cand({1}, 60),  # max-optimal pair
        ]
        solution = solve_minmax(2, candidates)
        assert solution.cost == 60
        assert len(solution.chosen) == 2

    def test_single_cheap_cover(self):
        candidates = [cand({0, 1}, 10), cand({0}, 5), cand({1}, 50)]
        solution = solve_minmax(2, candidates)
        assert solution.cost == 10

    def test_redundant_early_picks_dropped(self):
        candidates = [cand({0}, 1), cand({0, 1, 2}, 10)]
        solution = solve_minmax(3, candidates)
        assert solution.cost == 10
        assert len(solution.chosen) == 1  # the singleton is redundant

    def test_unsolvable(self):
        assert solve_minmax(2, [cand({0}, 1)]) is None

    def test_zero_elements(self):
        assert solve_minmax(0, []).cost == 0

    def test_bottleneck_never_exceeds_any_cover(self):
        import random

        rng = random.Random(3)
        for _ in range(30):
            n = rng.randint(2, 5)
            candidates = [
                cand(rng.sample(range(n), rng.randint(1, n)),
                     rng.uniform(1, 100))
                for _ in range(8)
            ] + [cand({i}, 150) for i in range(n)]
            solution = solve_minmax(n, candidates)
            assert solution is not None
            # Brute force the true min-max for the cross-check.
            best = float("inf")
            for subset in range(1, 1 << len(candidates)):
                covered = set()
                worst = 0.0
                for i in range(len(candidates)):
                    if subset & (1 << i):
                        covered |= candidates[i].coverage
                        worst = max(worst, candidates[i].cost)
                if covered == set(range(n)):
                    best = min(best, worst)
            assert solution.cost == pytest.approx(best)


class TestBottleneckModel:
    def test_cost_is_max_over_queries(self, example41):
        model = BottleneckCostModel({"cars": example41.stats})
        additive = CostModel({"cars": example41.stats})
        a = SourceQuery(
            parse_condition("make = 'BMW' and price < 40000"),
            frozenset({"model"}), "cars",
        )
        b = SourceQuery(
            parse_condition("make = 'Toyota' and price < 40000"),
            frozenset({"model"}), "cars",
        )
        union = UnionPlan([a, b])
        assert model.cost(union) == pytest.approx(
            max(model.cost(a), model.cost(b))
        )
        assert additive.cost(union) == pytest.approx(
            additive.cost(a) + additive.cost(b)
        )

    def test_flags(self, example41):
        model = BottleneckCostModel({"cars": example41.stats})
        assert model.aggregate_kind == "max"
        assert not model.pr1_sound


class TestPR1UnsoundnessUnderBottleneck:
    """The canonical counterexample: a disjunctive query where the pure
    plan is feasible but the union plan has a lower bottleneck."""

    def make_source(self):
        from repro.data.relation import Relation
        from repro.data.schema import AttrType, Schema
        from repro.source.source import CapabilitySource
        from repro.ssdl.builder import DescriptionBuilder

        schema = Schema.of(
            "t", [("id", AttrType.INT), ("m", AttrType.STRING)], key="id"
        )
        rows = [{"id": i, "m": "a" if i % 2 else "b"} for i in range(100)]
        desc = (
            DescriptionBuilder("d")
            # The whole two-way disjunction is supported (pure plan)...
            .rule("pair", "m = $str or m = $str", attributes=["id", "m"])
            # ...and so is each single equality.
            .rule("single", "m = $str", attributes=["id", "m"])
            .build()
        )
        return CapabilitySource("t", Relation(schema, rows), desc)

    QUERY_TEXT = "m = 'a' or m = 'b'"

    def test_union_beats_pure_under_bottleneck(self):
        source = self.make_source()
        model = BottleneckCostModel({"t": source.stats}, k1=10.0)
        query = TargetQuery(
            parse_condition(self.QUERY_TEXT), frozenset({"id"}), "t"
        )
        result = GenCompact().plan(query, source, model)
        assert result.feasible
        # 100 rows through one query (cost 110) vs the worst branch of
        # the union (cost 10 + ~50): the union must win.
        assert isinstance(result.plan, UnionPlan)
        pure = SourceQuery(query.condition, query.attributes, "t")
        assert result.cost < model.cost(pure)

    def test_forcing_pr1_returns_the_worse_pure_plan(self):
        """Demonstrates *why* the model must gate PR1: keeping it prunes
        the optimum."""
        source = self.make_source()
        model = BottleneckCostModel({"t": source.stats}, k1=10.0)
        checker = CheckCounter(source.closed_description)
        ipg = IPG("t", checker, model)
        ipg.pr1 = True  # override the soundness gate, on purpose
        plan = ipg.best_plan(
            parse_condition(self.QUERY_TEXT), frozenset({"id"})
        )
        assert isinstance(plan, SourceQuery)  # the pure plan
        unpruned = IPG("t", CheckCounter(source.closed_description), model)
        best = unpruned.best_plan(
            parse_condition(self.QUERY_TEXT), frozenset({"id"})
        )
        assert model.cost(best) < model.cost(plan)

    def test_additive_model_still_prefers_pure(self):
        source = self.make_source()
        model = CostModel({"t": source.stats}, k1=10.0)
        query = TargetQuery(
            parse_condition(self.QUERY_TEXT), frozenset({"id"}), "t"
        )
        result = GenCompact().plan(query, source, model)
        assert isinstance(result.plan, SourceQuery)


class TestBottleneckEndToEnd:
    def test_plans_remain_correct(self):
        from repro.plans.execute import Executor, reference_answer

        source = make_example41_source()
        model = BottleneckCostModel({"cars": source.stats})
        query = TargetQuery(
            parse_condition(
                "(make = 'BMW' and price < 40000) or "
                "(make = 'Toyota' and price < 30000)"
            ),
            frozenset({"model", "year"}),
            "cars",
        )
        result = GenCompact().plan(query, source, model)
        assert result.feasible
        answer = Executor({"cars": source}).execute(result.plan)
        expected = reference_answer(
            source, query.condition, query.attributes
        ).as_row_set()
        assert answer.as_row_set() == expected
