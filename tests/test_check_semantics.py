"""Deep semantics of Check: paren transparency, literal templates under
closure, and interplay between the family semantics and planning."""


from repro.conditions.parser import parse_condition
from repro.ssdl.commute import commutation_closure
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.text import parse_ssdl


class TestParenTransparency:
    """Outer parens are semantically transparent: a rule written as a
    parenthesized group must also accept the same expression top-level,
    and vice versa for connector conditions."""

    def test_paren_rule_accepts_top_level(self):
        desc = parse_ssdl(
            """
            s -> f
            f -> ( pair )
            pair -> a = $str or b = $str
            attributes f : a, b
            """
        )
        assert desc.check(parse_condition("a = 'x' or b = 'y'"))

    def test_bare_rule_accepts_top_level_only_as_written(self):
        desc = parse_ssdl(
            "s -> f\nf -> a = $str or b = $str\nattributes f : a, b"
        )
        assert desc.check(parse_condition("a = 'x' or b = 'y'"))

    def test_leaf_conditions_not_wrapped(self):
        # The wrapping rule applies to connector conditions only; a
        # grammar of '( a = $str )' does not accept a bare leaf.
        desc = parse_ssdl(
            "s -> f\nf -> ( g )\ng -> a = $str\nattributes f : a"
        )
        assert not desc.check(parse_condition("a = 'x'"))

    def test_nested_group_within_conjunction_still_needed(self):
        desc = parse_ssdl(
            """
            s -> f
            f -> m = $str and ( pair )
            pair -> a = $str or b = $str
            attributes f : m, a, b
            """
        )
        assert desc.check(parse_condition("m = 'x' and (a = 'p' or b = 'q')"))
        # The group is mandatory: a bare second conjunct is a different
        # token sequence.
        assert not desc.check(parse_condition("m = 'x' and a = 'p'"))


class TestLiteralTemplatesUnderClosure:
    def test_closure_keeps_literal_constraints(self):
        native = parse_ssdl(
            "s -> r\nr -> style = 'sedan' and make = $str\n"
            "attributes r : style, make"
        )
        closed = commutation_closure(native)
        assert closed.check(parse_condition("make = 'x' and style = 'sedan'"))
        assert not closed.check(parse_condition("make = 'x' and style = 'coupe'"))

    def test_numeric_literal(self):
        desc = parse_ssdl(
            "s -> r\nr -> year = 1999 and make = $str\nattributes r : make"
        )
        assert desc.check(parse_condition("year = 1999 and make = 'a'"))
        assert not desc.check(parse_condition("year = 1998 and make = 'a'"))


class TestFamilyInteractionWithPlanning:
    def test_projection_selects_the_right_form(self):
        """Two forms accept the same condition with different exports;
        planning must use whichever form can export the request."""
        from repro.data.relation import Relation
        from repro.data.schema import AttrType, Schema
        from repro.plans.cost import CostModel
        from repro.planners.gencompact import GenCompact
        from repro.query import TargetQuery
        from repro.source.source import CapabilitySource

        schema = Schema.of(
            "t", [("id", AttrType.INT), ("a", AttrType.STRING),
                  ("b", AttrType.STRING), ("c", AttrType.STRING)], key="id"
        )
        desc = (
            DescriptionBuilder("d")
            .rule("form_b", "a = $str", attributes=["id", "b"])
            .rule("form_c", "a = $str", attributes=["id", "c"])
            .build()
        )
        rows = [{"id": i, "a": "x", "b": f"b{i}", "c": f"c{i}"} for i in range(4)]
        source = CapabilitySource("t", Relation(schema, rows), desc)
        model = CostModel({"t": source.stats})
        for wanted in ("b", "c"):
            query = TargetQuery(
                parse_condition("a = 'x'"), frozenset({"id", wanted}), "t"
            )
            result = GenCompact().plan(query, source, model)
            assert result.feasible, wanted
        # But both at once is impossible: no single form exports b and c.
        both = TargetQuery(
            parse_condition("a = 'x'"), frozenset({"id", "b", "c"}), "t"
        )
        result = GenCompact().plan(both, source, model)
        assert not result.feasible

    def test_check_counts_isolated_per_description(self):
        d1 = parse_ssdl("s -> r\nr -> a = $str\nattributes r : a")
        d2 = parse_ssdl("s -> r\nr -> a = $str\nattributes r : a")
        d1.check(parse_condition("a = 'x'"))
        assert d1.check_calls == 1
        assert d2.check_calls == 0
