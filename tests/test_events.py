"""The wide-event request log: one structured event per ask.

The event ring and its JSONL sink (:mod:`repro.observability.events`),
the mediator's emission path -- every :meth:`Mediator.ask` lands one
:class:`AskEvent` carrying the trace id, the plan fingerprint, how
planning resolved, per-source tallies and the outcome, shed and error
asks included -- and the trace CLI's ``--events`` view.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import OverloadError, PlanExecutionError
from repro.mediator import Mediator
from repro.observability import (
    AskEvent,
    EventLog,
    Tracer,
    read_events,
    use_tracer,
)
from repro.trace import main as trace_main
from tests.conftest import make_example41_source

BMW = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"


def make_mediator(**kwargs) -> Mediator:
    mediator = Mediator(**kwargs)
    mediator.add_source(make_example41_source())
    return mediator


class TestEventLog:
    def test_bounded_ring_with_exact_accounting(self):
        log = EventLog(capacity=2)
        for index in range(5):
            log.append(AskEvent(query=f"q{index}", source="s",
                                outcome="ok", duration_seconds=0.01))
        assert len(log) == 2
        assert log.recorded == 5
        assert log.evicted == 3
        assert [e.query for e in log.events()] == ["q3", "q4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(capacity=2, path=path) as log:
            for index in range(4):
                log.append(AskEvent(
                    query=f"q{index}", source="s", outcome="ok",
                    duration_seconds=0.25, trace_id="ab" * 16,
                    per_source={"s": [1, 7]}, coalesced_hits=index,
                ))
        # The ring is bounded; the file keeps everything.
        reloaded = list(read_events(path))
        assert [e.query for e in reloaded] == ["q0", "q1", "q2", "q3"]
        assert reloaded[0].per_source == {"s": [1, 7]}
        assert reloaded[3].coalesced_hits == 3
        assert reloaded[0].trace_id == "ab" * 16
        # One JSON object per line, greppable.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        assert all(json.loads(line)["outcome"] == "ok" for line in lines)

    def test_from_dict_ignores_unknown_keys(self):
        event = AskEvent.from_dict({
            "query": "q", "source": "s", "outcome": "ok",
            "duration_seconds": 0.1, "future_field": 123,
        })
        assert event.query == "q"

    def test_append_after_close_keeps_the_ring(self, tmp_path):
        log = EventLog(capacity=4, path=tmp_path / "e.jsonl")
        log.close()
        log.append(AskEvent(query="q", source="s", outcome="ok",
                            duration_seconds=0.0))
        assert len(log) == 1

    def test_format_is_greppable(self):
        log = EventLog(capacity=4)
        log.append(AskEvent(
            query=BMW, source="cars", outcome="ok",
            duration_seconds=0.002, trace_id="0" * 31 + "7",
            fingerprint="abcdef123456", plan_cache="hit",
            coalesced_hits=2, batched_hits=1, answers=3,
        ))
        text = log.format()
        assert "ask events: 1 retained of 1 recorded" in text
        assert "[abcdef123456]" in text
        assert "plan_cache=hit" in text
        assert "coalesced=2" in text and "batched=1" in text
        assert "trace=" + "0" * 31 + "7" in text
        assert BMW in text

    def test_clear_resets_accounting(self):
        log = EventLog(capacity=2)
        log.append(AskEvent(query="q", source="s", outcome="ok",
                            duration_seconds=0.0))
        log.clear()
        assert len(log) == 0 and log.recorded == 0 and log.evicted == 0


class TestMediatorEmission:
    def test_every_ask_emits_one_event(self):
        mediator = make_mediator(event_log_entries=16)
        for _ in range(3):
            mediator.ask(BMW)
        events = mediator.events.events()
        assert len(events) == 3
        event = events[0]
        assert event.outcome == "ok"
        assert event.source == "cars"
        assert event.fingerprint
        assert event.answers > 0
        assert event.per_source["cars"][0] >= 1
        assert event.duration_seconds > 0
        assert event.error is None

    def test_event_log_path_alone_arms_the_log(self, tmp_path):
        path = tmp_path / "asks.jsonl"
        mediator = make_mediator(event_log_path=path)
        mediator.ask(BMW)
        mediator.close()
        assert len(list(read_events(path))) == 1

    def test_trace_id_joins_the_event_to_the_trace(self):
        mediator = make_mediator(event_log_entries=4)
        with use_tracer(Tracer()) as tracer:
            mediator.ask(BMW)
        event = mediator.events.events()[0]
        root = [s for s in tracer.finished_spans()
                if s.name == "mediator.ask"][0]
        assert event.trace_id == f"{root.trace_id:032x}"

    def test_no_tracer_means_empty_trace_id(self):
        mediator = make_mediator(event_log_entries=4)
        mediator.ask(BMW)
        assert mediator.events.events()[0].trace_id == ""

    def test_plan_cache_outcome_is_recorded(self):
        mediator = make_mediator(event_log_entries=8,
                                 plan_cache_entries=16)
        mediator.ask(BMW)
        mediator.ask(BMW)
        outcomes = [e.plan_cache for e in mediator.events.events()]
        assert outcomes == ["miss", "hit"]

    def test_without_plan_cache_the_outcome_is_blank(self):
        mediator = make_mediator(event_log_entries=8)
        mediator.ask(BMW)
        assert mediator.events.events()[0].plan_cache == ""

    def test_error_ask_still_emits_with_the_error_class(self):
        mediator = make_mediator(event_log_entries=8)
        with pytest.raises(PlanExecutionError):
            mediator.ask("SELECT model FROM nosuch WHERE make = 'BMW'")
        event = mediator.events.events()[0]
        assert event.outcome == "PlanExecutionError"
        assert "nosuch" in event.error
        assert event.answers == 0

    def test_shed_ask_emits_a_shed_event(self):
        mediator = make_mediator(event_log_entries=8, max_in_flight=1,
                                 admission_timeout=0.02)
        entered = threading.Event()
        release = threading.Event()

        def occupy() -> None:
            with mediator.admission.admit():
                entered.set()
                release.wait(timeout=5.0)

        holder = threading.Thread(target=occupy)
        holder.start()
        try:
            assert entered.wait(timeout=5.0)
            with pytest.raises(OverloadError):
                mediator.ask(BMW)
        finally:
            release.set()
            holder.join()
        event = mediator.events.events()[0]
        assert event.outcome == "shed"
        assert event.per_source == {}

    def test_coalesced_hits_flow_into_the_event(self):
        mediator = make_mediator(event_log_entries=64, executor="async")
        barrier = threading.Barrier(8)
        try:
            def ask() -> None:
                barrier.wait(timeout=10.0)
                mediator.ask(BMW)

            threads = [threading.Thread(target=ask) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            events = mediator.events.events()
            assert len(events) == 8
            shared = sum(e.coalesced_hits for e in events)
            direct = sum(e.per_source.get("cars", [0])[0] for e in events)
            # Every ask either did the source work or joined a flight.
            assert shared + direct >= 8
        finally:
            mediator.close()

    def test_no_event_log_means_no_overhead_path(self):
        mediator = make_mediator()
        mediator.ask(BMW)
        assert mediator.events is None

    def test_slo_and_events_compose(self):
        mediator = make_mediator(event_log_entries=8,
                                 latency_objective=1e-9)
        mediator.ask(BMW)
        assert len(mediator.events.events()) == 1
        assert mediator.slow_queries.recorded == 1

    def test_close_closes_the_sink(self, tmp_path):
        path = tmp_path / "asks.jsonl"
        mediator = make_mediator(event_log_path=path)
        mediator.ask(BMW)
        mediator.close()
        mediator.ask(BMW)  # mediator still usable; ring still records
        assert len(mediator.events.events()) == 2
        assert len(list(read_events(path))) == 1


class TestTraceCliEvents:
    def test_events_flag_prints_the_log(self, capsys):
        assert trace_main([BMW, "--events"]) == 0
        out = capsys.readouterr().out
        assert "ask events: 1 retained of 1 recorded" in out
        assert "answers=" in out

    def test_without_the_flag_no_event_section(self, capsys):
        assert trace_main([BMW]) == 0
        assert "ask events:" not in capsys.readouterr().out
