"""Fuzzing the Earley recognizer against brute-force derivation.

Random small grammars over a tiny terminal alphabet; strings generated
by expanding the grammar must be accepted, and a brute-force
breadth-first derivation check cross-validates both acceptance and
rejection on arbitrary short token strings.
"""

import random
from itertools import product

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.conditions.atoms import Atom, Op
from repro.ssdl.earley import EarleyRecognizer
from repro.ssdl.symbols import NT, AtomToken, Template, ConstClass

# Terminal alphabet: three distinguishable atom templates.
_TEMPLATES = [
    Template("a", Op.EQ, ConstClass.STR),
    Template("b", Op.EQ, ConstClass.STR),
    Template("c", Op.EQ, ConstClass.STR),
]
_TOKENS = [
    AtomToken(Atom("a", Op.EQ, "v")),
    AtomToken(Atom("b", Op.EQ, "v")),
    AtomToken(Atom("c", Op.EQ, "v")),
]
_NT_NAMES = ["S", "X", "Y"]


def random_grammar(rng: random.Random) -> dict:
    """A random CFG over the tiny alphabet (may include recursion/empty)."""
    productions: dict = {}
    for name in _NT_NAMES:
        alternatives = []
        for _ in range(rng.randint(1, 3)):
            length = rng.randint(0, 3)
            alt = []
            for _ in range(length):
                if rng.random() < 0.35:
                    alt.append(NT(rng.choice(_NT_NAMES)))
                else:
                    alt.append(rng.choice(_TEMPLATES))
            alternatives.append(alt)
        productions[name] = alternatives
    return productions


def brute_force_accepts(productions: dict, tokens: tuple, start: str,
                        max_depth: int = 12) -> bool:
    """Breadth-first derivation with pruning on terminal prefixes."""
    target = [_TEMPLATES[_TOKENS.index(t)] for t in tokens]

    def matches_prefix(form: tuple) -> bool:
        # The terminal prefix of the sentential form must match the
        # target, and the terminal count must not exceed it.
        terminal_count = sum(1 for s in form if not isinstance(s, NT))
        if terminal_count > len(target):
            return False
        for i, symbol in enumerate(form):
            if isinstance(symbol, NT):
                return True
            if i >= len(target) or symbol != target[i]:
                return False
        return True

    seen = set()
    frontier = [(NT(start),)]
    for _ in range(max_depth):
        next_frontier = []
        for form in frontier:
            if form in seen:
                continue
            seen.add(form)
            nts = [i for i, s in enumerate(form) if isinstance(s, NT)]
            if not nts:
                if list(form) == target:
                    return True
                continue
            index = nts[0]
            for alternative in productions[form[index].name]:
                new_form = form[:index] + tuple(alternative) + form[index + 1:]
                if matches_prefix(new_form) and new_form not in seen:
                    next_frontier.append(new_form)
        frontier = next_frontier
        if not frontier:
            break
    return False


def sample_string(productions: dict, rng: random.Random, start: str,
                  max_len: int = 5):
    """Expand the grammar randomly; None if expansion doesn't terminate."""
    form = [NT(start)]
    for _ in range(40):
        nts = [i for i, s in enumerate(form) if isinstance(s, NT)]
        if not nts:
            break
        index = rng.choice(nts)
        # Prefer short alternatives to encourage termination.
        alternatives = sorted(
            productions[form[index].name], key=len
        )
        weights = [3, 2, 1][: len(alternatives)]
        chosen = rng.choices(alternatives, weights=weights, k=1)[0]
        form = form[:index] + list(chosen) + form[index + 1:]
        if len([s for s in form if not isinstance(s, NT)]) > max_len:
            return None
    if any(isinstance(s, NT) for s in form):
        return None
    return tuple(_TOKENS[_TEMPLATES.index(s)] for s in form)


@given(st.integers(0, 10**6))
@settings(max_examples=60, deadline=None)
def test_generated_strings_are_accepted(seed):
    rng = random.Random(seed)
    productions = random_grammar(rng)
    recognizer = EarleyRecognizer(productions)
    for _ in range(5):
        tokens = sample_string(productions, rng, "S")
        if tokens is None or len(tokens) > 5:
            continue
        assert recognizer.accepts(tokens, "S"), (productions, tokens)


@given(st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_earley_matches_brute_force_on_short_strings(seed):
    rng = random.Random(seed)
    productions = random_grammar(rng)
    recognizer = EarleyRecognizer(productions)
    for length in range(0, 3):
        for combo in product(_TOKENS, repeat=length):
            expected = brute_force_accepts(productions, combo, "S")
            got = recognizer.accepts(combo, "S")
            # The brute force may time out (max_depth) on strings the
            # grammar *does* accept via deep derivations; it never
            # accepts wrongly.  So: brute-accept => earley-accept, and
            # earley-reject => brute-reject.
            if expected:
                assert got, (productions, combo)
            if not got:
                assert not expected, (productions, combo)
