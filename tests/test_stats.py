"""Unit tests for statistics and result-size estimation."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.data.stats import MIN_SELECTIVITY, TableStats


@pytest.fixture
def stats():
    schema = Schema.of(
        "t", [("id", AttrType.INT), ("color", AttrType.STRING),
              ("price", AttrType.INT), ("title", AttrType.STRING)], key="id"
    )
    rows = []
    colors = ["red"] * 50 + ["black"] * 30 + ["blue"] * 20
    for i in range(100):
        rows.append(
            {
                "id": i,
                "color": colors[i],
                "price": i * 10,  # 0..990
                "title": "about dreams" if i < 10 else "about memory",
            }
        )
    return TableStats.from_relation(Relation(schema, rows))


class TestAtomSelectivity:
    def test_equality_from_counts(self, stats):
        assert stats.selectivity(parse_condition("color = 'red'")) == 0.5
        assert stats.selectivity(parse_condition("color = 'blue'")) == 0.2

    def test_equality_unseen_value(self, stats):
        sel = stats.selectivity(parse_condition("color = 'pink'"))
        assert 0 < sel < 0.01

    def test_inequality(self, stats):
        assert stats.selectivity(parse_condition("color != 'red'")) == 0.5

    def test_range(self, stats):
        assert stats.selectivity(parse_condition("price < 500")) == 0.5
        assert stats.selectivity(parse_condition("price <= 0")) == 0.01
        assert stats.selectivity(parse_condition("price >= 0")) == 1.0
        assert stats.selectivity(parse_condition("price > 990")) == MIN_SELECTIVITY

    def test_contains(self, stats):
        assert stats.selectivity(parse_condition("title contains 'dreams'")) == 0.1
        assert stats.selectivity(parse_condition("title contains 'about'")) == 1.0

    def test_in(self, stats):
        sel = stats.selectivity(parse_condition("color in ('red', 'blue')"))
        assert sel == pytest.approx(0.7)

    def test_unknown_attribute_small_but_positive(self, stats):
        sel = stats.selectivity(parse_condition("ghost = 'x'"))
        assert 0 < sel < 0.01

    def test_cross_type_range_is_floor(self, stats):
        sel = stats.selectivity(parse_condition("color < 5"))
        assert sel == MIN_SELECTIVITY


class TestCombinators:
    def test_true(self, stats):
        assert stats.selectivity(TRUE) == 1.0
        assert stats.estimated_rows(TRUE) == 100

    def test_and_independence(self, stats):
        sel = stats.selectivity(
            parse_condition("color = 'red' and price < 500")
        )
        assert sel == pytest.approx(0.25)

    def test_or_inclusion_exclusion(self, stats):
        sel = stats.selectivity(
            parse_condition("color = 'red' or color = 'black'")
        )
        assert sel == pytest.approx(1 - 0.5 * 0.7)

    def test_and_monotone_in_conjuncts(self, stats):
        whole = stats.selectivity(
            parse_condition("color = 'red' and price < 500 and title contains 'dreams'")
        )
        part = stats.selectivity(parse_condition("color = 'red' and price < 500"))
        assert whole <= part

    def test_or_monotone_in_disjuncts(self, stats):
        part = stats.selectivity(parse_condition("color = 'red'"))
        whole = stats.selectivity(
            parse_condition("color = 'red' or price < 100")
        )
        assert whole >= part

    def test_estimated_rows_scales(self, stats):
        assert stats.estimated_rows(parse_condition("color = 'red'")) == 50

    def test_selectivity_cached(self, stats):
        condition = parse_condition("color = 'red' and price < 500")
        first = stats.selectivity(condition)
        assert stats.selectivity(condition) == first
        assert condition in stats._selectivity_cache


class TestSampledStats:
    def make_relation(self, n=2000):
        schema = Schema.of(
            "t", [("id", AttrType.INT), ("color", AttrType.STRING)], key="id"
        )
        rows = [
            {"id": i, "color": "red" if i % 4 == 0 else "blue"}
            for i in range(n)
        ]
        return Relation(schema, rows)

    def test_sampled_selectivity_close_to_exact(self):
        relation = self.make_relation()
        exact = TableStats.from_relation(relation)
        sampled = TableStats.from_relation(relation, sample_size=400, seed=1)
        condition = parse_condition("color = 'red'")
        assert sampled.selectivity(condition) == pytest.approx(
            exact.selectivity(condition), abs=0.08
        )

    def test_cardinality_stays_exact(self):
        relation = self.make_relation()
        sampled = TableStats.from_relation(relation, sample_size=100, seed=1)
        assert sampled.n_rows == len(relation)
        from repro.conditions.tree import TRUE

        assert sampled.estimated_rows(TRUE) == len(relation)

    def test_oversized_sample_is_full_scan(self):
        relation = self.make_relation(50)
        sampled = TableStats.from_relation(relation, sample_size=500)
        exact = TableStats.from_relation(relation)
        condition = parse_condition("color = 'red'")
        assert sampled.selectivity(condition) == exact.selectivity(condition)

    def test_sampling_deterministic_by_seed(self):
        relation = self.make_relation()
        a = TableStats.from_relation(relation, sample_size=200, seed=9)
        b = TableStats.from_relation(relation, sample_size=200, seed=9)
        condition = parse_condition("color = 'red'")
        assert a.selectivity(condition) == b.selectivity(condition)
