"""Golden tests for the OpenMetrics text exposition.

The name mapping is deliberately mechanical (see
``repro.observability.exposition``), so the rendered text for a known
registry is pinned byte-for-byte: counter ``_total`` suffixes, the
``source.<name>.*`` label folding, cumulative ``le`` buckets ending in
``+Inf``, label escaping and the trailing ``# EOF``.
"""

from __future__ import annotations

import pytest

from repro.observability import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsRegistry,
    render_openmetrics,
)
from repro.observability.exposition import (
    escape_label_value,
    format_value,
    metric_family,
    sanitize_metric_name,
)


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("executor.retries").inc(3)
    gauge = registry.gauge("executor.in_flight")
    gauge.set(2)
    gauge.set(1)
    histogram = registry.histogram(
        "mediator.ask_seconds", buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        histogram.observe(value)
    registry.counter("source.cars.queries").inc(7)
    registry.counter("source.reviews.queries").inc(2)
    return registry


GOLDEN = """\
# TYPE repro_executor_in_flight gauge
# HELP repro_executor_in_flight registry metric executor.in_flight
repro_executor_in_flight 1
repro_executor_in_flight_max 2
# TYPE repro_executor_retries counter
# HELP repro_executor_retries registry metric executor.retries
repro_executor_retries_total 3
# TYPE repro_mediator_ask_seconds histogram
# HELP repro_mediator_ask_seconds registry metric mediator.ask_seconds
repro_mediator_ask_seconds_bucket{le="0.01"} 1
repro_mediator_ask_seconds_bucket{le="0.1"} 3
repro_mediator_ask_seconds_bucket{le="1"} 4
repro_mediator_ask_seconds_bucket{le="+Inf"} 5
repro_mediator_ask_seconds_sum 5.605
repro_mediator_ask_seconds_count 5
# TYPE repro_source_queries counter
# HELP repro_source_queries registry metric source.cars.queries source.reviews.queries
repro_source_queries_total{source="cars"} 7
repro_source_queries_total{source="reviews"} 2
# EOF
"""


class TestGoldenRendering:
    def test_known_registry_renders_byte_for_byte(self):
        assert render_openmetrics(_registry().snapshot()) == GOLDEN

    def test_empty_snapshot_is_just_eof(self):
        assert render_openmetrics({}) == "# EOF\n"

    def test_content_type_pins_the_openmetrics_dialect(self):
        assert "application/openmetrics-text" in OPENMETRICS_CONTENT_TYPE
        assert "charset=utf-8" in OPENMETRICS_CONTENT_TYPE


class TestNameMapping:
    def test_source_namespace_folds_into_a_label(self):
        family, labels = metric_family("source.cars.queue_wait_seconds")
        assert family == "repro_source_queue_wait_seconds"
        assert labels == {"source": "cars"}

    def test_plain_dotted_names_map_one_to_one(self):
        assert metric_family("planner.subplans") == ("repro_planner_subplans",
                                                     {})

    def test_invalid_characters_become_underscores(self):
        assert sanitize_metric_name("a-b c/d") == "a_b_c_d"
        assert sanitize_metric_name("9lives").startswith("_")
        assert sanitize_metric_name("") == "_"

    def test_label_values_are_escaped(self):
        assert escape_label_value('back\\slash "quote"\nline') == (
            'back\\\\slash \\"quote\\"\\nline'
        )

    def test_escaped_source_label_survives_rendering(self):
        registry = MetricsRegistry()
        registry.counter('source.we"ird.queries').inc(1)
        text = render_openmetrics(registry.snapshot())
        assert 'source="we\\"ird"' in text

    def test_format_value_integers_bare_floats_compact(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(True) == "1"


class TestKindCollisions:
    def test_mixed_kinds_on_one_family_stay_observable(self):
        registry = MetricsRegistry()
        registry.counter("source.cars.load").inc(1)
        registry.gauge("source.reviews.load").set(4)
        text = render_openmetrics(registry.snapshot())
        # First-seen kind keeps the family; the other gets a suffix.
        assert 'repro_source_load_total{source="cars"} 1' in text
        assert 'repro_source_load_gauge{source="reviews"} 4' in text

    def test_every_line_before_eof_is_comment_or_sample(self):
        text = render_openmetrics(_registry().snapshot())
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        for line in lines[:-1]:
            assert line.startswith("# ") or " " in line


@pytest.mark.parametrize("name", [
    "executor.call_seconds", "serving.request_seconds",
    "source.a.b.c.d",
])
def test_families_are_valid_metric_identifiers(name):
    family, _ = metric_family(name)
    assert sanitize_metric_name(family) == family
