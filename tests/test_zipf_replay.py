"""Zipf replayer: diurnal schedules, the harness ``arrivals`` hook, and
exact completed+shed+errors accounting."""

from __future__ import annotations

import pytest

from repro.mediator import Mediator
from repro.serving.loadgen import LoadHarness
from repro.workloads.replay import (
    ZipfTrafficWorkload,
    diurnal_arrivals,
    zipf_stream,
    zipf_weights,
)
from tests.conftest import make_example41_source


class TestDiurnalArrivals:
    def test_deterministic_and_strictly_increasing(self):
        schedule = diurnal_arrivals(200, 2.0, depth=0.9, cycles=2)
        assert schedule == diurnal_arrivals(200, 2.0, depth=0.9, cycles=2)
        assert all(a < b for a, b in zip(schedule, schedule[1:]))
        assert 0.0 < schedule[0] and schedule[-1] < 2.0

    def test_peak_is_denser_than_trough(self):
        schedule = diurnal_arrivals(400, 4.0, depth=0.9, cycles=1)
        trough = sum(1 for t in schedule if t < 0.4)       # first tenth
        peak = sum(1 for t in schedule if 1.8 <= t < 2.2)  # mid tenth
        assert peak > 3 * trough

    def test_zero_depth_is_uniform(self):
        schedule = diurnal_arrivals(9, 1.0, depth=0.0)
        expected = [i / 10 for i in range(1, 10)]
        assert schedule == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(n=0, duration=1.0), dict(n=5, duration=0.0),
         dict(n=5, duration=1.0, depth=1.0),
         dict(n=5, duration=1.0, depth=-0.1),
         dict(n=5, duration=1.0, cycles=0)],
    )
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            diurnal_arrivals(**kwargs)


class TestZipf:
    def test_weights_normalize_and_decrease(self):
        weights = zipf_weights(10, 1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_stream_is_seeded_and_skewed(self):
        pool = list(range(20))
        stream = zipf_stream(pool, 500, 1.2, seed=3)
        assert stream == zipf_stream(pool, 500, 1.2, seed=3)
        # Rank 1 dominates far beyond the uniform share.
        assert stream.count(0) > 3 * (500 // 20)

    def test_weights_reject_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestHarnessArrivals:
    def _mediator(self):
        mediator = Mediator()
        mediator.add_source(make_example41_source("cars"))
        return mediator

    QUERY = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"

    def test_explicit_schedule_runs_and_accounts(self):
        harness = LoadHarness(
            self._mediator(), [self.QUERY], threads=2, mode="open",
            arrivals=[0.0, 0.001, 0.002, 0.05],
        )
        report = harness.run(4)
        assert report.completed + report.shed + report.errors == 4
        assert report.completed == 4

    def test_schedule_must_cover_the_run(self):
        harness = LoadHarness(
            self._mediator(), [self.QUERY], mode="open",
            arrivals=[0.0, 0.01],
        )
        with pytest.raises(ValueError, match="covers 2 requests"):
            harness.run(3)

    def test_rejects_schedule_with_rate(self):
        with pytest.raises(ValueError, match="not both"):
            LoadHarness(self._mediator(), [self.QUERY], mode="open",
                        rate=10.0, arrivals=[0.0])

    def test_rejects_schedule_in_closed_mode(self):
        with pytest.raises(ValueError, match="open-loop"):
            LoadHarness(self._mediator(), [self.QUERY], arrivals=[0.0])

    def test_rejects_unordered_or_empty_schedule(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            LoadHarness(self._mediator(), [self.QUERY], mode="open",
                        arrivals=[0.2, 0.1])
        with pytest.raises(ValueError, match="not be empty"):
            LoadHarness(self._mediator(), [self.QUERY], mode="open",
                        arrivals=[])


class TestZipfTrafficWorkload:
    KNOBS = dict(seed=29, n_requests=150, duration=0.5, pool_size=16,
                 n_rows=80)

    def test_run_is_deterministic(self):
        first = ZipfTrafficWorkload(**self.KNOBS).run()
        second = ZipfTrafficWorkload(**self.KNOBS).run()
        assert first.summary == second.summary

    def test_skew_feeds_the_plan_cache(self):
        summary = ZipfTrafficWorkload(**self.KNOBS).run().summary
        assert summary["ok"] + summary["infeasible"] \
            + summary["errors"] == 150
        assert summary["top_query_share"] > 2 / summary["pool_size"]
        assert summary["hit_rate"] > 0.5
        # The diurnal signature: peak arrivals come faster than trough.
        assert summary["peak_gap_us"] < summary["trough_gap_us"]

    def test_battery_accounts_exactly(self):
        out = ZipfTrafficWorkload(**self.KNOBS).battery()
        assert out["accounting_exact"] is True
        assert out["gated_completed"] + out["gated_shed"] \
            + out["gated_errors"] == 150
