"""Thread-safety regression tests for the shared execution-layer state.

The parallel executor hits one source's meter, one shared result cache
and one fault injector from many worker threads at once.  All three
were plain read-modify-write before PR 2; these tests hammer each from
16 threads and assert that not a single increment is lost and not a
single torn value is observed.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.conditions.parser import parse_condition
from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.plans.cache import ResultCache
from repro.source.faults import FaultInjector, SimulatedLatency
from repro.source.metering import QueryMeter

N_THREADS = 16
N_OPS = 500


def _hammer(worker, n_threads: int = N_THREADS) -> None:
    """Run ``worker(thread_index)`` on N threads, started simultaneously."""
    barrier = threading.Barrier(n_threads)

    def _run(index: int) -> None:
        barrier.wait()
        worker(index)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(_run, i) for i in range(n_threads)]
        for future in futures:
            future.result()


# ----------------------------------------------------------------------
# QueryMeter


def test_meter_increments_are_exact_under_16_threads():
    meter = QueryMeter()

    def worker(_index: int) -> None:
        for _ in range(N_OPS):
            meter.record(result_size=3)
            meter.record_rejection()
            meter.record_failure()
            meter.record_retry()

    _hammer(worker)
    snap = meter.snapshot()
    assert snap.queries == N_THREADS * N_OPS
    assert snap.tuples == 3 * N_THREADS * N_OPS
    assert snap.rejected == N_THREADS * N_OPS
    assert snap.failures == N_THREADS * N_OPS
    assert snap.retries == N_THREADS * N_OPS


def test_meter_snapshots_are_consistent_cuts():
    """queries and tuples move together under the lock: a snapshot taken
    mid-hammer never shows one advanced without the other."""
    meter = QueryMeter()
    stop = threading.Event()
    torn: list = []

    def reader() -> None:
        while not stop.is_set():
            snap = meter.snapshot()
            if snap.tuples != 3 * snap.queries:
                torn.append(snap)
                return

    reader_thread = threading.Thread(target=reader)
    reader_thread.start()
    try:
        _hammer(lambda _i: [meter.record(3) for _ in range(N_OPS)])
    finally:
        stop.set()
        reader_thread.join()
    assert not torn, f"torn snapshot observed: {torn[:1]}"


# ----------------------------------------------------------------------
# ResultCache


def _relation(rows: list[dict]) -> Relation:
    schema = Schema.of("t", [("k", AttrType.INT), ("v", AttrType.STRING)])
    return Relation(schema, rows)


def test_cache_concurrent_put_get_same_key_returns_consistent_copies():
    cache = ResultCache(max_tuples=10_000)
    condition = parse_condition("k = 1")
    attrs = frozenset({"k", "v"})
    # Two candidate values; whatever interleaving happens, a get must
    # return one of them whole, never a mixture or a shared reference.
    payloads = [
        _relation([{"k": i, "v": f"val{i}"} for i in range(10)]),
        _relation([{"k": i, "v": f"VAL{i}"} for i in range(10)]),
    ]
    valid = {p.as_row_set() for p in payloads}
    bad: list = []

    def worker(index: int) -> None:
        mine = payloads[index % 2]
        for _ in range(N_OPS):
            cache.put("s", condition, attrs, mine)
            got = cache.get("s", condition, attrs)
            if got is None:
                continue
            if got.as_row_set() not in valid:
                bad.append(got)
                return
            # The handed-out copy is ours to mutate; doing so must not
            # corrupt what other threads read next.
            got.rows[0]["v"] = "mutated"

    _hammer(worker)
    assert not bad, "cache returned a torn or corrupted relation"
    final = cache.get("s", condition, attrs)
    assert final is not None and final.as_row_set() in valid


def test_cache_lru_accounting_survives_concurrent_eviction():
    """The tuple budget stays exact when 16 threads force evictions."""
    cache = ResultCache(max_tuples=50)
    attrs = frozenset({"k", "v"})
    payload = _relation([{"k": i, "v": "x"} for i in range(10)])

    def worker(index: int) -> None:
        for op in range(N_OPS // 5):
            condition = parse_condition(f"k = {index * 1000 + op}")
            cache.put("s", condition, attrs, payload)
            cache.get("s", condition, attrs)

    _hammer(worker)
    assert cache.cached_tuples <= cache.max_tuples
    assert cache.cached_tuples == sum(
        len(cache._entries[key]) for key in cache._entries
    )
    assert cache.stats.evictions > 0


# ----------------------------------------------------------------------
# FaultInjector / SimulatedLatency


def test_fault_injector_draws_exactly_once_per_call_under_threads():
    injector = FaultInjector(seed=42, transient_rate=0.5)
    faults: list = []

    def worker(_index: int) -> None:
        mine = 0
        for _ in range(N_OPS):
            if injector.draw("s") is not None:
                mine += 1
        faults.append(mine)

    _hammer(worker)
    total_calls = N_THREADS * N_OPS
    # Counters are exact: every injected fault was returned to somebody.
    assert injector.total_injected == sum(faults)
    # The seeded sequence was consumed once per call: the fault fraction
    # matches the configured rate (law of large numbers at 8000 draws).
    assert abs(sum(faults) / total_calls - 0.5) < 0.05


def test_simulated_latency_accounting_is_exact_under_threads():
    latency = SimulatedLatency(seed=7, base=0.0, jitter=0.001,
                               real_sleep=False)

    def worker(_index: int) -> None:
        for _ in range(N_OPS):
            latency.apply()

    _hammer(worker)
    assert latency.calls == N_THREADS * N_OPS
    # All draws came from the seeded sequence, none lost or duplicated:
    # replaying the RNG serially reproduces the accumulated total.
    import random
    rng = random.Random(7)
    expected = sum(rng.random() * 0.001 for _ in range(latency.calls))
    assert abs(latency.slept_seconds - expected) < 1e-9
