"""The :class:`SamplingTracer`: decisions, bounds and exact accounting.

The production tracer must (a) make the head decision deterministically
per trace id, (b) keep error and slow traces the head decision would
drop, (c) never hold more than ``capacity`` spans, and (d) account for
every span exactly once -- the concurrency battery here reconciles
``spans_kept + spans_dropped`` against a thread storm's ground truth.
"""

from __future__ import annotations

import threading

import pytest

from repro.observability import SamplingTracer


def _run_trace(tracer, fail=False, children=2):
    """One root span with ``children`` child spans; returns the trace id."""
    with tracer.span("root") as root:
        for index in range(children):
            if fail and index == 0:
                with pytest.raises(RuntimeError):
                    with tracer.span("child"):
                        raise RuntimeError("boom")
            else:
                with tracer.span("child"):
                    pass
    return root.trace_id


class TestConstruction:
    def test_rejects_out_of_range_parameters(self):
        with pytest.raises(ValueError):
            SamplingTracer(ratio=1.5)
        with pytest.raises(ValueError):
            SamplingTracer(ratio=-0.1)
        with pytest.raises(ValueError):
            SamplingTracer(capacity=0)
        with pytest.raises(ValueError):
            SamplingTracer(max_pending_traces=0)


class TestHeadDecision:
    def test_deterministic_per_trace_and_seed(self):
        tracer = SamplingTracer(ratio=0.5, seed=7)
        decisions = [tracer.head_decision(i) for i in range(64)]
        again = [tracer.head_decision(i) for i in range(64)]
        assert decisions == again
        assert any(decisions) and not all(decisions)

    def test_different_seeds_sample_different_traces(self):
        a = SamplingTracer(ratio=0.5, seed=1)
        b = SamplingTracer(ratio=0.5, seed=2)
        assert ([a.head_decision(i) for i in range(128)]
                != [b.head_decision(i) for i in range(128)])

    def test_ratio_extremes_shortcut(self):
        assert SamplingTracer(ratio=1.0).head_decision(123)
        assert not SamplingTracer(ratio=0.0).head_decision(123)

    def test_ratio_converges_on_the_coin_flip(self):
        tracer = SamplingTracer(ratio=0.25)
        kept = sum(tracer.head_decision(i) for i in range(2000))
        assert 0.15 < kept / 2000 < 0.35


class TestTailRules:
    def test_error_trace_is_kept_at_ratio_zero(self):
        tracer = SamplingTracer(ratio=0.0)
        _run_trace(tracer, fail=True)
        assert tracer.traces_kept == 1
        assert any(s.status == "ERROR" for s in tracer.finished_spans())

    def test_slow_root_is_kept_at_ratio_zero(self):
        tracer = SamplingTracer(ratio=0.0, slow_threshold=0.0)
        _run_trace(tracer)  # any duration >= 0.0 counts as slow
        assert tracer.traces_kept == 1
        assert tracer.spans_kept == 3

    def test_fast_clean_trace_is_dropped_at_ratio_zero(self):
        tracer = SamplingTracer(ratio=0.0, slow_threshold=10.0)
        _run_trace(tracer)
        assert tracer.traces_kept == 0
        assert tracer.traces_dropped == 1
        assert tracer.spans_dropped == 3
        assert tracer.finished_spans() == []


class TestRingBuffer:
    def test_overflow_evicts_oldest_and_counts(self):
        tracer = SamplingTracer(ratio=1.0, capacity=4)
        for _ in range(3):
            _run_trace(tracer, children=1)  # 2 spans per trace
        assert tracer.spans_kept == 6
        assert tracer.spans_evicted == 2
        spans = tracer.finished_spans()
        assert len(spans) == 4
        # Oldest-first eviction: the first trace's spans are gone.
        assert len({s.trace_id for s in spans}) == 2

    def test_pending_table_is_bounded(self):
        tracer = SamplingTracer(ratio=1.0, max_pending_traces=2)
        stuck = []  # keep the open root contexts alive
        for _ in range(5):
            # A trace whose root never finishes: enter the root span but
            # never exit it, finish one child, then detach the context
            # so the next iteration starts a fresh trace.
            with tracer.attach(None):
                context = tracer.span("stuck-root")
                context.__enter__()
                stuck.append(context)
                with tracer.span("child"):
                    pass
        stats = tracer.stats()
        assert stats["pending_traces"] <= tracer.max_pending_traces
        assert tracer.traces_dropped == 3
        assert tracer.spans_dropped == 3

    def test_trace_spans_reads_pending_and_ring(self):
        tracer = SamplingTracer(ratio=1.0)
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
            assert [s.name for s in tracer.trace_spans(root.trace_id)] == [
                "child"
            ]
        names = [s.name for s in tracer.trace_spans(root.trace_id)]
        assert sorted(names) == ["child", "root"]

    def test_reset_zeroes_accounting_and_ring(self):
        tracer = SamplingTracer(ratio=1.0)
        _run_trace(tracer)
        tracer.reset()
        assert tracer.finished_spans() == []
        stats = tracer.stats()
        assert stats["traces_kept"] == stats["spans_kept"] == 0
        assert stats["ring_size"] == stats["pending_traces"] == 0


class TestExporters:
    def test_exporters_see_kept_spans_only(self):
        tracer = SamplingTracer(ratio=0.0, slow_threshold=10.0)
        seen = []
        tracer.add_exporter(seen.append)
        _run_trace(tracer)                  # dropped: fast and clean
        assert seen == []
        _run_trace(tracer, fail=True)       # kept: error tail rule
        assert len(seen) == 3
        assert {s.name for s in seen} == {"root", "child"}


class TestConcurrencyBattery:
    THREADS = 8
    TRACES_PER_THREAD = 40
    CHILDREN = 3

    def test_every_span_is_accounted_exactly_once(self):
        tracer = SamplingTracer(ratio=0.5, capacity=64, seed=3)
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def storm(worker: int) -> None:
            try:
                barrier.wait()
                for index in range(self.TRACES_PER_THREAD):
                    # A sprinkling of error traces exercises tail keeps.
                    fail = (worker + index) % 11 == 0
                    _run_trace(tracer, fail=fail, children=self.CHILDREN)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=storm, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        stats = tracer.stats()
        total_traces = self.THREADS * self.TRACES_PER_THREAD
        total_spans = total_traces * (1 + self.CHILDREN)
        assert stats["traces_kept"] + stats["traces_dropped"] == total_traces
        assert stats["spans_kept"] + stats["spans_dropped"] == total_spans
        assert stats["pending_traces"] == 0
        assert stats["ring_size"] <= tracer.capacity
        assert stats["ring_size"] == min(
            tracer.capacity, stats["spans_kept"]
        )
        assert stats["spans_evicted"] == max(
            0, stats["spans_kept"] - tracer.capacity
        )
        # Error traces are always kept, whatever the head coin said.
        assert stats["traces_kept"] >= total_traces // 11

    def test_format_stats_reports_the_reconciliation(self):
        tracer = SamplingTracer(ratio=1.0, slow_threshold=0.25)
        _run_trace(tracer)
        line = tracer.format_stats()
        assert "ratio=1" in line
        assert "slow>250ms" in line
        assert "1 traces kept" in line
        assert "ring 3/2048" in line
