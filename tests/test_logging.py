"""Tests for the debug-logging instrumentation."""

import logging

from repro.mediator import Mediator
from repro.planners.genmodular import GenModular
from tests.conftest import make_example41_source


class TestPlannerLogging:
    def test_gencompact_logs_summary(self, caplog):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        with caplog.at_level(logging.DEBUG, logger="repro.planners.gencompact"):
            mediator.plan(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
            )
        assert any("GenCompact planned" in r.message for r in caplog.records)

    def test_genmodular_logs_summary(self, caplog):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        with caplog.at_level(logging.DEBUG, logger="repro.planners.genmodular"):
            mediator.plan(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000",
                GenModular(max_rewrites=10),
            )
        assert any("GenModular planned" in r.message for r in caplog.records)


class TestExecutorLogging:
    def test_source_answers_logged(self, caplog):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        with caplog.at_level(logging.DEBUG, logger="repro.plans.execute"):
            mediator.ask(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
            )
        assert any("answered SP(" in r.message for r in caplog.records)

    def test_fixing_logged_when_order_changes(self, caplog):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        with caplog.at_level(logging.DEBUG, logger="repro.plans.execute"):
            mediator.ask(
                "SELECT model FROM cars WHERE price < 40000 and make = 'BMW'"
            )
        assert any("fixed query order" in r.message for r in caplog.records)

    def test_silent_by_default(self, caplog):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        with caplog.at_level(logging.INFO):
            mediator.ask(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
            )
        assert not [r for r in caplog.records if r.name.startswith("repro")]
