"""Tests for the structured-event instrumentation (and its log bridge).

Historically these tests pinned exact debug-message prefixes, which
made every wording tweak a test failure.  The instrumentation now
flows through :func:`repro.observability.trace_event`: the same
human-readable messages still reach the stdlib ``logging`` hierarchy
(one backward-compatibility test keeps that true), but assertions are
on the **structured** form -- span-event names and attributes.
"""

import logging

from repro.mediator import Mediator
from repro.observability import Tracer, use_tracer
from repro.planners.genmodular import GenModular
from tests.conftest import make_example41_source


def _events(tracer, name):
    return [
        event
        for span in tracer.finished_spans()
        for event in span.events
        if event.name == name
    ]


def _traced_mediator():
    mediator = Mediator()
    mediator.add_source(make_example41_source())
    return mediator


class TestPlannerEvents:
    def test_gencompact_emits_planned_event(self):
        mediator = _traced_mediator()
        with use_tracer(Tracer()) as tracer:
            mediator.plan(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
            )
        (event,) = _events(tracer, "planner.planned")
        assert event.attributes["planner"] == "GenCompact"
        assert event.attributes["feasible"] is True
        assert event.attributes["cts_processed"] >= 1
        assert event.attributes["check_calls"] >= 1
        assert event.attributes["cost"] > 0

    def test_genmodular_emits_planned_event(self):
        mediator = _traced_mediator()
        with use_tracer(Tracer()) as tracer:
            mediator.plan(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000",
                GenModular(max_rewrites=10),
            )
        (event,) = _events(tracer, "planner.planned")
        assert event.attributes["planner"] == "GenModular"
        assert event.attributes["feasible"] is True


class TestExecutorEvents:
    def test_source_answer_event_carries_rows(self):
        mediator = _traced_mediator()
        with use_tracer(Tracer()) as tracer:
            answer = mediator.ask(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
            )
        (event,) = _events(tracer, "source.answered")
        assert event.attributes["source"] == "cars"
        assert event.attributes["rows"] == len(answer.rows)

    def test_fixing_event_when_order_changes(self):
        mediator = _traced_mediator()
        with use_tracer(Tracer()) as tracer:
            mediator.ask(
                "SELECT model FROM cars WHERE price < 40000 and make = 'BMW'"
            )
        (event,) = _events(tracer, "query.fixed")
        assert event.attributes["source"] == "cars"
        # The fix reorders the planned condition into native form.
        assert event.attributes["planned"] != event.attributes["fixed"]
        assert "make = 'BMW'" in event.attributes["fixed"]


class TestLoggingBridge:
    """The tracer's event API keeps classic log lines flowing."""

    def test_legacy_messages_still_logged(self, caplog):
        # Backward compatibility: the pre-tracing debug messages are
        # unchanged, so existing log scrapers keep working.
        mediator = _traced_mediator()
        with caplog.at_level(logging.DEBUG, logger="repro"):
            mediator.ask(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
            )
        messages = [r.message for r in caplog.records]
        assert any("GenCompact planned" in m for m in messages)
        assert any("answered SP(" in m for m in messages)

    def test_loggers_live_under_the_repro_hierarchy(self, caplog):
        mediator = _traced_mediator()
        with caplog.at_level(logging.DEBUG, logger="repro"):
            mediator.ask(
                "SELECT model FROM cars WHERE price < 40000 and make = 'BMW'"
            )
        assert caplog.records
        assert all(r.name.startswith("repro.") for r in caplog.records)

    def test_silent_by_default(self, caplog):
        mediator = _traced_mediator()
        with caplog.at_level(logging.INFO):
            mediator.ask(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
            )
        assert not [r for r in caplog.records if r.name.startswith("repro")]

    def test_events_skipped_without_a_tracer(self, caplog):
        # The default NullTracer drops events; only the log lines remain.
        mediator = _traced_mediator()
        with caplog.at_level(logging.DEBUG, logger="repro"):
            mediator.ask(
                "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
            )
        assert any("answered SP(" in r.message for r in caplog.records)
