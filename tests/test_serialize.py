"""Unit + property tests for plan/condition serialization."""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.conditions.atoms import Atom, Op
from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE, And, Leaf, Or
from repro.errors import ConditionError, PlanExecutionError
from repro.plans.nodes import (
    IntersectPlan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    make_choice,
)
from repro.plans.serialize import (
    condition_from_dict,
    condition_to_dict,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    query_from_dict,
    query_to_dict,
)
from repro.query import TargetQuery

A = frozenset({"model", "year"})


def sq(text, attrs=A):
    return SourceQuery(parse_condition(text), frozenset(attrs), "cars")


class TestConditionRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "make = 'BMW'",
            "price <= 40000",
            "title contains 'dreams'",
            "size in ('compact', 'midsize')",
            "a = 1 and (b = 2 or c = 3)",
            "flag = true",
        ],
    )
    def test_round_trip(self, text):
        tree = parse_condition(text)
        assert condition_from_dict(condition_to_dict(tree)) == tree

    def test_true(self):
        assert condition_from_dict(condition_to_dict(TRUE)) is TRUE

    def test_json_safe(self):
        tree = parse_condition("size in ('a', 'b') and p <= 2.5")
        json.dumps(condition_to_dict(tree))  # must not raise

    @pytest.mark.parametrize(
        "bad",
        [
            {},
            {"kind": "nope"},
            {"kind": "atom", "attribute": "a"},
            {"kind": "and", "children": [{"kind": "true"}]},
            "not a dict",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConditionError):
            condition_from_dict(bad)


class TestQueryRoundTrip:
    def test_round_trip(self):
        query = TargetQuery(
            parse_condition("make = 'BMW' and price < 1"),
            frozenset({"model"}),
            "cars",
        )
        assert query_from_dict(query_to_dict(query)) == query

    def test_missing_field(self):
        with pytest.raises(ConditionError):
            query_from_dict({"condition": {"kind": "true"}})


class TestPlanRoundTrip:
    def test_source_query(self):
        plan = sq("make = 'BMW' and price < 40000")
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_nested_plan(self):
        inner = sq("make = 'BMW' and price < 40000", attrs=A | {"color"})
        plan = Postprocess(parse_condition("color = 'red'"), A, inner)
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_union_intersect_choice(self):
        u = UnionPlan([sq("a = 1"), sq("a = 2")])
        i = IntersectPlan([sq("a = 1"), sq("a = 2")])
        c = make_choice([u, i])
        for plan in (u, i, c):
            assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_none_round_trip(self):
        assert plan_from_dict(plan_to_dict(None)) is None

    def test_json_round_trip(self):
        plan = UnionPlan([sq("a = 1"), sq("a = 2")])
        assert plan_from_json(plan_to_json(plan, indent=2)) == plan

    def test_version_checked(self):
        with pytest.raises(PlanExecutionError):
            plan_from_json('{"v": 99, "plan": {"node": "empty"}}')

    def test_invalid_json(self):
        with pytest.raises(PlanExecutionError):
            plan_from_json("{nope")

    @pytest.mark.parametrize(
        "bad",
        [
            {},
            {"node": "warp"},
            {"node": "source_query", "condition": {"kind": "true"}},
            {"node": "union", "children": [{"node": "empty"}, {"node": "empty"}]},
            {"node": "postprocess", "condition": {"kind": "true"},
             "attributes": [], "input": {"node": "empty"}},
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(PlanExecutionError):
            plan_from_dict(bad)

    def test_round_tripped_plan_executes(self):
        from repro.plans.execute import Executor
        from tests.conftest import make_example41_source

        source = make_example41_source()
        plan = sq("make = 'BMW' and price < 40000", attrs={"model"})
        revived = plan_from_json(plan_to_json(plan))
        executor = Executor({"cars": source})
        assert executor.execute(revived).as_row_set() == {("328i",), ("318i",)}


# ----------------------------------------------------------------------
# Property: arbitrary condition trees survive the round trip.
# ----------------------------------------------------------------------

_atoms = st.builds(
    Atom,
    st.sampled_from(["a", "b", "c"]),
    st.sampled_from([Op.EQ, Op.NE, Op.LE, Op.GE, Op.CONTAINS, Op.IN]),
    st.sampled_from([1, 2.5, "x", True]),
).filter(lambda _: True)


def _valid_atoms():
    def build(attr, op, value):
        if op is Op.IN:
            value = (value,)
        if op is Op.CONTAINS:
            value = "needle"
        if op in (Op.LE, Op.GE) and isinstance(value, bool):
            value = 1
        return Atom(attr, op, value)

    return st.builds(
        build,
        st.sampled_from(["a", "b", "c"]),
        st.sampled_from([Op.EQ, Op.NE, Op.LE, Op.GE, Op.CONTAINS, Op.IN]),
        st.sampled_from([1, 2.5, "x"]),
    )


_trees = st.recursive(
    st.builds(Leaf, _valid_atoms()),
    lambda children: st.one_of(
        st.builds(And, st.lists(children, min_size=2, max_size=3)),
        st.builds(Or, st.lists(children, min_size=2, max_size=3)),
    ),
    max_leaves=8,
)


@given(_trees)
@settings(max_examples=120, deadline=None)
def test_condition_round_trip_property(tree):
    payload = json.dumps(condition_to_dict(tree))
    assert condition_from_dict(json.loads(payload)) == tree
