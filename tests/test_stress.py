"""Stress tests: the library must stay tractable at awkward sizes.

These are guardrails, not micro-benchmarks: each case has a generous
wall-clock budget and asserts completion + sane results, so a
complexity regression (e.g. an accidental exponential path on flat
inputs) fails loudly.
"""

import time


from repro.conditions.canonical import canonicalize
from repro.conditions.parser import parse_condition
from repro.conditions.tree import And, Or, leaf
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.query import TargetQuery
from repro.ssdl.commute import commutation_closure
from repro.ssdl.text import parse_ssdl
from repro.workloads.synthetic import WorldConfig, make_queries, make_source


def timed(budget_sec):
    """Context manager asserting the block finishes within the budget."""
    class _Timer:
        def __enter__(self):
            self.start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            elapsed = time.perf_counter() - self.start
            assert elapsed < budget_sec, (
                f"took {elapsed:.1f}s, budget {budget_sec}s"
            )
            return False

    return _Timer()


class TestConditionScale:
    def test_wide_flat_conjunction(self):
        atoms = [leaf(f"a{i}", "=", i) for i in range(200)]
        tree = And(atoms)
        with timed(2.0):
            assert canonicalize(tree) == tree
            assert tree.size() == 201
            assert len(tree.attributes()) == 200

    def test_deep_alternation(self):
        tree = leaf("a0", "=", 0)
        for i in range(1, 60):
            cls = And if i % 2 else Or
            tree = cls([tree, leaf(f"a{i}", "=", i)])
        with timed(2.0):
            flat = canonicalize(tree)
            assert flat.atoms() == tree.atoms()

    def test_parser_long_input(self):
        text = " and ".join(f"a{i} = {i}" for i in range(300))
        with timed(2.0):
            tree = parse_condition(text)
            assert len(tree.children) == 300


class TestGrammarScale:
    def test_many_alternatives(self):
        rules = " | ".join(f"f{i} = $num" for i in range(120))
        desc = parse_ssdl(
            f"s -> big\nbig -> {rules}\nattributes big : "
            + ", ".join(f"f{i}" for i in range(120))
        )
        with timed(3.0):
            for i in (0, 57, 119):
                assert desc.check(parse_condition(f"f{i} = 1"))
            assert not desc.check(parse_condition("g = 1"))

    def test_commutation_closure_of_wide_rule_is_guarded(self):
        wide = " and ".join(f"x{i} = $num" for i in range(10))
        desc = parse_ssdl(
            f"s -> r\nr -> {wide}\nattributes r : "
            + ", ".join(f"x{i}" for i in range(10))
        )
        with timed(3.0):
            closed = commutation_closure(desc, max_segments=5)
            # Guarded: the 10-segment rule is not permuted (10! rules
            # would be absurd), so the closure stays small.
            assert closed.rule_count() == desc.rule_count()

    def test_deep_disjunction_list_parse(self):
        desc = parse_ssdl(
            """
            s -> f
            f -> ( l )
            l -> v = $num or v = $num | v = $num or l
            attributes f : v
            """
        )
        many = " or ".join(f"v = {i}" for i in range(80))
        with timed(3.0):
            assert desc.check(parse_condition(many))


class TestPlanningScale:
    def test_batch_planning_budget(self):
        config = WorldConfig(n_attributes=6, n_rows=3000, richness=0.6,
                             seed=2001)
        source = make_source(config)
        model = CostModel({source.name: source.stats})
        queries = make_queries(config, source, 20, 6, seed=9)
        planner = GenCompact()
        with timed(30.0):
            results = [planner.plan(q, source, model) for q in queries]
        assert len(results) == 20

    def test_ipg_wide_conjunction_within_fanout(self):
        # 10 conjuncts = 1023 child subsets per node; must stay quick.
        config = WorldConfig(n_attributes=6, n_rows=1000, richness=0.8,
                             download_prob=1.0, seed=2002)
        source = make_source(config)
        model = CostModel({source.name: source.stats})
        queries = make_queries(config, source, 2, 10, seed=10, or_prob=0.0)
        planner = GenCompact(max_rewrites=5)
        with timed(30.0):
            for query in queries:
                result = planner.plan(query, source, model)
                assert result.feasible  # download rule guarantees a plan
