"""Unit tests for mirrors and partitioned sources."""

import pytest

from repro.conditions.parser import parse_condition
from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.errors import (
    InfeasiblePlanError,
    SchemaError,
    TransientSourceError,
)
from repro.multisource import (
    MirrorGroup,
    PartialAnswer,
    PartitionedSource,
    merge_stats,
)
from repro.plans.cache import ResultCache
from repro.plans.retry import RetryPolicy
from repro.source.faults import FaultInjector
from repro.query import TargetQuery
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder

SCHEMA = Schema.of(
    "cars",
    [("id", AttrType.INT), ("make", AttrType.STRING),
     ("price", AttrType.INT)],
    key="id",
)

ROWS = [
    {"id": 0, "make": "BMW", "price": 30000},
    {"id": 1, "make": "BMW", "price": 50000},
    {"id": 2, "make": "Toyota", "price": 15000},
    {"id": 3, "make": "Toyota", "price": 22000},
    {"id": 4, "make": "Honda", "price": 18000},
    {"id": 5, "make": "Honda", "price": 12000},
]


def rich_source(name="rich", rows=None):
    """Supports make+price conjunctions."""
    desc = (
        DescriptionBuilder(name)
        .rule("mp", "make = $str and price <= $num | make = $str",
              attributes=["id", "make", "price"])
        .build()
    )
    return CapabilitySource(name, Relation(SCHEMA, rows or ROWS), desc)


def poor_source(name="poor", rows=None):
    """Only whole downloads."""
    desc = (
        DescriptionBuilder(name)
        .rule("dl", "true", attributes=["id", "make", "price"])
        .build()
    )
    return CapabilitySource(name, Relation(SCHEMA, rows or ROWS), desc)


def q(text, attrs=("id",)):
    return TargetQuery(parse_condition(text), frozenset(attrs), "logical")


class TestMirrorGroup:
    def test_requires_two_distinct_sources(self):
        with pytest.raises(SchemaError):
            MirrorGroup([rich_source()])
        with pytest.raises(SchemaError):
            MirrorGroup([rich_source("x"), rich_source("x")])

    def test_requires_shared_attributes(self):
        other_schema = Schema.of("other", [("id", AttrType.INT)], key="id")
        other = CapabilitySource(
            "other",
            Relation(other_schema, [{"id": 1}]),
            DescriptionBuilder("o").rule("dl", "true", attributes=["id"]).build(),
        )
        with pytest.raises(SchemaError):
            MirrorGroup([rich_source(), other])

    def test_picks_cheaper_mirror(self):
        group = MirrorGroup([rich_source(), poor_source()])
        choice = group.plan(q("make = 'BMW' and price <= 40000"))
        assert choice.feasible
        # The rich mirror answers with a filtered query; the poor one
        # must download everything -- rich wins.
        assert choice.chosen.query.source == "rich"
        assert len(choice.per_source) == 2
        assert choice.per_source["poor"].feasible  # download plan exists

    def test_capability_based_failover(self):
        # A query the rich form cannot express (no price-only rule) falls
        # over to the download mirror.
        group = MirrorGroup([rich_source(), poor_source()])
        choice = group.plan(q("price <= 16000"))
        assert choice.feasible
        assert choice.chosen.query.source == "poor"

    def test_infeasible_everywhere(self):
        group = MirrorGroup([rich_source("r1"), rich_source("r2")])
        choice = group.plan(q("price <= 16000"))
        assert not choice.feasible
        assert choice.chosen is None

    def test_per_source_cost_constants_steer_choice(self):
        # Same capabilities, but mirror two is 100x more expensive per
        # tuple: mirror one must win.
        group = MirrorGroup(
            [rich_source("m1"), rich_source("m2")],
            per_source_constants={"m2": (100.0, 100.0)},
        )
        choice = group.plan(q("make = 'BMW' and price <= 40000"))
        assert choice.chosen.query.source == "m1"

    def test_merge_stats(self):
        group = MirrorGroup([rich_source(), poor_source()])
        choice = group.plan(q("make = 'BMW' and price <= 40000"))
        merged = merge_stats(choice.per_source)
        assert merged.check_calls > 0


class TestPartitionedSource:
    def partitions(self):
        west = [r for r in ROWS if r["id"] % 2 == 0]
        east = [r for r in ROWS if r["id"] % 2 == 1]
        return rich_source("west", west), rich_source("east", east)

    def test_union_over_partitions(self):
        west, east = self.partitions()
        partitioned = PartitionedSource([west, east])
        outcome = partitioned.plan(q("make = 'Toyota' and price <= 30000"))
        assert outcome.feasible
        report = partitioned.ask(q("make = 'Toyota' and price <= 30000"))
        assert report.result.as_row_set() == {(2,), (3,)}
        assert report.queries == 2  # one per partition

    def test_cost_is_sum_of_partitions(self):
        west, east = self.partitions()
        partitioned = PartitionedSource([west, east])
        outcome = partitioned.plan(q("make = 'Honda' and price <= 30000"))
        parts = [r.cost for r in outcome.per_source.values()]
        assert outcome.cost == pytest.approx(sum(parts))

    def test_unplannable_partition_sinks_query(self):
        west, __ = self.partitions()
        east_poor = poor_source("east_poor", [r for r in ROWS if r["id"] % 2])
        # poor partition can still download, so use a partition with a
        # form that cannot express the query AND no download:
        east_limited = rich_source("east_limited", [r for r in ROWS if r["id"] % 2])
        partitioned = PartitionedSource([west, east_limited])
        outcome = partitioned.plan(q("price <= 16000"))
        assert not outcome.feasible
        assert "east_limited" in outcome.infeasible_partitions
        with pytest.raises(InfeasiblePlanError):
            partitioned.ask(q("price <= 16000"))
        del east_poor

    def test_mixed_capability_partitions_work(self):
        west, __ = self.partitions()
        east_poor = poor_source("east_poor", [r for r in ROWS if r["id"] % 2])
        partitioned = PartitionedSource([west, east_poor])
        report = partitioned.ask(q("make = 'BMW' and price <= 60000"))
        assert report.result.as_row_set() == {(0,), (1,)}


class TestMirrorExecutionFailover:
    def test_dead_mirror_fails_over_mid_execution(self):
        rich, poor = rich_source(), poor_source()
        rich.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        group = MirrorGroup([rich, poor],
                            retry_policy=RetryPolicy(max_attempts=2))
        # Planning picks the (cheaper) rich mirror; execution finds it
        # dead and re-plans the query against the surviving mirror.
        report = group.ask(q("make = 'BMW' and price <= 40000"))
        assert report.result.as_row_set() == {(0,)}
        assert report.failovers == 1
        assert report.retries == 1
        assert rich.meter.failures == 2
        assert poor.meter.queries == 1

    def test_all_mirrors_dead_raises(self):
        r1, r2 = rich_source("r1"), rich_source("r2")
        r1.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        r2.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        group = MirrorGroup([r1, r2])
        with pytest.raises(TransientSourceError):
            group.ask(q("make = 'BMW' and price <= 40000"))

    def test_shared_cache_across_asks(self):
        cache = ResultCache(10_000)
        group = MirrorGroup([rich_source(), poor_source()], cache=cache)
        query = q("make = 'BMW' and price <= 40000")
        first = group.ask(query)
        assert first.queries == 1
        second = group.ask(query)
        assert second.queries == 0  # served by the group's shared cache
        assert second.result.as_row_set() == first.result.as_row_set()
        assert cache.stats.hits >= 1

    def test_group_reuses_one_executor(self):
        group = MirrorGroup([rich_source(), poor_source()])
        assert group._executor is group._executor  # stable handle
        executor = group._executor
        group.ask(q("make = 'BMW' and price <= 40000"))
        assert group._executor is executor


class TestPartialPartitions:
    def partitions(self):
        west = [r for r in ROWS if r["id"] % 2 == 0]
        east = [r for r in ROWS if r["id"] % 2 == 1]
        return rich_source("west", west), rich_source("east", east)

    def test_complete_when_all_partitions_answer(self):
        west, east = self.partitions()
        partitioned = PartitionedSource([west, east])
        answer = partitioned.ask(
            q("make = 'Toyota' and price <= 30000"), partial=True
        )
        assert isinstance(answer, PartialAnswer)
        assert answer.complete
        assert answer.missing_partitions == []
        assert answer.result.as_row_set() == {(2,), (3,)}
        assert answer.report.queries == 2

    def test_down_partition_yields_flagged_partial_result(self):
        west, east = self.partitions()
        east.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        partitioned = PartitionedSource([west, east])
        answer = partitioned.ask(
            q("make = 'Toyota' and price <= 30000"), partial=True
        )
        assert not answer.complete
        assert answer.missing_partitions == ["east"]
        assert answer.result.as_row_set() == {(2,)}  # west's Toyota only

    def test_unplannable_partition_skipped_in_partial_mode(self):
        west, __ = self.partitions()
        east_limited = rich_source(
            "east_limited", [r for r in ROWS if r["id"] % 2]
        )
        partitioned = PartitionedSource([west, east_limited])
        # price-only: the rich form cannot express it, west can't either
        # -- but 'true' downloads are not in the rich grammar, so use a
        # make query only west's slice can satisfy after the east form
        # fails to plan the price-only condition.
        answer = partitioned.ask(q("make = 'Honda'"), partial=True)
        assert answer.complete  # make-only is plannable on both
        east_limited.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        flagged = partitioned.ask(q("make = 'Honda'"), partial=True)
        assert not flagged.complete
        assert flagged.missing_partitions == ["east_limited"]

    def test_every_partition_down_still_raises(self):
        west, east = self.partitions()
        west.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        east.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        partitioned = PartitionedSource([west, east])
        with pytest.raises(InfeasiblePlanError):
            partitioned.ask(q("make = 'Toyota' and price <= 30000"),
                            partial=True)

    def test_default_mode_still_all_or_nothing(self):
        west, east = self.partitions()
        east.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        partitioned = PartitionedSource([west, east])
        with pytest.raises(TransientSourceError):
            partitioned.ask(q("make = 'Toyota' and price <= 30000"))
