"""Golden battery: a fixed query corpus over the standard catalog.

Every feasible (planner, query) pair must return exactly the reference
answer, and all feasible planners must return the *same* answer set --
the strongest cross-check the library offers, run over hand-picked
queries that exercise each source's quirks.
"""

import pytest

from repro.conditions.parser import parse_condition
from repro.planners.baselines import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    NaivePlanner,
)
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.plans.cost import CostModel
from repro.plans.execute import Executor, reference_answer
from repro.query import TargetQuery
from repro.source.library import standard_catalog

#: (source, projection, condition) -- the corpus.
CORPUS = [
    ("bookstore", ("id", "title"),
     "author = 'Carl Jung'"),
    ("bookstore", ("id", "title", "price"),
     "author = 'Carl Jung' and title contains 'memory'"),
    ("bookstore", ("id", "author"),
     "(author = 'Sigmund Freud' or author = 'Anna Freud') "
     "and title contains 'childhood'"),
    ("bookstore", ("id", "title"),
     "subject = 'philosophy' and title contains 'will'"),
    ("car_guide", ("id", "model"),
     "make = 'BMW'"),
    ("car_guide", ("id", "model", "price"),
     "price <= 12000 and make = 'Ford'"),   # reversed slot order
    ("car_guide", ("id", "make"),
     "style = 'wagon' and (size = 'compact' or size = 'fullsize')"),
    ("car_guide", ("id", "model"),
     "(make = 'Honda' and price <= 16000) or "
     "(make = 'Toyota' and price <= 14000)"),
    ("bank", ("account_no", "owner"),
     "branch = 'airport' and type = 'savings'"),
    ("flights", ("id", "airline", "price"),
     "origin = 'SEA' and destination = 'MIA' and price <= 700"),
    ("classifieds", ("id", "make", "price"),
     "make = 'Toyota'"),
    ("classifieds", ("id", "price"),
     "price <= 15000 and color = 'red'"),   # only via download
]

PLANNERS = [
    GenCompact(),
    GenModular(max_rewrites=40),
    CNFPlanner(),
    DNFPlanner(),
    DiscoPlanner(),
    NaivePlanner(),
]


@pytest.fixture(scope="module")
def catalog():
    return standard_catalog(seed=1999)


@pytest.fixture(scope="module")
def cost_model(catalog):
    return CostModel({name: s.stats for name, s in catalog.items()})


@pytest.mark.parametrize("source_name,attrs,text", CORPUS)
def test_all_feasible_planners_agree_with_ground_truth(
    catalog, cost_model, source_name, attrs, text
):
    source = catalog[source_name]
    query = TargetQuery(parse_condition(text), frozenset(attrs), source_name)
    expected = reference_answer(
        source, query.condition, query.attributes
    ).as_row_set()
    executor = Executor(catalog)

    feasible_count = 0
    for planner in PLANNERS:
        result = planner.plan(query, source, cost_model)
        if not result.feasible:
            continue
        feasible_count += 1
        answer = executor.execute(result.plan)
        assert answer.as_row_set() == expected, (
            f"{planner.name} answered {text!r} wrongly"
        )
    # GenCompact must always be among the feasible planners on this corpus.
    gencompact = PLANNERS[0].plan(query, source, cost_model)
    assert gencompact.feasible, f"GenCompact cannot plan {text!r}"
    assert feasible_count >= 1


@pytest.mark.parametrize("source_name,attrs,text", CORPUS)
def test_gencompact_is_cheapest_on_corpus(
    catalog, cost_model, source_name, attrs, text
):
    source = catalog[source_name]
    query = TargetQuery(parse_condition(text), frozenset(attrs), source_name)
    gencompact = PLANNERS[0].plan(query, source, cost_model)
    for planner in PLANNERS[1:]:
        result = planner.plan(query, source, cost_model)
        if result.feasible:
            assert gencompact.cost <= result.cost + 1e-6, planner.name
