"""Unit tests for the rewrite rules and the bounded rewrite engine."""


from repro.conditions.parser import parse_condition
from repro.conditions.rewrite import (
    GENCOMPACT_RULES,
    GENMODULAR_RULES,
    RewriteEngine,
    associative_rule,
    commutative_rule,
    copy_rule,
    distributive_rule,
    enumerate_orderings,
    factoring_rule,
)
from repro.conditions.semantics import logically_equivalent


def results_of(rule, text):
    tree = parse_condition(text)
    produced = list(rule(tree))
    for out in produced:
        assert logically_equivalent(tree, out), f"{rule.__name__} broke {out}"
    return tree, produced


class TestCommutative:
    def test_swaps_children(self):
        tree, produced = results_of(commutative_rule, "a = 1 and b = 2")
        assert parse_condition("b = 2 and a = 1") in produced

    def test_counts_pairs(self):
        __, produced = results_of(commutative_rule, "a = 1 and b = 2 and c = 3")
        assert len(produced) == 3  # 3 choose 2 swaps at the root

    def test_applies_at_nested_positions(self):
        __, produced = results_of(
            commutative_rule, "x = 0 or (a = 1 and b = 2)"
        )
        assert parse_condition("x = 0 or (b = 2 and a = 1)") in produced


class TestAssociative:
    def test_grouping(self):
        __, produced = results_of(associative_rule, "a = 1 and b = 2 and c = 3")
        assert parse_condition("(a = 1 and b = 2) and c = 3") in produced
        assert parse_condition("a = 1 and (b = 2 and c = 3)") in produced

    def test_flattening(self):
        __, produced = results_of(
            associative_rule, "(a = 1 and b = 2) and c = 3"
        )
        assert parse_condition("a = 1 and b = 2 and c = 3") in produced


class TestDistributive:
    def test_and_over_or(self):
        __, produced = results_of(distributive_rule, "a = 1 and (b = 2 or c = 3)")
        assert (
            parse_condition("(a = 1 and b = 2) or (a = 1 and c = 3)") in produced
        )

    def test_or_over_and(self):
        __, produced = results_of(distributive_rule, "a = 1 or (b = 2 and c = 3)")
        assert (
            parse_condition("(a = 1 or b = 2) and (a = 1 or c = 3)") in produced
        )

    def test_no_opposite_child_no_output(self):
        __, produced = results_of(distributive_rule, "a = 1 and b = 2")
        assert produced == []


class TestFactoring:
    def test_factors_common_conjunct(self):
        __, produced = results_of(
            factoring_rule, "(x = 0 and a = 1) or (x = 0 and b = 2)"
        )
        assert parse_condition("x = 0 and (a = 1 or b = 2)") in produced

    def test_partial_factoring_keeps_others(self):
        tree, produced = results_of(
            factoring_rule,
            "(x = 0 and a = 1) or (x = 0 and b = 2) or c = 3",
        )
        expected = parse_condition("c = 3 or (x = 0 and (a = 1 or b = 2))")
        assert expected in produced

    def test_skips_absorption_cases(self):
        # x or (x and a) must not "factor" into x and (true or a).
        __, produced = results_of(factoring_rule, "x = 0 or (x = 0 and a = 1)")
        assert produced == []


class TestCopy:
    def test_produces_both_copies(self):
        tree, produced = results_of(copy_rule, "a = 1")
        assert parse_condition("a = 1 and (a = 1)") in produced or any(
            out.is_and and len(out.children) == 2 for out in produced
        )
        assert any(out.is_or for out in produced)


class TestEngine:
    def test_includes_seed(self):
        engine = RewriteEngine(max_trees=10)
        seed = parse_condition("a = 1 and b = 2")
        result = engine.explore(seed)
        assert seed in result.trees

    def test_all_results_equivalent(self):
        engine = RewriteEngine(max_trees=40, max_steps=2000)
        seed = parse_condition("a = 1 and (b = 2 or c = 3)")
        result = engine.explore(seed)
        assert len(result.trees) > 5
        for tree in result.trees:
            assert logically_equivalent(seed, tree)

    def test_deduplicates(self):
        engine = RewriteEngine(max_trees=100, max_steps=3000)
        result = engine.explore(parse_condition("a = 1 and b = 2"))
        assert len(set(result.trees)) == len(result.trees)

    def test_budget_truncation_flagged(self):
        engine = RewriteEngine(max_trees=3, max_steps=50)
        result = engine.explore(
            parse_condition("a = 1 and b = 2 and c = 3 and d = 4")
        )
        assert result.truncated
        assert len(result.trees) <= 3

    def test_gencompact_rules_skip_commutativity(self):
        engine = RewriteEngine(
            rules=GENCOMPACT_RULES, max_trees=50, canonical=True
        )
        seed = parse_condition("a = 1 and b = 2")
        result = engine.explore(seed)
        # With no OR child there is nothing to distribute or factor.
        assert result.trees == [seed]

    def test_canonical_mode_emits_canonical_trees(self):
        from repro.conditions.canonical import is_canonical

        engine = RewriteEngine(
            rules=GENCOMPACT_RULES, max_trees=60, canonical=True
        )
        seed = parse_condition("(a = 1 or b = 2) and (c = 3 or d = 4)")
        result = engine.explore(seed)
        assert all(is_canonical(tree) for tree in result.trees)
        assert len(result.trees) >= 2  # the distributed form is reachable


class TestEnumerateOrderings:
    def test_all_orderings_of_flat_and(self):
        tree = parse_condition("a = 1 and b = 2 and c = 3")
        orderings = enumerate_orderings(tree)
        assert len(orderings) == 6
        assert len(set(orderings)) == 6
        for out in orderings:
            assert logically_equivalent(tree, out)

    def test_nested_orderings(self):
        tree = parse_condition("a = 1 and (b = 2 or c = 3)")
        orderings = enumerate_orderings(tree)
        # 2 root orders x 2 inner orders.
        assert len(orderings) == 4

    def test_limit_respected(self):
        tree = parse_condition(
            "a = 1 and b = 2 and c = 3 and d = 4 and e = 5"
        )
        assert len(enumerate_orderings(tree, limit=10)) == 10

    def test_leaf(self):
        tree = parse_condition("a = 1")
        assert enumerate_orderings(tree) == [tree]
