"""Unit tests for commutation closure and query fixing (Section 6.1)."""

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import QueryFixingError
from repro.ssdl.commute import commutation_closure, fix_condition
from repro.ssdl.text import parse_ssdl
from tests.conftest import EXAMPLE_41_SSDL


@pytest.fixture
def native():
    return parse_ssdl(EXAMPLE_41_SSDL, name="example41")


@pytest.fixture
def closed(native):
    return commutation_closure(native)


class TestClosure:
    def test_accepts_native_order(self, closed):
        assert closed.check(parse_condition("make = 'BMW' and price < 40000"))

    def test_accepts_swapped_order(self, native, closed):
        swapped = parse_condition("price < 40000 and make = 'BMW'")
        assert not native.check(swapped)
        assert closed.check(swapped)

    def test_same_exports(self, native, closed):
        swapped = parse_condition("color = 'red' and make = 'BMW'")
        result = closed.check(swapped)
        assert result.attribute_sets == frozenset(
            {frozenset({"make", "model", "year"})}
        )

    def test_does_not_invent_support(self, closed):
        assert not closed.check(parse_condition("year = 1999"))
        assert not closed.check(
            parse_condition("make = 'BMW' and year = 1999")
        )

    def test_three_segment_permutations(self):
        native = parse_ssdl(
            "s -> r\nr -> a = $str and b = $num and c = $str\n"
            "attributes r : a, b, c"
        )
        closed = commutation_closure(native)
        for text in (
            "a = 'x' and b <= 1",  # wrong arity still rejected
        ):
            assert not closed.check(parse_condition(text))
        import itertools

        parts = ["a = 'x'", "b = 1", "c = 'y'"]
        for order in itertools.permutations(parts):
            assert closed.check(parse_condition(" and ".join(order)))

    def test_or_segments_permuted(self):
        native = parse_ssdl(
            "s -> r\nr -> a = 'x' or b = $num\nattributes r : a, b"
        )
        closed = commutation_closure(native)
        assert closed.check(parse_condition("b = 1 or a = 'x'"))

    def test_parenthesized_groups_move_as_units(self):
        native = parse_ssdl(
            """
            s -> r
            r -> a = $str and ( bs )
            bs -> b = $num or b = $num
            attributes r : a, b
            """
        )
        closed = commutation_closure(native)
        assert closed.check(parse_condition("(b = 1 or b = 2) and a = 'x'"))

    def test_max_segments_guard(self):
        wide = " and ".join(f"x{i} = $num" for i in range(8))
        native = parse_ssdl(
            f"s -> r\nr -> {wide}\nattributes r : "
            + ", ".join(f"x{i}" for i in range(8))
        )
        closed = commutation_closure(native, max_segments=4)
        # Too wide to permute: only the native order is accepted.
        native_order = " and ".join(f"x{i} = {i}" for i in range(8))
        swapped = " and ".join(f"x{i} = {i}" for i in reversed(range(8)))
        assert closed.check(parse_condition(native_order))
        assert not closed.check(parse_condition(swapped))

    def test_mixed_top_level_connectors_left_alone(self):
        native = parse_ssdl(
            "s -> r\nr -> a = $str and b = $num or c = $str\n"
            "attributes r : a, b, c"
        )
        # Mixed and/or at the top level of one alternative: closure must
        # not scramble it (that would change the language).
        closed = commutation_closure(native)
        assert closed.rule_count() == native.rule_count()


class TestFixing:
    def test_identity_when_already_accepted(self, native):
        condition = parse_condition("make = 'BMW' and price < 40000")
        assert fix_condition(condition, native) == condition

    def test_reorders_swapped_conjunction(self, native):
        swapped = parse_condition("price < 40000 and make = 'BMW'")
        fixed = fix_condition(swapped, native)
        assert fixed == parse_condition("make = 'BMW' and price < 40000")

    def test_respects_attribute_requirement(self, native):
        # 'make and color' fixed for exporting {color} must fail: s2
        # cannot export color and no reordering changes that.
        condition = parse_condition("color = 'red' and make = 'BMW'")
        with pytest.raises(QueryFixingError):
            fix_condition(condition, native, frozenset({"color"}))
        # Without the color projection it fixes fine.
        fixed = fix_condition(condition, native, frozenset({"model"}))
        assert fixed == parse_condition("make = 'BMW' and color = 'red'")

    def test_unfixable_raises(self, native):
        with pytest.raises(QueryFixingError):
            fix_condition(parse_condition("year = 1999"), native)

    def test_fixes_nested_structures(self):
        native = parse_ssdl(
            """
            s -> r
            r -> a = $str and ( bs )
            bs -> b = $num or b = $num
            attributes r : a, b
            """
        )
        condition = parse_condition("(b = 2 or b = 1) and a = 'x'")
        fixed = fix_condition(condition, native)
        assert native.check(fixed)
        # Same atoms, just reordered.
        assert sorted(map(str, fixed.atoms())) == sorted(
            map(str, condition.atoms())
        )
