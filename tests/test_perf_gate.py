"""Unit battery for the perf-trajectory gate (``repro.perf``).

Covers the BENCH schema (round trip, validation, tolerance-parsing
units), the committed trajectory itself (every ``BENCH_*.json`` in the
repository must parse, validate, and pass its own bars), the compare
semantics (new / skipped / disappeared-metric / regression), and the
``python -m repro.perf`` CLI -- including the injected-regression
fixture the gate exists to catch.
"""

from __future__ import annotations

import json
import pathlib
import shutil

import pytest

from repro.perf import (
    Bar,
    BenchResult,
    SCHEMA_VERSION,
    SchemaError,
    Tolerance,
    check_bars,
    compare_results,
    compare_trajectories,
    env_fingerprint,
    load_result,
    load_trajectory,
)
from repro.perf.__main__ import main as perf_main

REPO = pathlib.Path(__file__).parent.parent
COMMITTED = REPO / "benchmarks" / "results"


def _result(**overrides) -> BenchResult:
    base = dict(
        benchmark="x99",
        metrics={"speed.ratio": 12.0, "count.rows": 100},
        bars={"speed.ratio": Bar(">=", 10.0)},
        tolerances={"speed.ratio": Tolerance("higher", rel=0.1)},
        seed=7,
        env=env_fingerprint(quick=True),
    )
    base.update(overrides)
    return BenchResult(**base)


class TestSchema:
    def test_round_trip_is_lossless(self, tmp_path):
        result = _result()
        path = result.save(tmp_path / "BENCH_x99.json")
        loaded = load_result(path)
        assert loaded.benchmark == "x99"
        assert loaded.metrics == result.metrics
        assert loaded.bars == result.bars
        assert loaded.tolerances == result.tolerances
        assert loaded.seed == 7
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.validate() == []

    def test_validate_catches_the_classics(self):
        assert _result(metrics={}).validate()
        assert _result(benchmark="bad name").validate()
        assert _result(schema_version=99).validate()
        assert _result(metrics={"m": float("nan")}).validate()
        assert _result(metrics={"m": "fast"}).validate()
        assert _result(bars={"absent": Bar(">=", 1.0)}).validate()
        assert _result(tolerances={"absent": Tolerance()}).validate()
        assert _result(
            metrics={"m": 1.0}, bars={"m": Bar("!=", 1.0)},
            tolerances={},
        ).validate()
        assert _result(
            metrics={"m": 1.0}, bars={},
            tolerances={"m": Tolerance(direction="sideways")},
        ).validate()
        assert _result(
            metrics={"m": 1.0}, bars={},
            tolerances={"m": Tolerance(rel=-0.1)},
        ).validate()
        assert _result(seed="lucky").validate()
        assert _result().validate() == []

    def test_booleans_are_valid_metric_values(self):
        result = _result(metrics={"flag.ok": True},
                         bars={"flag.ok": Bar("==", 1.0)},
                         tolerances={})
        assert result.validate() == []
        assert check_bars(result) == []

    def test_from_payload_shape_errors(self):
        with pytest.raises(SchemaError):
            BenchResult.from_payload([])
        with pytest.raises(SchemaError):
            BenchResult.from_payload({"benchmark": "x"})
        with pytest.raises(SchemaError):
            BenchResult.from_payload({"benchmark": "x", "metrics": 3})
        with pytest.raises(SchemaError):
            BenchResult.from_payload({
                "benchmark": "x", "metrics": {"m": 1},
                "bars": {"m": {"value": 1.0}},  # op missing
            })

    def test_load_rejects_non_json_and_name_mismatch(self, tmp_path):
        bad = tmp_path / "BENCH_x99.json"
        bad.write_text("not json {")
        with pytest.raises(SchemaError):
            load_result(bad)
        _result(benchmark="other").save(tmp_path / "BENCH_x99.json")
        with pytest.raises(SchemaError):
            load_trajectory(tmp_path)

    def test_tolerance_parsing_units(self):
        payload = _result().to_payload()
        payload["tolerances"]["speed.ratio"] = {
            "direction": "lower", "rel": 0.25, "abs": 3.0,
        }
        parsed = BenchResult.from_payload(payload)
        tolerance = parsed.tolerances["speed.ratio"]
        assert tolerance.direction == "lower"
        assert tolerance.rel == 0.25
        assert tolerance.abs == 3.0
        # Defaults fill in when a spec is partial.
        payload["tolerances"]["speed.ratio"] = {"rel": 0.5}
        partial = BenchResult.from_payload(payload)
        assert partial.tolerances["speed.ratio"] == \
            Tolerance("higher", rel=0.5)


class TestToleranceSemantics:
    def test_higher_is_better_band(self):
        tolerance = Tolerance("higher", rel=0.1)
        assert tolerance.allows(committed=10.0, fresh=9.5)
        assert tolerance.allows(committed=10.0, fresh=15.0)
        assert not tolerance.allows(committed=10.0, fresh=8.5)

    def test_lower_is_better_band(self):
        tolerance = Tolerance("lower", rel=0.1)
        assert tolerance.allows(committed=10.0, fresh=10.9)
        assert tolerance.allows(committed=10.0, fresh=2.0)
        assert not tolerance.allows(committed=10.0, fresh=11.5)

    def test_abs_slack_rescues_tiny_committed_values(self):
        tolerance = Tolerance("higher", rel=0.1, abs=0.5)
        # rel slack alone would be 0.001; abs carries it.
        assert tolerance.allows(committed=0.01, fresh=-0.4)
        assert not tolerance.allows(committed=0.01, fresh=-0.6)

    def test_bar_operators(self):
        assert Bar(">=", 2.0).holds(2.0)
        assert not Bar(">=", 2.0).holds(1.9)
        assert Bar("<=", 0.1).holds(0.05)
        assert Bar("==", 503.0).holds(503)
        assert str(Bar(">=", 2.0)) == ">= 2"
        assert str(Tolerance("higher", rel=0.1)) == "higher rel 0.1"


class TestCompareSemantics:
    def test_self_compare_is_clean(self):
        outcomes, violations = compare_results(_result(), _result())
        assert violations == []
        assert all(outcome.ok for outcome in outcomes)

    def test_bar_violation_is_reported(self):
        fresh = _result(metrics={"speed.ratio": 5.0, "count.rows": 100})
        violations = check_bars(fresh)
        assert len(violations) == 1 and "violates bar" in violations[0]

    def test_regression_past_tolerance(self):
        fresh = _result(metrics={"speed.ratio": 10.2, "count.rows": 100})
        _, violations = compare_results(_result(), fresh)
        assert any("regressed" in message for message in violations)

    def test_drift_within_tolerance_passes(self):
        fresh = _result(metrics={"speed.ratio": 11.0, "count.rows": 42})
        _, violations = compare_results(_result(), fresh)
        # count.rows moved but carries no tolerance: informational.
        assert violations == []

    def test_gated_metric_disappearing_is_a_violation(self):
        fresh = _result(metrics={"count.rows": 100}, bars={},
                        tolerances={})
        _, violations = compare_results(_result(), fresh)
        assert any("disappeared" in message for message in violations)

    def test_new_benchmark_gets_bars_only(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        fresh_dir = tmp_path / "fresh"
        baseline_dir.mkdir(), fresh_dir.mkdir()
        _result().save(fresh_dir / "BENCH_x99.json")
        report = compare_trajectories(baseline_dir, fresh_dir)
        assert report.new == ["x99"] and report.ok

    def test_skipped_benchmark_needs_require_all(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        fresh_dir = tmp_path / "fresh"
        baseline_dir.mkdir(), fresh_dir.mkdir()
        _result().save(baseline_dir / "BENCH_x99.json")
        lenient = compare_trajectories(baseline_dir, fresh_dir)
        assert lenient.skipped == ["x99"] and lenient.ok
        strict = compare_trajectories(baseline_dir, fresh_dir,
                                      require_all=True)
        assert not strict.ok


class TestCommittedTrajectory:
    def test_every_committed_file_round_trips_and_passes_its_bars(self):
        trajectory = load_trajectory(COMMITTED)
        assert trajectory, "no committed BENCH_*.json files"
        for name, result in trajectory.items():
            assert result.validate() == [], (name, result.validate())
            assert check_bars(result) == [], (name, check_bars(result))
            # Round trip through JSON text stays identical.
            payload = json.loads(
                (COMMITTED / f"BENCH_{name}.json").read_text()
            )
            assert BenchResult.from_payload(payload).to_payload() == \
                result.to_payload()

    def test_x8_through_x15_are_on_record(self):
        trajectory = load_trajectory(COMMITTED)
        for name in ("x8", "x9", "x10", "x11", "x12", "x13", "x14", "x15"):
            assert name in trajectory, sorted(trajectory)


class TestCLI:
    def test_self_check_passes_on_the_committed_trajectory(self, capsys):
        assert perf_main(["compare", "--baseline", str(COMMITTED)]) == 0
        out = capsys.readouterr().out
        assert "perf gate: PASS" in out

    def test_injected_regression_fails_the_gate(self, tmp_path, capsys):
        fresh_dir = tmp_path / "fresh"
        shutil.copytree(COMMITTED, fresh_dir,
                        ignore=shutil.ignore_patterns("*.txt"))
        # Inject: halve a bar-guarded, tolerance-gated headline metric.
        doctored = fresh_dir / "BENCH_x13.json"
        payload = json.loads(doctored.read_text())
        payload["metrics"]["check.speedup"] = \
            payload["metrics"]["check.speedup"] / 10.0
        doctored.write_text(json.dumps(payload))
        code = perf_main([
            "compare", "--baseline", str(COMMITTED),
            "--fresh", str(fresh_dir),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out

    def test_tolerated_drift_passes_bars_hold(self, tmp_path):
        fresh_dir = tmp_path / "fresh"
        shutil.copytree(COMMITTED, fresh_dir,
                        ignore=shutil.ignore_patterns("*.txt"))
        doctored = fresh_dir / "BENCH_x8.json"
        payload = json.loads(doctored.read_text())
        # Nudge a gated metric inside its band (rel 0.02 of ~1.0).
        payload["metrics"]["recovered.resilient_at_p20"] -= 0.01
        payload["bars"]["recovered.resilient_at_p20"]["value"] = 0.9
        doctored.write_text(json.dumps(payload))
        assert perf_main([
            "compare", "--baseline", str(COMMITTED),
            "--fresh", str(fresh_dir),
        ]) == 0

    def test_report_renders_the_trend_table(self, capsys):
        assert perf_main(["report", "--results", str(COMMITTED)]) == 0
        out = capsys.readouterr().out
        assert "perf trajectory" in out and "x15" in out

    def test_report_on_an_empty_directory_errors(self, tmp_path, capsys):
        assert perf_main(["report", "--results", str(tmp_path)]) == 1
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_corrupt_baseline_is_a_loud_error(self, tmp_path, capsys):
        (tmp_path / "BENCH_x1.json").write_text("{broken")
        assert perf_main(["compare", "--baseline", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_run_and_fresh_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            perf_main(["compare", "--run", "--fresh", str(tmp_path)])
