"""Unit battery for the continuous-profiling subsystem.

Covers the span->phase mapping, the :class:`PhaseProfiler` exporter
(wall/CPU aggregation, install/detach symmetry, the NullTracer
refusal), :class:`ProfiledLock` against both lock and semaphore
acquire conventions, the :class:`ContentionProfiler` wrap/uninstall
round trip (including wrapping the metrics registry's own lock), and
the one-call :func:`profile_mediator` wiring over a real mediator --
through to the ``repro_profile_*`` OpenMetrics families.
"""

from __future__ import annotations

import threading

import pytest

from repro.mediator import Mediator
from repro.observability import (
    ContentionProfiler,
    MetricsRegistry,
    PhaseProfiler,
    PhaseStat,
    ProfiledLock,
    Tracer,
    get_tracer,
    phase_category,
    profile_mediator,
    render_openmetrics,
    use_metrics,
    use_tracer,
)
from repro.observability.profiling import PROFILE_BUCKETS, profile_families
from repro.source.library import bookstore


class TestPhaseCategory:
    def test_known_span_names_map_to_phases(self):
        assert phase_category("mediator.ask") == "ask"
        assert phase_category("mediator.plan") == "plan"
        assert phase_category("planner.plan") == "plan"
        assert phase_category("planner.rewrite") == "rewrite"
        assert phase_category("planner.generate") == "generate"
        assert phase_category("planner.cost") == "cost"
        assert phase_category("mediator.execute") == "execute"
        assert phase_category("executor.source_call") == "execute"
        assert phase_category("source.service") == "source.service"

    def test_unknown_names_fall_back_to_first_segment(self):
        assert phase_category("custom.subsystem.op") == "custom"
        assert phase_category("bare") == "bare"
        assert phase_category("") == "other"


class TestPhaseStat:
    def test_means_and_shares_are_total(self):
        empty = PhaseStat()
        assert empty.wall_mean == 0.0 and empty.cpu_share == 0.0
        stat = PhaseStat(spans=4, wall_seconds=2.0, cpu_seconds=1.0)
        assert stat.wall_mean == 0.5
        assert stat.cpu_share == 0.5


class TestPhaseProfiler:
    def test_install_flips_cpu_clock_and_detach_restores(self):
        tracer = Tracer()
        profiler = PhaseProfiler(registry=MetricsRegistry())
        assert tracer.record_cpu is False
        profiler.install(tracer)
        assert tracer.record_cpu is True
        assert profiler.installed
        profiler.detach()
        assert tracer.record_cpu is False
        assert not profiler.installed
        # Detach is idempotent.
        profiler.detach()

    def test_double_install_raises(self):
        profiler = PhaseProfiler(registry=MetricsRegistry())
        profiler.install(Tracer())
        with pytest.raises(RuntimeError):
            profiler.install(Tracer())

    def test_null_tracer_refuses_installation(self):
        profiler = PhaseProfiler(registry=MetricsRegistry())
        with pytest.raises(ValueError):
            profiler.install(get_tracer())
        assert not profiler.installed
        assert get_tracer().record_cpu is False

    def test_spans_aggregate_with_wall_and_cpu(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        profiler = PhaseProfiler(registry=registry).install(tracer)
        with tracer.span("planner.rewrite"):
            sum(range(20_000))  # burn a little CPU
        with tracer.span("planner.rewrite"):
            pass
        with tracer.span("mediator.execute"):
            pass
        phases = profiler.snapshot()
        assert phases["rewrite"].spans == 2
        assert phases["execute"].spans == 1
        assert phases["rewrite"].wall_seconds > 0.0
        assert phases["rewrite"].cpu_seconds >= 0.0
        # The registry saw the same spans.
        snapshot = registry.snapshot()
        wall = snapshot["profile.phase.rewrite.wall_seconds"]
        assert wall["count"] == 2
        assert "profile.phase.execute.wall_seconds" in snapshot

    def test_top_orders_by_wall_or_cpu_and_rejects_else(self):
        profiler = PhaseProfiler(registry=MetricsRegistry())
        tracer = Tracer()
        profiler.install(tracer)
        with tracer.span("planner.cost"):
            pass
        with tracer.span("mediator.execute"):
            sum(range(10_000))
        names = [category for category, _ in profiler.top(by="wall")]
        assert set(names) == {"cost", "execute"}
        assert profiler.top(by="cpu")[0][0] in {"cost", "execute"}
        with pytest.raises(ValueError):
            profiler.top(by="p99")

    def test_reset_clears_aggregates_not_instruments(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        profiler = PhaseProfiler(registry=registry).install(tracer)
        with tracer.span("planner.plan"):
            pass
        profiler.reset()
        assert profiler.snapshot() == {}
        # The registry keeps its history (reset is the registry's call).
        assert registry.snapshot()[
            "profile.phase.plan.wall_seconds"]["count"] == 1

    def test_format_lists_phases(self):
        profiler = PhaseProfiler(registry=MetricsRegistry())
        tracer = Tracer()
        profiler.install(tracer)
        with tracer.span("planner.plan"):
            pass
        text = profiler.format()
        assert "phase" in text and "plan" in text

    def test_without_cpu_switch_spans_still_aggregate_wall(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        profiler = PhaseProfiler(registry=registry)
        tracer.add_exporter(profiler.export)  # exporter only, no CPU
        with tracer.span("mediator.ask"):
            pass
        stat = profiler.snapshot()["ask"]
        assert stat.wall_seconds > 0.0
        assert stat.cpu_seconds == 0.0  # cpu clocks never ran


class TestProfiledLock:
    def _wrapped(self, inner=None):
        registry = MetricsRegistry()
        wait = registry.histogram("profile.lock.site.wait_seconds",
                                  buckets=PROFILE_BUCKETS)
        timeouts = registry.counter("profile.lock.site.timeouts")
        lock = ProfiledLock(inner if inner is not None
                            else threading.Lock(), "site", wait, timeouts)
        return lock, wait, timeouts

    def test_context_manager_observes_each_wait(self):
        lock, wait, _ = self._wrapped()
        with lock:
            assert lock.locked()
        with lock:
            pass
        assert not lock.locked()
        assert wait.snapshot()["count"] == 2

    def test_nonblocking_failure_counts_a_timeout(self):
        lock, wait, timeouts = self._wrapped()
        assert lock.acquire()
        assert lock.acquire(blocking=False) is False
        assert timeouts.value == 1
        lock.release()
        assert wait.snapshot()["count"] == 2

    def test_timed_acquire_gives_up_and_counts(self):
        lock, _, timeouts = self._wrapped()
        lock.acquire()
        assert lock.acquire(timeout=0.01) is False
        assert timeouts.value == 1
        lock.release()

    def test_wraps_a_semaphore_too(self):
        semaphore = threading.BoundedSemaphore(1)
        lock, wait, timeouts = self._wrapped(inner=semaphore)
        assert lock.acquire()
        assert lock.acquire(blocking=False) is False
        lock.release()
        assert wait.snapshot()["count"] == 2
        assert timeouts.value == 1

    def test_inner_exposes_the_wrapped_lock(self):
        original = threading.Lock()
        lock, _, _ = self._wrapped(inner=original)
        assert lock.inner is original


class TestContentionProfiler:
    def test_wrap_and_uninstall_restore_the_original(self):
        class Holder:
            def __init__(self):
                self._lock = threading.Lock()

        holder = Holder()
        original = holder._lock
        profiler = ContentionProfiler(registry=MetricsRegistry())
        profiler.wrap(holder, "_lock", "site")
        assert isinstance(holder._lock, ProfiledLock)
        assert profiler.installed
        assert profiler.uninstall() == 1
        assert holder._lock is original
        assert not profiler.installed

    def test_double_wrap_raises(self):
        class Holder:
            def __init__(self):
                self._lock = threading.Lock()

        holder = Holder()
        profiler = ContentionProfiler(registry=MetricsRegistry())
        profiler.wrap(holder, "_lock", "site")
        with pytest.raises(RuntimeError):
            profiler.wrap(holder, "_lock", "site")

    def test_sites_summarize_waits_and_timeouts(self):
        class Holder:
            def __init__(self):
                self._lock = threading.Lock()

        holder = Holder()
        profiler = ContentionProfiler(registry=MetricsRegistry())
        profiler.wrap(holder, "_lock", "site")
        with holder._lock:
            pass
        summary = profiler.sites()["site"]
        assert summary["acquires"] == 1
        assert summary["timeouts"] == 0
        assert summary["wait_seconds"] >= 0.0

    def test_registry_lock_wrap_survives_instrument_traffic(self):
        # The deadlock trap: a wrapped registry lock must not recurse
        # into the registry while recording its own waits.
        registry = MetricsRegistry()
        profiler = ContentionProfiler(registry=registry)
        profiler.instrument_registry(registry)
        assert isinstance(registry._lock, ProfiledLock)
        counter = registry.counter("independent.counter")  # takes the lock
        counter.inc()
        snapshot = registry.snapshot()  # takes every lock, ordered
        assert snapshot["independent.counter"]["value"] == 1
        waits = profiler.sites()["metrics_registry"]
        assert waits["acquires"] >= 2
        profiler.uninstall()
        assert not isinstance(registry._lock, ProfiledLock)

    def test_instrument_mediator_wraps_every_hot_site(self):
        mediator = Mediator(plan_cache_entries=32, max_in_flight=4,
                            admission_timeout=5.0)
        mediator.add_source(bookstore(n=20))
        profiler = ContentionProfiler(registry=MetricsRegistry())
        profiler.instrument_mediator(mediator)
        assert isinstance(mediator.plan_cache._lock, ProfiledLock)
        assert isinstance(mediator.admission._lock, ProfiledLock)
        source = mediator.source("bookstore")
        assert isinstance(source.description._cache_lock, ProfiledLock)
        restored = profiler.uninstall()
        assert restored >= 3
        assert not isinstance(mediator.plan_cache._lock, ProfiledLock)


class TestProfileMediator:
    def _ask(self, mediator):
        return mediator.ask(
            "SELECT title FROM bookstore WHERE author = 'Carl Jung'"
        )

    def test_end_to_end_phases_locks_and_families(self):
        registry = MetricsRegistry()
        mediator = Mediator(plan_cache_entries=32)
        mediator.add_source(bookstore(n=50))
        with use_metrics(registry):
            with use_tracer(Tracer()) as tracer:
                with profile_mediator(mediator, tracer) as session:
                    self._ask(mediator)
                    self._ask(mediator)  # the second ask hits the cache
        phases = session.phases.snapshot()
        assert phases["ask"].spans == 2
        assert "execute" in phases and "source.service" in phases
        sites = session.locks.sites()
        assert sites["plan_cache"]["acquires"] > 0
        assert sites["check_cache"]["acquires"] >= 0
        # After stop(): plain locks, CPU clock off, exporter gone.
        assert not isinstance(mediator.plan_cache._lock, ProfiledLock)
        assert tracer.record_cpu is False
        # The metrics made it to the registry and the OpenMetrics text.
        snapshot = registry.snapshot()
        wall_families = dict(profile_families(snapshot, "profile.phase"))
        assert "ask.wall_seconds" in wall_families
        text = render_openmetrics(snapshot)
        assert "repro_profile_phase_ask_wall_seconds" in text
        assert "repro_profile_lock_plan_cache_wait_seconds" in text

    def test_profile_registry_lock_opt_in(self):
        registry = MetricsRegistry()
        mediator = Mediator()
        mediator.add_source(bookstore(n=20))
        with use_metrics(registry):
            with use_tracer(Tracer()) as tracer:
                session = profile_mediator(
                    mediator, tracer, registry=registry,
                    profile_registry_lock=True,
                )
                try:
                    self._ask(mediator)
                finally:
                    session.stop()
        assert not isinstance(registry._lock, ProfiledLock)
        assert session.locks.sites()["metrics_registry"]["acquires"] > 0

    def test_wiring_rolls_back_on_failure(self):
        registry = MetricsRegistry()
        mediator = Mediator(plan_cache_entries=32)
        mediator.add_source(bookstore(n=20))
        tracer = Tracer()
        # Pre-wrap one site so instrument_mediator blows up mid-way.
        saboteur = ContentionProfiler(registry=registry)
        saboteur.wrap(mediator.plan_cache, "_lock", "plan_cache")
        with pytest.raises(RuntimeError):
            profile_mediator(mediator, tracer, registry=registry)
        # The failed wiring detached its exporter and CPU switch...
        assert tracer.record_cpu is False
        # ...and the saboteur's wrap is still the only one in place.
        assert isinstance(mediator.plan_cache._lock, ProfiledLock)
        saboteur.uninstall()

    def test_profile_families_filters_and_strips_prefix(self):
        snapshot = {
            "profile.phase.ask.wall_seconds": {"count": 1},
            "profile.phase.ask.cpu_seconds": {"value": 0.5},
            "profile.lock.plan_cache.wait_seconds": {"count": 2},
            "executor.retries": {"value": 0},
        }
        phases = dict(profile_families(snapshot, "profile.phase"))
        assert set(phases) == {"ask.wall_seconds", "ask.cpu_seconds"}
        locks = dict(profile_families(snapshot, "profile.lock."))
        assert set(locks) == {"plan_cache.wait_seconds"}
