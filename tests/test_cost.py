"""Unit tests for the Eq. 1 cost model and Choice resolution."""

import math

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import PlanExecutionError
from repro.plans.cost import (
    CostModel,
    count_concrete,
    enumerate_concrete,
)
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    make_choice,
)


@pytest.fixture
def model(example41):
    return CostModel({example41.name: example41.stats}, k1=100.0, k2=1.0)


def sq(text, attrs=("model",), source="cars"):
    return SourceQuery(parse_condition(text), frozenset(attrs), source)


class TestCost:
    def test_source_query_cost(self, model, example41):
        plan = sq("make = 'BMW' and price < 40000")
        rows = example41.stats.estimated_rows(plan.condition)
        assert model.cost(plan) == pytest.approx(100 + rows)

    def test_download_counts_full_relation(self, model, example41):
        plan = sq("true")
        assert model.cost(plan) == pytest.approx(100 + len(example41.relation))

    def test_additive_over_source_queries(self, model):
        plan = UnionPlan(
            [sq("make = 'BMW' and price < 40000"),
             sq("make = 'Toyota' and price < 40000")]
        )
        assert model.cost(plan) == pytest.approx(
            model.cost(plan.children[0]) + model.cost(plan.children[1])
        )

    def test_postprocessing_is_free(self, model):
        inner = sq("make = 'BMW' and price < 40000", attrs=("model", "color"))
        wrapped = Postprocess(
            parse_condition("color = 'red'"), frozenset({"model"}), inner
        )
        assert model.cost(wrapped) == model.cost(inner)

    def test_none_is_infinite(self, model):
        assert model.cost(None) == math.inf

    def test_unknown_source_raises(self, model):
        with pytest.raises(PlanExecutionError):
            model.cost(sq("make = 'BMW' and price < 1", source="ghost"))

    def test_per_source_constants(self, example41):
        model = CostModel(
            {example41.name: example41.stats},
            k1=100.0,
            k2=1.0,
            per_source={"cars": (5.0, 2.0)},
        )
        plan = sq("make = 'BMW' and price < 40000")
        rows = example41.stats.estimated_rows(plan.condition)
        assert model.cost(plan) == pytest.approx(5 + 2 * rows)

    def test_choice_costs_cheapest_branch(self, model):
        cheap = sq("make = 'BMW' and price < 40000")
        expensive = sq("true")
        choice = make_choice([cheap, expensive])
        assert model.cost(choice) == model.cost(cheap)

    def test_cheaper_helper(self, model):
        cheap = sq("make = 'BMW' and price < 40000")
        expensive = sq("true")
        assert model.cheaper(cheap, expensive) is cheap
        assert model.cheaper(None, cheap) is cheap
        assert model.cheaper(cheap, None) is cheap
        assert model.cheaper(None, None) is None


class TestResolve:
    def test_resolve_picks_cheapest(self, model):
        cheap = sq("make = 'BMW' and price < 40000")
        choice = make_choice([cheap, sq("true")])
        assert model.resolve(choice) == cheap

    def test_resolve_recurses_into_composites(self, model):
        cheap = sq("make = 'BMW' and price < 40000", attrs=("model", "color"))
        choice = make_choice(
            [cheap, sq("true", attrs=("model", "color"))]
        )
        wrapped = Postprocess(
            parse_condition("color = 'red'"), frozenset({"model"}), choice
        )
        resolved = model.resolve(wrapped)
        assert resolved.is_concrete
        assert resolved.input == cheap

    def test_resolve_none(self, model):
        assert model.resolve(None) is None


class TestEnumerationAndCounting:
    def test_count_concrete(self, model):
        c1 = sq("make = 'BMW' and price < 40000")
        c2 = sq("make = 'Toyota' and price < 40000")
        c3 = sq("true")
        choice = make_choice([c1, c3])
        union = UnionPlan([choice, make_choice([c2, c3])])
        assert count_concrete(c1) == 1
        assert count_concrete(choice) == 2
        assert count_concrete(union) == 4
        assert count_concrete(None) == 0

    def test_enumerate_concrete_matches_count(self, model):
        c1 = sq("make = 'BMW' and price < 40000")
        c2 = sq("make = 'Toyota' and price < 40000")
        c3 = sq("true")
        union = UnionPlan([make_choice([c1, c3]), make_choice([c2, c3])])
        plans = list(enumerate_concrete(union))
        assert len(plans) == 4
        assert all(p.is_concrete for p in plans)
        assert len(set(plans)) == 4

    def test_enumerate_respects_limit(self, model):
        c1 = sq("make = 'BMW' and price < 40000")
        c3 = sq("true")
        union = UnionPlan([make_choice([c1, c3]), make_choice([c1, c3])])
        with pytest.raises(PlanExecutionError):
            list(enumerate_concrete(union, limit=3))

    def test_min_over_enumeration_equals_resolve(self, model):
        c1 = sq("make = 'BMW' and price < 40000")
        c2 = sq("make = 'Toyota' and price < 40000")
        c3 = sq("true")
        union = UnionPlan([make_choice([c1, c3]), make_choice([c2, c3])])
        best = min(enumerate_concrete(union), key=model.cost)
        assert model.cost(best) == pytest.approx(model.cost(model.resolve(union)))
