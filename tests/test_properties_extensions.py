"""Property tests for the extension modules: caching equivalence,
form-compilation semantics, binding-pattern semantics."""


import hypothesis.strategies as st
from hypothesis import given, settings

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import And, Leaf
from repro.data.schema import AttrType, Schema
from repro.plans.cache import ResultCache
from repro.plans.cost import CostModel
from repro.plans.execute import Executor
from repro.ssdl.binding_patterns import compile_binding_patterns
from repro.ssdl.forms import NumberField, TextField, WebForm
from repro.workloads.synthetic import (
    WorldConfig,
    make_queries,
    make_source,
)
from repro.planners.gencompact import GenCompact

_CONFIG = WorldConfig(n_attributes=5, n_rows=300, richness=0.7,
                      download_prob=0.5, seed=71)
_SOURCE = make_source(_CONFIG)
_MODEL = CostModel({_SOURCE.name: _SOURCE.stats})
_PLANNER = GenCompact()


@given(st.integers(0, 10**6), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_cached_execution_equals_uncached(seed, n_atoms):
    """A result cache must never change any answer."""
    query = make_queries(_CONFIG, _SOURCE, 1, n_atoms, seed=seed)[0]
    result = _PLANNER.plan(query, _SOURCE, _MODEL)
    if not result.feasible:
        return
    plain = Executor({_SOURCE.name: _SOURCE})
    cached = Executor({_SOURCE.name: _SOURCE}, cache=ResultCache(100_000))
    baseline = plain.execute(result.plan).as_row_set()
    assert cached.execute(result.plan).as_row_set() == baseline
    # Second run comes from the cache and still matches.
    assert cached.execute(result.plan).as_row_set() == baseline


# ----------------------------------------------------------------------
# Form compilation: the grammar accepts exactly the legal submissions.
# ----------------------------------------------------------------------

_FORM_SCHEMA = Schema.of(
    "f", [("t0", AttrType.STRING), ("n0", AttrType.INT),
          ("t1", AttrType.STRING)],
)
_FORM = WebForm(
    "f",
    fields=[TextField("t0"), NumberField("n0", op="<="), TextField("t1")],
    exports=["t0", "n0", "t1"],
    max_filled=2,
)
_FORM_DESC = _FORM.compile()
_FIELD_ATOMS = {
    "t0": Atom("t0", Op.EQ, "x"),
    "n0": Atom("n0", Op.LE, 5),
    "t1": Atom("t1", Op.EQ, "y"),
}
_FIELD_ORDER = ["t0", "n0", "t1"]


@given(st.lists(st.sampled_from(_FIELD_ORDER), min_size=1, max_size=3,
                unique=True))
@settings(max_examples=60, deadline=None)
def test_form_grammar_matches_form_semantics(fields):
    """A submission is accepted iff: <= max_filled fields, each used
    once, in the form's declared order."""
    leaves = [Leaf(_FIELD_ATOMS[f]) for f in fields]
    condition = leaves[0] if len(leaves) == 1 else And(leaves)
    in_order = fields == sorted(fields, key=_FIELD_ORDER.index)
    legal = len(fields) <= 2 and in_order
    assert bool(_FORM_DESC.check(condition)) == legal


# ----------------------------------------------------------------------
# Binding patterns: acceptance == adornment semantics.
# ----------------------------------------------------------------------

_BP_SCHEMA = Schema.of(
    "flight",
    [("origin", AttrType.STRING), ("dest", AttrType.STRING),
     ("price", AttrType.INT)],
)
_BP_ATOMS = {
    "origin": Atom("origin", Op.EQ, "SFO"),
    "dest": Atom("dest", Op.EQ, "BOS"),
    "price": Atom("price", Op.EQ, 100),
}


@given(
    st.text(alphabet="bfo", min_size=3, max_size=3),
    st.lists(st.sampled_from(["origin", "dest", "price"]), min_size=0,
             max_size=3, unique=True),
)
@settings(max_examples=120, deadline=None)
def test_binding_pattern_semantics(adornment, bound_attrs):
    """A conjunction of equalities is accepted iff it binds every 'b'
    attribute, no 'f' attribute, and appears in schema order."""
    description = compile_binding_patterns(_BP_SCHEMA, [adornment])
    letters = dict(zip(["origin", "dest", "price"], adornment))
    # Build the query in schema order (the compiled rules are ordered;
    # order-insensitivity is the commutation closure's job, not this
    # test's subject).
    ordered = [a for a in ["origin", "dest", "price"] if a in bound_attrs]
    if not ordered:
        return  # the empty query is the download case, tested separately
    leaves = [Leaf(_BP_ATOMS[a]) for a in ordered]
    condition = leaves[0] if len(leaves) == 1 else And(leaves)
    legal = all(letters[a] == "b" or letters[a] == "o" for a in ordered) and all(
        a in ordered for a, letter in letters.items() if letter == "b"
    )
    assert bool(description.check(condition)) == legal
