"""Unit tests for the parallel executor.

Semantics first: on every plan shape the ParallelExecutor must be a
drop-in for the serial Executor -- same rows, same errors, same
capability behaviour.  Then the concurrency machinery itself: the
worker cap, the per-source semaphore, inline fallback at
``max_workers=1``, pool lifecycle, and the multisource integration.
The wall-clock speedup claim lives in ``benchmarks/test_x9_parallel.py``;
the serial/parallel parity battery in ``tests/test_parallel_parity.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import (
    PlanExecutionError,
    SourceUnavailableError,
    UnsupportedQueryError,
)
from repro.multisource import MirrorGroup, PartitionedSource
from repro.plans.cache import ResultCache
from repro.plans.execute import Executor
from repro.plans.nodes import (
    IntersectPlan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)
from repro.plans.parallel import ParallelExecutor
from repro.plans.retry import RetryPolicy
from repro.query import TargetQuery
from repro.source.faults import FaultInjector, SimulatedLatency
from repro.source.library import bookstore

ATTRS = frozenset({"id", "title"})
COND = parse_condition("author = 'Carl Jung'")


def _mirror_catalog(n_sources: int = 4, n_rows: int = 150) -> dict:
    """``n_sources`` renamed copies of the bookstore (same data)."""
    catalog = {}
    for index in range(n_sources):
        source = bookstore(n=n_rows, seed=1999)
        source.name = f"b{index}"
        catalog[source.name] = source
    return catalog


def _author_union(catalog) -> UnionPlan:
    return UnionPlan([
        SourceQuery(COND, ATTRS, name) for name in sorted(catalog)
    ])


# ----------------------------------------------------------------------
# Drop-in semantics


def test_union_rows_match_serial():
    catalog = _mirror_catalog()
    plan = _author_union(catalog)
    expected = Executor(catalog).execute(plan).as_row_set()
    with ParallelExecutor(catalog, max_workers=4) as executor:
        assert executor.execute(plan).as_row_set() == expected


def test_intersect_and_nested_combinations_match_serial():
    catalog = _mirror_catalog()
    inner = IntersectPlan([
        SourceQuery(COND, ATTRS, "b0"),
        SourceQuery(COND, ATTRS, "b1"),
    ])
    plan = UnionPlan([
        inner,
        Postprocess(TRUE, ATTRS, SourceQuery(COND, ATTRS, "b2")),
        _author_union(catalog),
    ])
    expected = Executor(catalog).execute(plan).as_row_set()
    with ParallelExecutor(catalog, max_workers=3) as executor:
        assert executor.execute(plan).as_row_set() == expected


def test_max_workers_one_degenerates_to_serial():
    catalog = _mirror_catalog()
    plan = _author_union(catalog)
    expected = Executor(catalog).execute(plan).as_row_set()
    with ParallelExecutor(catalog, max_workers=1) as executor:
        assert executor.execute(plan).as_row_set() == expected
        assert executor._pool is None  # no thread ever started


def test_capability_rejection_matches_serial_and_names_first_child():
    # b1's form rejects this condition; b3 would too, but serial
    # surfaces the earliest failing child and parallel must agree.
    # (fix_queries=False so the rejection comes from the source itself.)
    catalog = _mirror_catalog()
    bad = parse_condition("price <= 10")
    plan = UnionPlan([
        SourceQuery(COND, ATTRS, "b0"),
        SourceQuery(bad, ATTRS, "b1"),
        SourceQuery(COND, ATTRS, "b2"),
        SourceQuery(bad, ATTRS, "b3"),
    ])
    with pytest.raises(UnsupportedQueryError) as serial_err:
        Executor(catalog, fix_queries=False).execute(plan)
    with ParallelExecutor(
        catalog, fix_queries=False, max_workers=4
    ) as executor:
        with pytest.raises(UnsupportedQueryError) as parallel_err:
            executor.execute(plan)
    assert "'b1'" in str(serial_err.value)
    assert "'b1'" in str(parallel_err.value)


def test_unknown_source_still_raises():
    catalog = _mirror_catalog(2)
    plan = UnionPlan([
        SourceQuery(COND, ATTRS, "b0"),
        SourceQuery(COND, ATTRS, "nope"),
    ])
    with ParallelExecutor(catalog, max_workers=2) as executor:
        with pytest.raises(PlanExecutionError, match="unknown source"):
            executor.execute(plan)


def test_report_counts_sources_exactly_once_per_branch():
    catalog = _mirror_catalog()
    plan = _author_union(catalog)
    with ParallelExecutor(catalog, max_workers=4) as executor:
        report = executor.execute_with_report(plan)
    assert report.queries == 4
    assert report.attempts == 4
    assert report.retries == 0 and report.failovers == 0


# ----------------------------------------------------------------------
# Concurrency machinery


def test_worker_cap_bounds_global_fan_out():
    """With max_workers=2 at most 3 branches run at once (two workers
    plus the submitting thread running its inline share)."""
    catalog = _mirror_catalog(8)
    in_flight = []
    lock = threading.Lock()
    current = [0]

    original = Executor._execute_source_query

    def tracking(self, plan, ctx):
        with lock:
            current[0] += 1
            in_flight.append(current[0])
        try:
            # A small real delay so branches genuinely overlap.
            threading.Event().wait(0.01)
            return original(self, plan, ctx)
        finally:
            with lock:
                current[0] -= 1

    plan = _author_union(catalog)
    with ParallelExecutor(catalog, max_workers=2) as executor:
        executor._execute_source_query = tracking.__get__(executor)
        executor.execute(plan)
    assert max(in_flight) <= 3
    assert max(in_flight) >= 2  # and it really did run concurrently


def test_per_source_semaphore_never_oversubscribed():
    source = bookstore(n=100, seed=1999)
    source.max_concurrency = 2
    source.latency = SimulatedLatency(seed=0, base=0.005)
    catalog = {"bookstore": source}
    # Eight branches, all against the same source.
    plan = UnionPlan([SourceQuery(COND, ATTRS, "bookstore")] * 8)
    with ParallelExecutor(catalog, max_workers=8) as executor:
        executor.execute(plan)
    assert source.max_in_flight <= 2
    assert source.in_flight == 0
    assert source.meter.queries == 8


def test_pool_is_reusable_across_executions_and_closes_idempotently():
    catalog = _mirror_catalog()
    plan = _author_union(catalog)
    executor = ParallelExecutor(catalog, max_workers=4)
    first = executor.execute(plan).as_row_set()
    second = executor.execute(plan).as_row_set()
    assert first == second
    pool = executor._pool
    assert pool is not None
    executor.close()
    executor.close()  # idempotent
    assert executor._pool is None


def test_invalid_max_workers_rejected():
    with pytest.raises(ValueError, match="max_workers"):
        ParallelExecutor({}, max_workers=0)


def test_shared_cache_masks_repeat_queries():
    catalog = _mirror_catalog()
    cache = ResultCache()
    plan = _author_union(catalog)
    with ParallelExecutor(catalog, cache=cache, max_workers=4) as executor:
        executor.execute(plan)
        before = {n: s.meter.queries for n, s in catalog.items()}
        executor.execute(plan)  # all hits: sources not contacted again
        after = {n: s.meter.queries for n, s in catalog.items()}
    assert before == after
    assert cache.stats.hits >= 4


def test_retry_recovers_faulted_branches():
    catalog = _mirror_catalog()
    plan = _author_union(catalog)
    expected = Executor(catalog).execute(plan).as_row_set()
    for index, source in enumerate(catalog.values()):
        source.fault_injector = FaultInjector(seed=index, transient_rate=0.4)
    policy = RetryPolicy(max_attempts=30)
    with ParallelExecutor(
        catalog, retry_policy=policy, max_workers=4
    ) as executor:
        report = executor.execute_with_report(plan)
    assert report.result.as_row_set() == expected
    assert report.attempts == report.queries + sum(
        s.meter.failures for s in catalog.values()
    )


def test_branch_that_exhausts_retries_propagates_fault():
    catalog = _mirror_catalog(3)
    catalog["b1"].fault_injector = FaultInjector(seed=0)
    catalog["b1"].fault_injector.take_down()
    plan = _author_union(catalog)
    policy = RetryPolicy(max_attempts=2)
    with ParallelExecutor(
        catalog, retry_policy=policy, max_workers=3
    ) as executor:
        with pytest.raises(SourceUnavailableError):
            executor.execute(plan)


# ----------------------------------------------------------------------
# Multisource integration


def _partitions() -> list:
    out = []
    for index in range(3):
        part = bookstore(n=120, seed=2000 + index)
        part.name = f"part{index}"
        out.append(part)
    return out


def test_partitioned_source_with_parallel_workers():
    serial_group = PartitionedSource(_partitions())
    parallel_group = PartitionedSource(_partitions(), parallel_workers=3)
    assert isinstance(parallel_group._executor, ParallelExecutor)
    query = TargetQuery(COND, ATTRS, "books")
    expected = serial_group.ask(query).result.as_row_set()
    got = parallel_group.ask(query).result.as_row_set()
    assert got == expected


def test_mirror_group_with_parallel_workers_answers_and_fails_over():
    mirrors = []
    for name in ("m0", "m1"):
        mirror = bookstore(n=120, seed=1999)
        mirror.name = name
        mirrors.append(mirror)
    group = MirrorGroup(
        mirrors,
        retry_policy=RetryPolicy(max_attempts=2),
        parallel_workers=2,
    )
    assert isinstance(group._executor, ParallelExecutor)
    query = TargetQuery(COND, ATTRS, "books")
    healthy = group.ask(query).result.as_row_set()
    # Take the cheapest mirror down: the group must fail over.
    mirrors[0].fault_injector = FaultInjector(seed=0)
    mirrors[0].fault_injector.take_down()
    mirrors[1].fault_injector = FaultInjector(seed=1)
    report = group.ask(query)
    assert report.result.as_row_set() == healthy
