"""Parameterized plan templates: skeleton keys, rebinding, the mediator.

The exact canonical cache only helps when a query repeats *constants
included*; :class:`~repro.serving.PlanTemplates` keys on the
constant-stripped skeleton so constant-varying respellings of one query
shape cost a validated substitution instead of a planning run.  These
tests pin the key semantics, the store/instantiate/reject life cycle,
versioned invalidation, and the mediator integration (template hit
promoted to an exact entry; ``plan_templates=False`` restores the
exact-only behavior).
"""

from __future__ import annotations

import pytest

from repro.conditions.parser import parse_condition
from repro.mediator.mediator import Mediator
from repro.planners.base import PlanningResult
from repro.plans.cost import CostModel
from repro.query import TargetQuery
from repro.serving.plan_cache import PlanTemplates, template_cache_key

from tests.conftest import make_example41_source

ATTRS = frozenset({"make", "model"})


def _query(text: str, source: str = "cars") -> TargetQuery:
    return TargetQuery(parse_condition(text), ATTRS, source)


class TestTemplateKey:
    def test_constant_respellings_collide(self):
        a = template_cache_key(
            parse_condition("make = 'BMW' and price < 40000"), ATTRS, "cars"
        )
        b = template_cache_key(
            parse_condition("make = 'Audi' and price < 9000"), ATTRS, "cars"
        )
        assert a == b

    def test_shape_projection_source_and_scheme_separate(self):
        base = template_cache_key(
            parse_condition("make = 'BMW' and price < 1"), ATTRS, "cars"
        )
        assert base != template_cache_key(
            parse_condition("make = 'BMW' or price < 1"), ATTRS, "cars"
        )
        assert base != template_cache_key(
            parse_condition("make = 'BMW' and price < 1"),
            frozenset({"model"}), "cars",
        )
        assert base != template_cache_key(
            parse_condition("make = 'BMW' and price < 1"), ATTRS, "other"
        )
        assert base != template_cache_key(
            parse_condition("make = 'BMW' and price < 1"), ATTRS, "cars",
            scheme="genmodular",
        )

    def test_constant_class_is_part_of_the_skeleton(self):
        # A string constant and a numeric constant in the same slot are
        # different templates -- rebinding across classes is never legal.
        a = template_cache_key(parse_condition("make = 'BMW'"), ATTRS, "cars")
        b = template_cache_key(parse_condition("make = 7"), ATTRS, "cars")
        assert a != b


class TestPlanTemplatesStore:
    def _planned(self, source, text: str) -> PlanningResult:
        from repro.planners.gencompact import GenCompact

        cost_model = CostModel({source.name: source.stats})
        return GenCompact().plan(_query(text), source, cost_model)

    def test_rebinds_and_counts_hit(self):
        source = make_example41_source()
        cost_model = CostModel({source.name: source.stats})
        templates = PlanTemplates(metrics_prefix="test.template_cache")
        first = self._planned(source, "make = 'BMW' and price < 40000")
        key = templates.key(first.query)
        templates.store(key, first.query.condition, first)

        query = _query("make = 'Toyota' and price < 20000")
        rebound = templates.instantiate(
            templates.key(query), query, source, cost_model
        )
        assert rebound is not None
        assert rebound.planner.endswith("+template")
        assert rebound.feasible
        conditions = [q.condition for q in rebound.plan.source_queries()]
        assert query.condition in conditions
        assert templates.hits == 1
        assert templates.rejected == 0

    def test_miss_returns_none(self):
        source = make_example41_source()
        cost_model = CostModel({source.name: source.stats})
        templates = PlanTemplates(metrics_prefix="test.template_cache")
        query = _query("make = 'BMW' and price < 40000")
        assert templates.instantiate(
            templates.key(query), query, source, cost_model
        ) is None
        assert templates.stats.misses == 1
        assert templates.hits == 0

    def test_infeasible_results_are_not_stored(self):
        templates = PlanTemplates(metrics_prefix="test.template_cache")
        query = _query("year = 1999")
        infeasible = PlanningResult("gencompact", query, None, float("inf"))
        templates.store(templates.key(query), query.condition, infeasible)
        assert len(templates) == 0

    def test_first_feasible_template_wins(self):
        source = make_example41_source()
        templates = PlanTemplates(metrics_prefix="test.template_cache")
        first = self._planned(source, "make = 'BMW' and price < 40000")
        second = self._planned(source, "make = 'Honda' and price < 15000")
        key = templates.key(first.query)
        templates.store(key, first.query.condition, first)
        templates.store(key, second.query.condition, second)
        assert len(templates) == 1
        cost_model = CostModel({source.name: source.stats})
        query = _query("make = 'Toyota' and price < 20000")
        rebound = templates.instantiate(key, query, source, cost_model)
        # The stored template is still the first one (its constants were
        # BMW/40000), so the rebinding maps BMW -> Toyota.
        assert rebound is not None

    def test_version_bump_invalidates(self):
        source = make_example41_source()
        cost_model = CostModel({source.name: source.stats})
        templates = PlanTemplates(metrics_prefix="test.template_cache")
        first = self._planned(source, "make = 'BMW' and price < 40000")
        key = templates.key(first.query)
        templates.store(key, first.query.condition, first, version=1)
        query = _query("make = 'Toyota' and price < 20000")
        assert templates.instantiate(key, query, source, cost_model,
                                     version=2) is None
        assert templates.stats.invalidations == 1


class TestMediatorTemplates:
    def _mediator(self, **kwargs) -> Mediator:
        mediator = Mediator(plan_cache_entries=64, **kwargs)
        mediator.add_source(make_example41_source())
        return mediator

    def test_constant_respelling_hits_the_template(self):
        mediator = self._mediator()
        first = mediator.plan(
            "select make, model from cars where make = 'BMW' and price < 40000"
        )
        assert first.feasible
        second = mediator.plan(
            "select make, model from cars where make = 'Toyota' and price < 20000"
        )
        assert second.planner.endswith("+template")
        assert mediator.plan_templates.hits == 1

    def test_template_hit_is_promoted_to_exact_entry(self):
        mediator = self._mediator()
        mediator.plan(
            "select make, model from cars where make = 'BMW' and price < 40000"
        )
        text = "select make, model from cars where make = 'Toyota' and price < 20000"
        rebound = mediator.plan(text)
        again = mediator.plan(text)
        assert again is rebound  # exact canonical hit, not a re-rebind
        assert mediator.plan_templates.hits == 1

    def test_template_answers_match_fresh_planning(self):
        mediator = self._mediator()
        fresh = Mediator()
        fresh.add_source(make_example41_source())
        mediator.ask(
            "select make, model from cars where make = 'BMW' and price < 40000"
        )
        text = "select make, model from cars where make = 'Toyota' and price < 20000"
        assert (mediator.ask(text).result.as_row_set()
                == fresh.ask(text).result.as_row_set())
        assert mediator.plan_templates.hits == 1

    def test_plan_templates_can_be_disabled(self):
        mediator = self._mediator(plan_templates=False)
        assert mediator.plan_templates is None
        mediator.plan(
            "select make, model from cars where make = 'BMW' and price < 40000"
        )
        second = mediator.plan(
            "select make, model from cars where make = 'Toyota' and price < 20000"
        )
        assert not second.planner.endswith("+template")

    def test_add_source_invalidates_templates(self):
        mediator = self._mediator()
        mediator.plan(
            "select make, model from cars where make = 'BMW' and price < 40000"
        )
        mediator.add_source(make_example41_source("cars2"))
        second = mediator.plan(
            "select make, model from cars where make = 'Toyota' and price < 20000"
        )
        assert not second.planner.endswith("+template")
        assert mediator.plan_templates.stats.invalidations >= 1

    def test_add_source_compiles_capabilities(self):
        mediator = self._mediator()
        assert mediator.source("cars").compiled
        # The catalog bump from a second add_source triggers a lazy
        # recompile of existing sources at the next plan.
        source = mediator.source("cars")
        source.invalidate_compiled()
        mediator.add_source(make_example41_source("cars2"))
        mediator.plan(
            "select make, model from cars where make = 'BMW' and price < 40000"
        )
        assert source.compiled

    def test_compilation_can_be_disabled(self):
        mediator = Mediator(compile_capabilities=False)
        mediator.add_source(make_example41_source())
        assert not mediator.source("cars").compiled


@pytest.mark.parametrize("reuse", [True, False])
def test_wrapper_compile_flag(reuse):
    from repro.wrapper import Wrapper

    source = make_example41_source()
    wrapper = Wrapper(source, reuse_templates=reuse)
    assert source.compiled
    result = wrapper.plan("make = 'BMW' and price < 40000", ["model"])
    assert result.stats.check_compiled > 0
