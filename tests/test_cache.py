"""Unit tests for the source-query result cache."""

import pytest

from repro.conditions.parser import parse_condition
from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.mediator import Mediator
from repro.plans.cache import ResultCache
from repro.plans.execute import Executor
from repro.plans.nodes import SourceQuery
from tests.conftest import make_example41_source

A = frozenset({"model"})


def rel(n, name="t"):
    schema = Schema.of(name, [("id", AttrType.INT)], key="id")
    return Relation(schema, [{"id": i} for i in range(n)])


def cond(text):
    return parse_condition(text)


class TestResultCache:
    def test_get_put_round_trip(self):
        cache = ResultCache(100)
        assert cache.get("s", cond("a = 1"), frozenset({"id"})) is None
        cache.put("s", cond("a = 1"), frozenset({"id"}), rel(5))
        hit = cache.get("s", cond("a = 1"), frozenset({"id"}))
        assert hit is not None and len(hit) == 5
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_key_includes_attributes_and_source(self):
        cache = ResultCache(100)
        cache.put("s", cond("a = 1"), frozenset({"id"}), rel(5))
        assert cache.get("s", cond("a = 1"), frozenset({"id", "b"})) is None
        assert cache.get("other", cond("a = 1"), frozenset({"id"})) is None

    def test_lru_eviction_by_tuples(self):
        cache = ResultCache(10)
        cache.put("s", cond("a = 1"), frozenset({"id"}), rel(6))
        cache.put("s", cond("a = 2"), frozenset({"id"}), rel(6))
        # First entry evicted: 12 > 10.
        assert cache.get("s", cond("a = 1"), frozenset({"id"})) is None
        assert cache.get("s", cond("a = 2"), frozenset({"id"})) is not None
        assert cache.stats.evictions == 1
        assert cache.cached_tuples == 6

    def test_recently_used_survives(self):
        cache = ResultCache(12)
        cache.put("s", cond("a = 1"), frozenset({"id"}), rel(5))
        cache.put("s", cond("a = 2"), frozenset({"id"}), rel(5))
        cache.get("s", cond("a = 1"), frozenset({"id"}))  # touch
        cache.put("s", cond("a = 3"), frozenset({"id"}), rel(5))
        assert cache.get("s", cond("a = 1"), frozenset({"id"})) is not None
        assert cache.get("s", cond("a = 2"), frozenset({"id"})) is None

    def test_oversized_result_not_admitted(self):
        cache = ResultCache(3)
        cache.put("s", cond("a = 1"), frozenset({"id"}), rel(10))
        assert len(cache) == 0

    def test_invalidate(self):
        cache = ResultCache(100)
        cache.put("s1", cond("a = 1"), frozenset({"id"}), rel(2))
        cache.put("s2", cond("a = 1"), frozenset({"id"}), rel(2))
        cache.invalidate("s1")
        assert cache.get("s1", cond("a = 1"), frozenset({"id"})) is None
        assert cache.get("s2", cond("a = 1"), frozenset({"id"})) is not None
        cache.invalidate()
        assert len(cache) == 0 and cache.cached_tuples == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_mutating_a_hit_does_not_corrupt_the_cache(self):
        # Regression: get() used to hand out the cached Relation by
        # reference, so a caller editing rows poisoned every later hit.
        cache = ResultCache(100)
        cache.put("s", cond("a = 1"), frozenset({"id"}), rel(3))
        hit = cache.get("s", cond("a = 1"), frozenset({"id"}))
        for row in hit:
            row["id"] = 999
        fresh = cache.get("s", cond("a = 1"), frozenset({"id"}))
        assert fresh.as_row_set() == {(0,), (1,), (2,)}

    def test_mutating_the_original_after_put_does_not_corrupt(self):
        cache = ResultCache(100)
        original = rel(3)
        cache.put("s", cond("a = 1"), frozenset({"id"}), original)
        for row in original:
            row["id"] = 999
        hit = cache.get("s", cond("a = 1"), frozenset({"id"}))
        assert hit.as_row_set() == {(0,), (1,), (2,)}


class TestCachedExecution:
    def test_second_execution_skips_the_source(self):
        source = make_example41_source()
        cache = ResultCache(1000)
        executor = Executor({"cars": source}, cache=cache)
        plan = SourceQuery(cond("make = 'BMW' and price < 40000"), A, "cars")
        first = executor.execute(plan)
        second = executor.execute(plan)
        assert first.as_row_set() == second.as_row_set()
        assert source.meter.queries == 1
        assert cache.stats.hits == 1

    def test_mediator_integration(self):
        mediator = Mediator(result_cache_tuples=10_000)
        mediator.add_source(make_example41_source())
        query = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
        a1 = mediator.ask(query)
        a2 = mediator.ask(query)
        assert a1.rows == a2.rows
        assert a2.report.queries == 0  # answered from cache
        assert mediator.result_cache.stats.hit_rate > 0

    def test_mediator_without_cache_requeries(self):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        query = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
        mediator.ask(query)
        again = mediator.ask(query)
        assert again.report.queries == 1

    def test_cache_hits_report_zero_measured_traffic(self):
        # Intended semantics, not a bug: execute_with_report measures
        # *source* traffic via the meters, so a plan answered entirely
        # from the result cache reports zero queries and zero tuples --
        # the optimizer's estimate and the measured cost diverge under
        # caching, and the meters tell you what the Internet saw.
        source = make_example41_source()
        cache = ResultCache(1000)
        executor = Executor({"cars": source}, cache=cache)
        plan = SourceQuery(cond("make = 'BMW' and price < 40000"), A, "cars")
        warm = executor.execute_with_report(plan)
        assert warm.queries == 1
        assert warm.tuples_transferred == 2
        hit = executor.execute_with_report(plan)
        assert hit.queries == 0
        assert hit.tuples_transferred == 0
        assert hit.measured_cost(100, 1) == 0.0
        assert hit.result.as_row_set() == warm.result.as_row_set()
        # The estimated cost of the plan is unchanged -- only the
        # measured side collapses.
        from repro.plans.cost import CostModel

        model = CostModel({"cars": source.stats})
        assert model.cost(plan) > 0.0
