"""Unit battery for the observability subsystem.

Covers the tracer (nesting, status, thread-local context, the
NullTracer disabled path), the metrics registry, the exporters, the
timeline renderer, ``Mediator.explain(trace=True)`` and the
``python -m repro.trace`` CLI.  The cross-thread and fault round-trip
integration layers live in ``tests/test_trace_integration.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.mediator import Mediator
from repro.observability import (
    DEFAULT_BUCKETS,
    Histogram,
    InMemoryCollector,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_metrics,
    get_tracer,
    orphan_spans,
    quantile_from_snapshot,
    read_jsonl,
    render_timeline,
    set_tracer,
    span_from_dict,
    span_to_dict,
    tree_shape,
    use_metrics,
    use_tracer,
    write_jsonl,
)
from repro.observability.trace import NULL_SPAN, STATUS_ERROR, STATUS_OK
from repro.trace import main as trace_main
from tests.conftest import make_example41_source


class TestTracer:
    def test_nesting_builds_parent_links(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert root.parent_id is None
        assert {s.trace_id for s in (root, child, grandchild)} == {
            root.trace_id
        }

    def test_finished_in_end_order_with_durations(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["inner", "outer"]
        for span in tracer.finished_spans():
            assert span.end is not None and span.end >= span.start
            assert span.duration >= 0.0

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        (span,) = tracer.finished_spans()
        assert span.status == STATUS_ERROR
        assert span.error == "ValueError: boom"
        (event,) = span.events
        assert event.name == "exception"
        assert event.attributes["exception_type"] == "ValueError"

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.finished_spans()
        assert first.trace_id != second.trace_id

    def test_attach_propagates_context_across_threads(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            token = tracer.current_context()

            def work():
                with tracer.attach(token):
                    with tracer.span("worker"):
                        pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        worker = next(
            s for s in tracer.finished_spans() if s.name == "worker"
        )
        assert worker.parent_id == root.span_id
        assert not orphan_spans(tracer.finished_spans())

    def test_event_lands_on_current_span(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.event("checkpoint", step=3)
        (span,) = tracer.finished_spans()
        assert span.events[0].name == "checkpoint"
        assert span.events[0].attributes == {"step": 3}
        tracer.event("dropped")  # no current span: silently ignored

    def test_exporter_sees_each_finished_span(self):
        tracer = Tracer()
        collector = InMemoryCollector()
        tracer.add_exporter(collector)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in collector.spans] == ["b", "a"]

    def test_reset_clears_collected_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.finished_spans() == []


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", key="value") as span:
            assert span is NULL_SPAN
            span.set_attribute("k", 1)
            span.add_event("e")
            tracer.event("e2")
        assert tracer.finished_spans() == []
        assert tracer.current_span is None
        assert not tracer.enabled

    def test_null_tracer_attach_is_a_noop(self):
        tracer = NullTracer()
        with tracer.attach(None):
            assert tracer.current_context() is None

    def test_null_tracer_rejects_exporters(self):
        with pytest.raises(ValueError):
            NullTracer().add_exporter(lambda span: None)

    def test_default_tracer_is_null(self):
        assert isinstance(get_tracer(), NullTracer)

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("inside"):
                pass
        assert isinstance(get_tracer(), NullTracer)
        assert [s.name for s in tracer.finished_spans()] == ["inside"]

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(Tracer())
        assert previous is NULL_TRACER
        set_tracer(None)
        assert isinstance(get_tracer(), NullTracer)


class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        registry.gauge("g").set(5)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3}
        assert snap["g"]["value"] == 3 and snap["g"]["max"] == 5
        assert snap["h"]["count"] == 2
        assert snap["h"]["mean"] == 2.0
        assert snap["h"]["min"] == 1.0 and snap["h"]["max"] == 3.0

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(7)
        registry.reset()
        assert registry.counter("c") is counter
        assert counter.value == 0

    def test_counters_reject_negative_and_kind_conflicts(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)
        registry.counter("dual")
        with pytest.raises(ValueError):
            registry.gauge("dual")

    def test_gauge_track_max_keeps_value(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(2)
        gauge.track_max(9)
        assert gauge.value == 2 and gauge.max_value == 9

    def test_format_is_human_readable(self):
        registry = MetricsRegistry()
        registry.counter("executor.attempts").inc(4)
        text = registry.format()
        assert "executor.attempts" in text and "counter" in text

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_source_publishes_into_swapped_registry(self):
        source = make_example41_source()
        from repro.conditions.parser import parse_condition

        condition = parse_condition("make = 'BMW' and price < 40000")
        with use_metrics(MetricsRegistry()) as registry:
            source.execute(condition, ["model"])
            snap = registry.snapshot()
        assert snap["source.cars.queries"]["value"] == 1
        assert snap["source.cars.tuples"]["value"] == 2
        assert get_metrics() is not registry


class TestHistogramQuantiles:
    def test_buckets_are_cumulative_with_le_semantics(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 9.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        # A value landing exactly on a boundary counts in that bucket.
        assert snap["buckets"] == [[1.0, 2], [2.0, 4], [5.0, 4]]
        assert snap["count"] == 5  # the 9.0 lives in the +Inf bucket

    def test_quantiles_interpolate_within_buckets(self):
        histogram = Histogram("h", buckets=(0.0, 10.0, 20.0))
        for value in range(1, 21):  # uniform on (0, 20]
            histogram.observe(float(value))
        assert histogram.quantile(0.5) == pytest.approx(10.0, abs=1.0)
        assert histogram.quantile(0.25) == pytest.approx(5.0, abs=1.0)
        assert histogram.quantile(1.0) == 20.0
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)

    def test_quantile_clamps_to_observed_range(self):
        histogram = Histogram("h", buckets=(100.0,))
        histogram.observe(3.0)
        histogram.observe(4.0)
        # The bucket spans [0, 100] but nothing below 3 was observed.
        assert 3.0 <= histogram.quantile(0.5) <= 4.0
        assert histogram.quantile(0.99) <= 4.0

    def test_overflow_bucket_reports_observed_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(50.0)
        assert histogram.quantile(0.99) == 50.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_quantile_rejects_out_of_range_q(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            quantile_from_snapshot(histogram.snapshot(), -0.1)

    def test_quantile_from_snapshot_matches_live_instrument(self):
        histogram = Histogram("h", buckets=DEFAULT_BUCKETS)
        for value in (0.002, 0.004, 0.03, 0.07, 0.4):
            histogram.observe(value)
        snap = histogram.snapshot()
        for q in (0.1, 0.5, 0.9, 0.99):
            assert quantile_from_snapshot(snap, q) == histogram.quantile(q)

    def test_registry_histogram_buckets_apply_on_first_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=(1.0, 2.0))
        again = registry.histogram("h", buckets=(9.0,))
        assert again is first
        assert first.boundaries == (1.0, 2.0)

    def test_format_includes_percentiles(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.002, 0.4):
            registry.histogram("h").observe(value)
        text = registry.format()
        assert "p50=" in text and "p99=" in text


class TestHistogramEdgeCases:
    def test_single_observation_quantiles_are_exact(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.5)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 1.5

    def test_single_observation_in_overflow_bucket(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(42.0)
        assert histogram.quantile(0.5) == 42.0
        assert histogram.quantile(0.999) == 42.0

    def test_quantile_from_snapshot_totality(self):
        # Every defensively-possible malformed reading yields 0.0, not
        # a raise: dashboards render whatever the registry serves.
        assert quantile_from_snapshot({}, 0.5) == 0.0
        assert quantile_from_snapshot({"count": 0}, 0.5) == 0.0
        assert quantile_from_snapshot({"count": None}, 0.5) == 0.0
        assert quantile_from_snapshot(
            {"count": 2, "min": None, "max": None, "buckets": []}, 0.5
        ) == 0.0

    def test_quantile_from_snapshot_single_observation(self):
        histogram = Histogram("h", buckets=DEFAULT_BUCKETS)
        histogram.observe(0.25)
        snap = histogram.snapshot()
        for q in (0.01, 0.5, 0.99):
            assert quantile_from_snapshot(snap, q) == 0.25

    def test_reset_then_quantile_is_defined(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        histogram.reset()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.snapshot()["count"] == 0
        assert histogram.min is None and histogram.max is None
        histogram.observe(2.0)  # reusable after reset
        assert histogram.quantile(0.5) == 2.0


class TestRegistryResetConsistency:
    def test_reset_is_one_consistent_pass_under_load(self):
        """reset() mirrors snapshot(): all locks first, zero everything,
        release -- so paired instruments never show one zeroed and the
        other mid-flight values from before the reset."""
        registry = MetricsRegistry()
        counter = registry.counter("asks")
        histogram = registry.histogram("ask_seconds")
        stop = threading.Event()

        def publish():
            while not stop.is_set():
                counter.inc()
                histogram.observe(0.001)

        workers = [threading.Thread(target=publish) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(25):
                registry.reset()
                snap = registry.snapshot()
                drift = snap["asks"]["value"] - snap["ask_seconds"]["count"]
                assert abs(drift) <= len(workers)
        finally:
            stop.set()
            for worker in workers:
                worker.join()

    def test_reset_handles_empty_and_single_observation(self):
        registry = MetricsRegistry()
        registry.reset()  # empty registry: a no-op, never a raise
        histogram = registry.histogram("h")
        registry.counter("c")
        registry.gauge("g").set(5.0)
        histogram.observe(1.0)  # a single observation
        registry.reset()
        snap = registry.snapshot()
        assert snap["h"]["count"] == 0
        assert snap["c"]["value"] == 0.0
        assert snap["g"]["value"] == 0.0
        assert registry.histogram("h").quantile(0.99) == 0.0


class TestRegistrySnapshotConsistency:
    def test_snapshot_is_mutually_consistent_under_load(self):
        """One registry-wide lock pass: a snapshot taken mid-storm must
        show the paired counter and histogram at the *same* step."""
        registry = MetricsRegistry()
        counter = registry.counter("asks")
        histogram = registry.histogram("ask_seconds")
        stop = threading.Event()

        def publish():
            while not stop.is_set():
                # Paired writes: the counter and histogram move together
                # under the instruments' own locks...
                counter.inc()
                histogram.observe(0.001)

        workers = [threading.Thread(target=publish) for _ in range(8)]
        for worker in workers:
            worker.start()
        try:
            drifts = []
            for _ in range(50):
                snap = registry.snapshot()
                drifts.append(snap["asks"]["value"]
                              - snap["ask_seconds"]["count"])
            # ...so a consistent snapshot can drift by at most one
            # in-between-the-two-writes step per publisher thread.
            assert all(abs(drift) <= len(workers) for drift in drifts)
        finally:
            stop.set()
            for worker in workers:
                worker.join()


class TestSpanSerialization:
    def test_dict_round_trip_is_lossless(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("parent", depth=0):
                with tracer.span("child", kind="unit") as child:
                    child.add_event("tick", n=1)
                    raise RuntimeError("nope")
        for span in tracer.finished_spans():
            assert span_from_dict(span_to_dict(span)) == span

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child", answer=42):
                pass
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(tracer.finished_spans(), path) == 2
        reloaded = read_jsonl(path)
        assert reloaded == tracer.finished_spans()
        assert tree_shape(reloaded) == tree_shape(tracer.finished_spans())


class TestTimeline:
    def test_renders_nested_spans_with_attributes(self):
        tracer = Tracer()
        with tracer.span("mediator.ask", query="q"):
            with tracer.span("planner.plan", Q=3, pr1_fires=2):
                pass
        text = render_timeline(tracer.finished_spans())
        assert "mediator.ask" in text
        assert "planner.plan" in text and "Q=3" in text
        assert "ms" in text and "█" in text
        # The child line is indented under its parent (skip the
        # per-trace header line, which also names the root span).
        span_lines = [line for line in text.splitlines() if "|" in line]
        ask = next(line for line in span_lines if "mediator.ask" in line)
        plan = next(line for line in span_lines if "planner.plan" in line)
        assert plan.index("planner") > ask.index("mediator")

    def test_error_spans_are_marked(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("kaput")
        text = render_timeline(tracer.finished_spans())
        assert "!" in text and "kaput" in text

    def test_empty_trace(self):
        assert "no spans" in render_timeline([])


class TestMediatorIntegration:
    QUERY = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"

    def _mediator(self):
        mediator = Mediator()
        mediator.add_source(make_example41_source())
        return mediator

    def test_ask_produces_a_connected_trace(self):
        mediator = self._mediator()
        with use_tracer(Tracer()) as tracer:
            mediator.ask(self.QUERY)
        spans = tracer.finished_spans()
        names = {s.name for s in spans}
        assert {"mediator.ask", "mediator.plan", "planner.plan",
                "planner.rewrite", "planner.generate", "mediator.execute",
                "executor.source_call", "source.service"} <= names
        assert not orphan_spans(spans)
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["mediator.ask"]

    def test_planner_span_carries_q_and_pruning_fires(self):
        mediator = self._mediator()
        with use_tracer(Tracer()) as tracer:
            mediator.plan(self.QUERY)
        plan_span = next(
            s for s in tracer.finished_spans() if s.name == "planner.plan"
        )
        for key in ("Q", "pr1_fires", "pr2_fires", "pr3_fires",
                    "rewrite_budget_spent"):
            assert key in plan_span.attributes

    def test_source_call_span_carries_attempt_accounting(self):
        mediator = self._mediator()
        with use_tracer(Tracer()) as tracer:
            mediator.ask(self.QUERY)
        call = next(
            s for s in tracer.finished_spans()
            if s.name == "executor.source_call"
        )
        assert call.attributes["attempts"] == 1
        assert call.attributes["retries"] == 0
        assert call.attributes["worker"] == threading.current_thread().name
        assert call.status == STATUS_OK

    def test_execution_report_is_self_contained(self):
        mediator = self._mediator()
        answer = mediator.ask(self.QUERY)
        report = answer.report
        assert report.duration_seconds > 0.0
        assert set(report.per_source) == {"cars"}
        delta = report.per_source["cars"]
        assert delta.queries == report.queries == 1
        assert delta.tuples == report.tuples_transferred

    def test_short_circuit_report_has_empty_breakdown(self):
        mediator = self._mediator()
        answer = mediator.ask(
            "SELECT model FROM cars WHERE price < 10 and price > 20"
        )
        assert answer.report.per_source == {}
        assert answer.report.duration_seconds == 0.0

    def test_explain_trace_appends_timeline(self):
        mediator = self._mediator()
        text = mediator.explain(self.QUERY, trace=True)
        assert "planner.rewrite" in text
        assert "pr1_fires=" in text
        assert "SP(" in text  # the plan rendering is still there
        plain = mediator.explain(self.QUERY)
        assert "planner.rewrite" not in plain

    def test_untraced_ask_records_nothing(self):
        mediator = self._mediator()
        mediator.ask(self.QUERY)
        assert get_tracer().finished_spans() == []


class TestTraceCli:
    QUERY = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"

    def test_prints_planner_and_source_spans(self, capsys):
        assert trace_main([self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "planner.generate" in out
        assert "Q=" in out and "pr1_fires=" in out
        assert "executor.source_call" in out
        assert "attempts=" in out and "retries=" in out
        assert "executed in" in out

    def test_parallel_workers_and_exports(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = trace_main([
            "SELECT title FROM bookstore WHERE author = 'Carl Jung' "
            "or subject = 'philosophy'",
            "--workers", "4", "--metrics", "--jsonl", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "source.bookstore.queries" in out
        spans = read_jsonl(path)
        assert spans and not orphan_spans(spans)

    def test_bad_query_is_an_error(self, capsys):
        assert trace_main(["SELECT nope FROM nowhere WHERE x = 1"]) == 1
        assert "error:" in capsys.readouterr().err
