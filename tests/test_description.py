"""Unit tests for SourceDescription / Check -- the paper's Section 4."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import GrammarError
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.text import parse_ssdl
from tests.conftest import EXAMPLE_41_SSDL


@pytest.fixture
def desc():
    return parse_ssdl(EXAMPLE_41_SSDL, name="example41")


class TestCheckPaperCases:
    """The exact Check() interactions walked through in Section 4."""

    def test_s1_exports(self, desc):
        result = desc.check(parse_condition("make = 'BMW' and price < 40000"))
        assert result
        assert result.attribute_sets == frozenset(
            {frozenset({"make", "model", "year", "color"})}
        )
        assert result.matched == ("s1",)

    def test_s2_exports(self, desc):
        result = desc.check(parse_condition("make = 'BMW' and color = 'red'"))
        assert result.attribute_sets == frozenset(
            {frozenset({"make", "model", "year"})}
        )

    def test_n1_supported_for_model_year(self, desc):
        # "A is a subset of Check(Cond(n1), R) ... so SP(n1, A, R) is a
        # supported query."
        n1 = parse_condition("make = 'BMW' and price < 40000")
        assert desc.supports(n1, {"model", "year"})

    def test_n2_unsupported(self, desc):
        # "the second source query SP(n2, A, R) is not supported" --
        # n2 = (color = red or color = black) parses under no rule.
        n2 = parse_condition("color = 'red' or color = 'black'")
        assert not desc.check(n2)
        assert not desc.supports(n2, {"model", "year"})

    def test_s2_cannot_export_color(self, desc):
        condition = parse_condition("make = 'BMW' and color = 'red'")
        assert not desc.supports(condition, {"color"})
        assert desc.supports(condition, {"make", "model", "year"})

    def test_order_sensitivity(self, desc):
        # Section 6.1: (color = red ^ make = BMW) cannot be evaluated.
        assert not desc.check(parse_condition("color = 'red' and make = 'BMW'"))

    def test_download_not_allowed(self, desc):
        assert not desc.check(TRUE)

    def test_whole_condition_of_figure_1_unsupported(self, desc):
        condition = parse_condition(
            "(make = 'BMW' and price < 40000) and "
            "(color = 'red' or color = 'black')"
        )
        assert not desc.check(condition)


class TestCheckResult:
    def test_family_semantics(self):
        # A condition matching two nonterminals with different exports.
        desc = (
            DescriptionBuilder("multi")
            .rule("f1", "a = $str", attributes=["a", "b"])
            .rule("f2", "a = $str", attributes=["a", "c"])
            .build()
        )
        result = desc.check(parse_condition("a = 'x'"))
        assert len(result.attribute_sets) == 2
        assert result.supports({"b"})
        assert result.supports({"c"})
        # But never both at once: they come from different forms.
        assert not result.supports({"b", "c"})
        assert result.exported == {"a", "b", "c"}

    def test_best_set_for(self):
        desc = (
            DescriptionBuilder("multi")
            .rule("f1", "a = $str", attributes=["a", "b", "c", "d"])
            .rule("f2", "a = $str", attributes=["a", "b"])
            .build()
        )
        result = desc.check(parse_condition("a = 'x'"))
        assert result.best_set_for({"a"}) == frozenset({"a", "b"})
        assert result.best_set_for({"c"}) == frozenset({"a", "b", "c", "d"})
        assert result.best_set_for({"z"}) is None

    def test_empty_check_is_falsy(self, desc):
        result = desc.check(parse_condition("year = 1999"))
        assert not result
        assert result.exported == frozenset()


class TestCaching:
    def test_cache_hits_counted(self, desc):
        condition = parse_condition("make = 'BMW' and price < 40000")
        desc.check(condition)
        misses = desc.check_calls
        desc.check(condition)
        desc.check(condition)
        assert desc.check_calls == misses
        assert desc.check_cache_hits >= 2


class TestValidation:
    def test_condition_nt_needs_productions(self):
        with pytest.raises(GrammarError):
            parse_ssdl("s -> s1\nattributes s1 : a")

    def test_condition_nt_needs_attributes(self):
        with pytest.raises((GrammarError, Exception)):
            parse_ssdl("s -> s1\ns1 -> a = $str")

    def test_helper_nts_may_not_have_attributes(self):
        from repro.ssdl.description import SourceDescription
        from repro.ssdl.symbols import Template, ConstClass
        from repro.conditions.atoms import Op

        template = Template("a", Op.EQ, ConstClass.STR)
        with pytest.raises(GrammarError):
            SourceDescription(
                condition_nonterminals=["s1"],
                productions={"s1": [[template]], "h": [[template]]},
                attributes={"s1": ["a"], "h": ["a"]},
            )

    def test_needs_a_condition_nonterminal(self):
        from repro.ssdl.description import SourceDescription

        with pytest.raises(GrammarError):
            SourceDescription([], {}, {})

    def test_introspection_helpers(self, desc):
        assert desc.all_attributes() == {"make", "model", "year", "color"}
        assert desc.rule_count() == 2
        assert len(desc.templates()) == 3
