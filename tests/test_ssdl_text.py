"""Unit tests for the textual SSDL syntax and the builder."""

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import SSDLError, SSDLParseError
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.text import format_ssdl, parse_ssdl


class TestParseSSDL:
    def test_example_41(self):
        desc = parse_ssdl(
            """
            # the paper's Example 4.1
            s  -> s1 | s2
            s1 -> make = $m and price < $p
            s2 -> make = $m and color = $c
            attributes s1 : make, model, year, color
            attributes s2 : make, model, year
            """
        )
        assert desc.condition_nonterminals == ("s1", "s2")
        assert desc.attributes["s2"] == frozenset({"make", "model", "year"})
        assert desc.check(parse_condition("make = 'BMW' and price < 40000"))

    def test_alternatives_and_helpers(self):
        desc = parse_ssdl(
            """
            s -> form
            form -> size = $str | ( size_list )
            size_list -> size = $str or size = $str | size = $str or size_list
            attributes form : id, size
            """
        )
        assert desc.check(parse_condition("size = 'compact'"))
        assert desc.check(
            parse_condition("size = 'compact' or size = 'midsize'")
        )
        assert desc.check(
            parse_condition(
                "size = 'a' or size = 'b' or size = 'c' or size = 'd'"
            )
        )
        assert not desc.check(parse_condition("size != 'compact'"))

    def test_literal_templates(self):
        desc = parse_ssdl(
            """
            s -> sedans
            sedans -> style = 'sedan' and make = $str
            attributes sedans : make
            """
        )
        assert desc.check(parse_condition("style = 'sedan' and make = 'BMW'"))
        assert not desc.check(parse_condition("style = 'coupe' and make = 'BMW'"))

    def test_numeric_literal_template(self):
        desc = parse_ssdl(
            "s -> y\ny -> year = 1999\nattributes y : year"
        )
        assert desc.check(parse_condition("year = 1999"))
        assert not desc.check(parse_condition("year = 1998"))

    def test_true_rule(self):
        from repro.conditions.tree import TRUE

        desc = parse_ssdl("s -> dl\ndl -> true\nattributes dl : a, b")
        assert desc.check(TRUE)

    def test_in_template(self):
        desc = parse_ssdl(
            "s -> f\nf -> size in $list\nattributes f : size"
        )
        assert desc.check(parse_condition("size in ('a', 'b')"))
        assert not desc.check(parse_condition("size = 'a'"))

    def test_contains_template(self):
        desc = parse_ssdl(
            "s -> f\nf -> title contains $str\nattributes f : title"
        )
        assert desc.check(parse_condition("title contains 'dreams'"))


class TestParseErrors:
    def test_missing_start_rule(self):
        with pytest.raises(SSDLParseError):
            parse_ssdl("s1 -> make = $m\nattributes s1 : make")

    def test_start_alternatives_must_be_single_nts(self):
        with pytest.raises(SSDLParseError):
            parse_ssdl("s -> make = $m\nattributes s : make")

    def test_duplicate_start_rule(self):
        with pytest.raises(SSDLParseError):
            parse_ssdl(
                "s -> s1\ns -> s2\ns1 -> a = $str\ns2 -> a = $str\n"
                "attributes s1 : a\nattributes s2 : a"
            )

    def test_unknown_const_class(self):
        with pytest.raises(SSDLParseError):
            parse_ssdl("s -> s1\ns1 -> a = $wat\nattributes s1 : a")

    def test_garbage_line(self):
        with pytest.raises(SSDLParseError):
            parse_ssdl("s -> s1\nthis is not a rule at all!")

    def test_template_missing_constant(self):
        with pytest.raises(SSDLParseError):
            parse_ssdl("s -> s1\ns1 -> a =\nattributes s1 : a")

    def test_error_carries_line_number(self):
        with pytest.raises(SSDLParseError) as err:
            parse_ssdl("s -> s1\ns1 -> a = $wat\nattributes s1 : a")
        assert err.value.line == 2


class TestRoundTrip:
    def test_format_parse_round_trip(self):
        original = parse_ssdl(
            """
            s -> s1 | s2
            s1 -> make = $str and price < $num
            s2 -> style = 'sedan' and ( colors )
            colors -> color = $str or color = $str
            attributes s1 : make, model
            attributes s2 : make
            """
        )
        text = format_ssdl(original)
        reparsed = parse_ssdl(text)
        assert reparsed.condition_nonterminals == original.condition_nonterminals
        assert reparsed.attributes == original.attributes
        probe = parse_condition("make = 'BMW' and price < 40000")
        assert bool(reparsed.check(probe)) == bool(original.check(probe))


class TestBuilder:
    def test_builds_equivalent_description(self):
        desc = (
            DescriptionBuilder("b")
            .rule("s1", "make = $str and price < $num",
                  attributes=["make", "model"])
            .build()
        )
        assert desc.supports(
            parse_condition("make = 'BMW' and price < 1"), {"model"}
        )

    def test_rule_accumulates_alternatives(self):
        desc = (
            DescriptionBuilder("b")
            .rule("s1", "a = $str", attributes=["a"])
            .rule("s1", "b = $str", attributes=["b"])
            .build()
        )
        assert desc.check(parse_condition("a = 'x'"))
        assert desc.check(parse_condition("b = 'x'"))
        assert desc.attributes["s1"] == frozenset({"a", "b"})

    def test_helper_cannot_shadow_condition_nt(self):
        builder = DescriptionBuilder("b").rule("s1", "a = $str", attributes=["a"])
        with pytest.raises(SSDLError):
            builder.helper("s1", "b = $str")

    def test_missing_attributes_detected_at_build(self):
        builder = DescriptionBuilder("b")
        builder.rule("s1", "a = $str")
        with pytest.raises(SSDLError):
            builder.build()
