"""Contract tests every planner must satisfy, over a mixed corpus.

These pin the `Planner` interface's semantics -- the guarantees other
modules (mediator, wrapper, joins, experiments) silently rely on:

1. the returned plan (if any) produces exactly the query's attributes;
2. feasibility implies independent validation succeeds;
3. infeasibility is reported as plan=None + infinite cost;
4. stats are populated sanely;
5. planning is deterministic (same inputs, same plan cost);
6. the planner never mutates the query or the source description.
"""

import math

import pytest

from repro.conditions.parser import parse_condition
from repro.planners.baselines import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    NaivePlanner,
)
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.plans.cost import CostModel
from repro.plans.feasible import validate_plan
from repro.query import TargetQuery
from tests.conftest import make_example41_source

PLANNERS = [
    GenCompact(),
    GenModular(max_rewrites=25),
    CNFPlanner(),
    DNFPlanner(),
    DiscoPlanner(),
    NaivePlanner(),
]

CORPUS = [
    ("make = 'BMW' and price < 40000", ("model",)),
    ("make = 'BMW' and color = 'red'", ("model", "year")),
    ("price < 40000 and color = 'red' and make = 'BMW'", ("model",)),
    ("(make = 'BMW' and price < 40000) or (make = 'Toyota' and price < 30000)",
     ("model",)),
    ("year = 1999", ("model",)),                      # infeasible for all
    ("make = 'BMW' and color = 'red'", ("color",)),   # unexportable
]


@pytest.fixture(scope="module")
def source():
    return make_example41_source()


@pytest.fixture(scope="module")
def model(source):
    return CostModel({source.name: source.stats})


def queries():
    return [
        TargetQuery(parse_condition(text), frozenset(attrs), "cars")
        for text, attrs in CORPUS
    ]


@pytest.mark.parametrize("planner", PLANNERS, ids=lambda p: p.name)
class TestContracts:
    def test_output_attributes_match_query(self, planner, source, model):
        for query in queries():
            result = planner.plan(query, source, model)
            if result.feasible:
                assert result.plan.attributes == query.attributes, query

    def test_feasible_plans_validate(self, planner, source, model):
        for query in queries():
            result = planner.plan(query, source, model)
            if result.feasible:
                assert validate_plan(result.plan, {"cars": source}), (
                    planner.name, query,
                )

    def test_infeasible_reported_consistently(self, planner, source, model):
        for query in queries():
            result = planner.plan(query, source, model)
            assert (result.plan is None) == (not result.feasible)
            if not result.feasible:
                assert math.isinf(result.cost)
            else:
                assert math.isfinite(result.cost) and result.cost >= 0

    def test_cost_matches_cost_model(self, planner, source, model):
        for query in queries():
            result = planner.plan(query, source, model)
            if result.feasible:
                assert result.cost == pytest.approx(model.cost(result.plan))

    def test_stats_populated(self, planner, source, model):
        result = planner.plan(queries()[0], source, model)
        assert result.stats.elapsed_sec >= 0
        assert result.stats.check_calls >= 1
        assert result.planner == planner.name
        assert result.query == queries()[0]

    def test_deterministic(self, planner, source, model):
        for query in queries()[:3]:
            first = planner.plan(query, source, model)
            second = planner.plan(query, source, model)
            assert first.feasible == second.feasible
            if first.feasible:
                assert first.cost == pytest.approx(second.cost)
                assert first.plan == second.plan

    def test_inputs_not_mutated(self, planner, source, model):
        query = queries()[2]
        condition_before = query.condition
        rules_before = source.description.rule_count()
        closed_rules_before = source.closed_description.rule_count()
        planner.plan(query, source, model)
        assert query.condition == condition_before
        assert source.description.rule_count() == rules_before
        assert source.closed_description.rule_count() == closed_rules_before

    def test_no_source_traffic_during_planning(self, planner, source, model):
        before = source.meter.snapshot()
        for query in queries():
            planner.plan(query, source, model)
        delta = source.meter.snapshot() - before
        assert delta.queries == 0 and delta.rejected == 0
