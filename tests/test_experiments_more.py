"""Shape tests for the remaining experiments (E3, E4, E10) and misc
experiment plumbing."""

import pytest

from repro.experiments.e3_planning_time import run as run_e3
from repro.experiments.e4_search_space import run as run_e4
from repro.experiments.e10_cost_sensitivity import run as run_e10
from repro.experiments.report import Table


@pytest.fixture(scope="module")
def e3():
    return run_e3(quick=True)


@pytest.fixture(scope="module")
def e4():
    return run_e4(quick=True)


class TestE3PlanningTime:
    def test_genmodular_never_wins_on_cost(self, e3):
        assert all(row[7] == 0 for row in e3.rows)

    def test_every_query_counted(self, e3):
        for row in e3.rows:
            assert row[5] + row[6] + row[7] == row[1]

    def test_small_queries_show_speedup(self, e3):
        # At 3 atoms GenModular's budget covers its space and GenCompact
        # is strictly faster.
        first = e3.rows[0]
        assert first[0] == 3
        assert first[4] > 1.0


class TestE4SearchSpace:
    def test_gencompact_processes_fewer_cts(self, e4):
        for row in e4.rows:
            assert row[4] <= row[1]

    def test_counters_positive(self, e4):
        for row in e4.rows:
            assert row[2] > 0 and row[5] > 0


class TestE10CostSensitivity:
    def test_envelope_and_crossover(self):
        table = run_e10(quick=True)
        assert all(row[5] == "yes" for row in table.rows)
        queries = table.column("GC queries")
        assert all(b <= a for a, b in zip(queries, queries[1:]))
        assert queries[0] > queries[-1]  # the crossover happens

    def test_gc_cost_monotone_in_k1(self):
        table = run_e10(quick=True)
        costs = table.column("GC cost")
        assert all(b >= a for a, b in zip(costs, costs[1:]))


class TestReportTable:
    def test_unknown_column_raises(self):
        table = Table("t", ["a"])
        with pytest.raises(ValueError):
            table.column("missing")

    def test_format_handles_mixed_types(self):
        table = Table("t", ["x", "y"])
        table.add("text", 1.23456)
        out = table.format()
        assert "1.23" in out and "text" in out
