"""The compiled Check path: token-trie recognizer vs. the Earley parse.

Covers the offline compiler (:mod:`repro.ssdl.compiled`), the
description-level integration (compile / fallback / invalidation), the
Check-cache fixes (``cache_checks=False`` must not store; the cache and
its counters must reconcile under threads; the LRU bound must hold), and
compiled-vs-Earley parity over the golden grammar corpus -- including
the parenthesized-connector spellings that historically needed a
workaround.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.conditions.parser import parse_condition
from repro.observability.metrics import get_metrics
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.query import TargetQuery
from repro.source.library import standard_catalog
from repro.ssdl.description import SourceDescription
from repro.ssdl.text import parse_ssdl
from repro.workloads.synthetic import WorldConfig, make_source, random_condition

from tests.conftest import EXAMPLE_41_SSDL


def earley_twin(description: SourceDescription) -> SourceDescription:
    """A fresh, never-compiled copy of a description (the reference)."""
    return SourceDescription(
        description.condition_nonterminals,
        description.productions,
        description.attributes,
        name=f"{description.name}-earley",
    )


@pytest.fixture
def example41_description() -> SourceDescription:
    return parse_ssdl(EXAMPLE_41_SSDL, name="example41")


# ----------------------------------------------------------------------
# The compiler itself
# ----------------------------------------------------------------------

class TestCompilation:
    def test_compiles_example41(self, example41_description):
        report = example41_description.compile()
        assert report.compiled
        assert example41_description.compiled
        assert report.sequences > 0
        assert report.states > 0
        assert report.horizon > 0
        assert "compiled" in str(report)

    def test_budget_exceeded_stays_earley(self, example41_description):
        before = get_metrics().counter("ssdl.compile.budget_exceeded").value
        report = example41_description.compile(max_sequences=1)
        assert not report.compiled
        assert "1" in report.reason
        assert not example41_description.compiled
        after = get_metrics().counter("ssdl.compile.budget_exceeded").value
        assert after == before + 1
        # Check still works (Earley), and reports no fallback: there is
        # no compiled form to fall back *from*.
        result = example41_description.check(
            parse_condition("make = 'BMW' and price < 20000")
        )
        assert result.matched == ("s1",)
        assert example41_description.check_fallbacks == 0
        assert str(report).startswith("not compiled")

    def test_invalidate_compiled_drops_the_form(self, example41_description):
        example41_description.compile()
        assert example41_description.compiled
        example41_description.invalidate_compiled()
        assert not example41_description.compiled
        assert example41_description.compilation is None
        result = example41_description.check(
            parse_condition("make = 'BMW' and color = 'red'")
        )
        assert result.matched == ("s2",)

    def test_every_library_grammar_compiles_within_budget(self):
        for source in standard_catalog(seed=7).values():
            for description in (source.description, source.closed_description):
                report = earley_twin(description).compile()
                assert report.compiled, (
                    f"{description.name} blew the default budget: "
                    f"{report.reason}"
                )

    def test_compiled_answers_are_counted(self, example41_description):
        example41_description.compile()
        example41_description.check(parse_condition("make = 'BMW' and price < 1"))
        assert example41_description.check_compiled == 1
        assert example41_description.check_fallbacks == 0


# ----------------------------------------------------------------------
# Fallback: conditions beyond the horizon
# ----------------------------------------------------------------------

class TestFallback:
    def test_long_condition_falls_back_to_earley(self, example41_description):
        # A horizon of 3 tokens cannot hold "make = $m and price < $p"
        # (5 tokens), so every conjunctive Check must fall back.
        report = example41_description.compile(max_tokens=3)
        assert report.compiled  # compiled, just with a tiny horizon
        before = get_metrics().counter("ssdl.check.fallback").value
        result = example41_description.check(
            parse_condition("make = 'BMW' and price < 20000")
        )
        assert result.matched == ("s1",)
        assert example41_description.check_fallbacks == 1
        assert get_metrics().counter("ssdl.check.fallback").value == before + 1

    def test_fallback_result_equals_reference(self, example41_description):
        example41_description.compile(max_tokens=3)
        twin = earley_twin(example41_description)
        for text in (
            "make = 'BMW' and price < 20000",
            "make = 'BMW' and color = 'red'",
            "price < 20000",
        ):
            condition = parse_condition(text)
            assert example41_description.check(condition) == twin.check(condition)


# ----------------------------------------------------------------------
# Satellite 1: cache_checks=False must not populate the cache
# ----------------------------------------------------------------------

class TestCacheDisabled:
    def test_no_store_when_caching_off(self, example41_description):
        off = SourceDescription(
            example41_description.condition_nonterminals,
            example41_description.productions,
            example41_description.attributes,
            cache_checks=False,
        )
        conditions = [
            parse_condition(f"make = 'M{i}' and price < {1000 + i}")
            for i in range(50)
        ]
        for condition in conditions:
            off.check(condition)
            off.check(condition)  # the repeat must also miss
        assert off.check_cache_size() == 0  # memory stays flat
        assert off.check_calls == 100
        assert off.check_cache_hits == 0

    def test_lru_bound_holds(self, example41_description):
        bounded = SourceDescription(
            example41_description.condition_nonterminals,
            example41_description.productions,
            example41_description.attributes,
            check_cache_entries=4,
        )
        for i in range(40):
            bounded.check(parse_condition(f"make = 'M{i}' and price < 10"))
        assert bounded.check_cache_size() == 4
        # The most recent condition is retained, the oldest evicted.
        bounded.check(parse_condition("make = 'M39' and price < 10"))
        assert bounded.check_cache_hits == 1
        bounded.check(parse_condition("make = 'M0' and price < 10"))
        assert bounded.check_cache_hits == 1

    def test_rejects_nonpositive_cache_bound(self, example41_description):
        from repro.errors import GrammarError

        with pytest.raises(GrammarError):
            SourceDescription(
                example41_description.condition_nonterminals,
                example41_description.productions,
                example41_description.attributes,
                check_cache_entries=0,
            )


# ----------------------------------------------------------------------
# Satellite 2: counters and cache reconcile under threads
# ----------------------------------------------------------------------

class TestThreadedCheck:
    @pytest.mark.parametrize("compile_first", [False, True])
    def test_sixteen_threads_reconcile(self, example41_description,
                                       compile_first):
        if compile_first:
            assert example41_description.compile().compiled
        conditions = [
            parse_condition(f"make = 'M{i % 7}' and price < {100 + i % 5}")
            for i in range(35)
        ]
        per_thread = 200
        n_threads = 16
        errors: list[BaseException] = []
        barrier = threading.Barrier(n_threads)

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                barrier.wait()
                for _ in range(per_thread):
                    condition = rng.choice(conditions)
                    result = example41_description.check(condition)
                    assert result.matched == ("s1",)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        invocations = n_threads * per_thread
        # The leak-free invariant: every invocation is either a parse or
        # a cache hit -- lost updates under contention would break this.
        assert (example41_description.check_calls
                + example41_description.check_cache_hits) == invocations
        assert example41_description.check_cache_size() <= len(conditions)
        if compile_first:
            assert (example41_description.check_compiled
                    == example41_description.check_calls)


# ----------------------------------------------------------------------
# Satellite 3 + parity: compiled == Earley over the golden corpus
# ----------------------------------------------------------------------

#: Condition spellings exercising every grammar quirk: bare and nested
#: connectors, parenthesized-group rules, reversed slot orders.
PARITY_CORPUS = {
    "bookstore": [
        "author = 'Carl Jung'",
        "author = 'Carl Jung' and title contains 'memory'",
        "(author = 'Sigmund Freud' or author = 'Anna Freud') "
        "and title contains 'childhood'",
        "subject = 'philosophy' and title contains 'will'",
        "author = 'Carl Jung' or author = 'Anna Freud'",
    ],
    "car_guide": [
        "make = 'BMW'",
        "price <= 12000 and make = 'Ford'",
        "style = 'wagon' and (size = 'compact' or size = 'fullsize')",
        "(make = 'Honda' and price <= 16000) or "
        "(make = 'Toyota' and price <= 14000)",
        # The parenthesized-group rule "( size_list )" as the *whole*
        # condition (serialized bare) and nested (serialized wrapped).
        "size = 'compact' or size = 'fullsize'",
        "size = 'compact' or size = 'midsize' or size = 'fullsize'",
        "make = 'BMW' and (size = 'compact' or size = 'fullsize')",
        "id = 17",
        "true",
    ],
    "bank": [
        "branch = 'airport' and type = 'savings'",
        "account_no = 12345",
        "owner = 'somebody'",
    ],
    "flights": [
        "origin = 'SEA' and destination = 'MIA' and price <= 700",
        "origin = 'SEA' and destination = 'MIA'",
    ],
    "classifieds": [
        "make = 'Toyota'",
        "price <= 15000 and color = 'red'",
        "true",
    ],
}


@pytest.mark.parametrize("source_name", sorted(PARITY_CORPUS))
def test_compiled_matches_earley_on_golden_corpus(source_name):
    source = standard_catalog(seed=1999)[source_name]
    for description in (source.description, source.closed_description):
        compiled = earley_twin(description)
        assert compiled.compile().compiled
        reference = earley_twin(description)
        for text in PARITY_CORPUS[source_name]:
            condition = parse_condition(text)
            got = compiled.check(condition)
            want = reference.check(condition)
            assert got == want, (
                f"{description.name}: compiled and Earley disagree on "
                f"{text!r}: {got} vs {want}"
            )
        # Everything short was answered by the trie, not by fallback.
        assert compiled.check_compiled > 0


def test_compiled_matches_earley_on_random_worlds():
    config = WorldConfig(n_attributes=6, n_rows=50, richness=0.8,
                         download_prob=0.5, seed=131)
    source = make_source(config)
    for description in (source.description, source.closed_description):
        compiled = earley_twin(description)
        assert compiled.compile().compiled
        reference = earley_twin(description)
        rng = random.Random(313)
        for _ in range(120):
            condition = random_condition(config, rng.randint(1, 4), rng)
            assert compiled.check(condition) == reference.check(condition), (
                f"{description.name} disagrees on {condition}"
            )


# ----------------------------------------------------------------------
# Planner threading: compiled counters surface in PlannerStats
# ----------------------------------------------------------------------

def test_gencompact_reports_compiled_checks(example41):
    example41.compile_capabilities()
    cost_model = CostModel({example41.name: example41.stats})
    query = TargetQuery(
        parse_condition("make = 'BMW' and price < 40000"),
        frozenset({"make", "model"}),
        example41.name,
    )
    result = GenCompact().plan(query, example41, cost_model)
    assert result.feasible
    assert result.stats.check_calls > 0
    assert result.stats.check_compiled > 0
    assert result.stats.check_fallbacks == 0


def test_source_compile_capabilities_reports(example41):
    reports = example41.compile_capabilities()
    assert reports["native"].compiled
    assert "closed" not in reports or reports["closed"].compiled
    assert example41.compiled
    example41.invalidate_compiled()
    assert not example41.compiled


def test_planner_stats_merge_includes_compiled_counters():
    from repro.planners.base import PlannerStats

    a = PlannerStats(check_calls=3, check_compiled=2, check_fallbacks=1)
    b = PlannerStats(check_calls=5, check_compiled=4, check_fallbacks=0)
    a.merge(b)
    assert a.check_calls == 8
    assert a.check_compiled == 6
    assert a.check_fallbacks == 1
