"""Adversarial SSDL: hostile grammar generation, compiled/Earley
parity, and exact budget/fallback counter reconciliation."""

from __future__ import annotations

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import And, Leaf
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.ssdl.commute import commutation_closure
from repro.workloads.adversarial import (
    AdversarialGrammar,
    AdversarialSSDLWorkload,
)


class TestAdversarialGrammar:
    def test_twins_share_the_language_but_no_state(self):
        grammar = AdversarialGrammar(seed=42)
        left, right = grammar.build(), grammar.build()
        assert left is not right
        assert left.productions == right.productions
        assert left.attributes == right.attributes
        assert left.condition_nonterminals == right.condition_nonterminals

    def test_base_condition_is_deeply_ambiguous(self):
        grammar = AdversarialGrammar(seed=42, ambiguity=3)
        description = grammar.build()
        attr, op, _ = grammar._atom_rules[0]
        value = "v1" if op in (Op.EQ, Op.CONTAINS) else 5
        result = description.check(Leaf(Atom(attr, op, value)))
        # amb0..amb2 and the helper chain's bottom all match.
        assert len(result.matched) >= 4
        # Ambiguous nonterminals export *different* attribute sets.
        assert len(result.attribute_sets) >= 3

    def test_closure_explodes_factorially(self):
        grammar = AdversarialGrammar(seed=7, segments=6)
        native = grammar.build()
        closed = commutation_closure(native)
        # Each 6-segment wide rule becomes 720 permutations.
        assert closed.rule_count() > 10 * native.rule_count()
        assert closed.rule_count() >= 720

    def test_condition_pool_is_seeded(self):
        grammar = AdversarialGrammar(seed=9)
        assert grammar.conditions(5, 30) == grammar.conditions(5, 30)
        assert grammar.conditions(5, 30) != grammar.conditions(6, 30)

    def test_compiled_matches_earley_on_the_pool(self):
        grammar = AdversarialGrammar(seed=11)
        compiled, twin = grammar.build(), grammar.build()
        compiled.compile()
        for condition in grammar.conditions(3, 40):
            assert compiled.check(condition) == twin.check(condition)


class TestCounterReconciliation:
    def test_budget_counter_matches_failed_compiles(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            description = AdversarialGrammar(seed=13).build()
            closed = commutation_closure(description)
            report = closed.compile(max_sequences=10)
        assert not report.compiled
        assert registry.counter("ssdl.compile.budget_exceeded").value == 1

    def test_fallback_counter_matches_per_description(self):
        registry = MetricsRegistry()
        grammar = AdversarialGrammar(seed=13)
        description = grammar.build()
        with use_metrics(registry):
            assert description.compile(max_tokens=5).compiled
            long = And([
                Leaf(Atom("a0", Op.EQ, f"v{i}")) for i in range(6)
            ])
            description.check(long)  # beyond the 5-token horizon
        assert description.check_fallbacks == 1
        assert registry.counter("ssdl.check.fallback").value == 1

    def test_workload_reconciles_exactly(self):
        """Satellite: registry ``ssdl.compile.budget_exceeded`` +
        ``ssdl.check.fallback`` reconcile exactly with per-description
        ``check_compiled``/``check_fallbacks`` under the adversarial
        workload (asserted inside the battery; re-checked here)."""
        out = AdversarialSSDLWorkload(
            seed=17, n_grammars=3, conditions_per_grammar=24).battery()
        assert out["accounting_exact"] is True
        assert out["registry_budget_exceeded"] == out["budget_exceeded"]
        assert out["registry_fallbacks"] == out["fallbacks"]
        assert out["budget_exceeded"] > 0
        assert out["fallbacks"] > 0


class TestAdversarialWorkload:
    def test_run_is_deterministic(self):
        knobs = dict(seed=19, n_grammars=3, conditions_per_grammar=20)
        first = AdversarialSSDLWorkload(**knobs).run()
        second = AdversarialSSDLWorkload(**knobs).run()
        assert first.summary == second.summary

    def test_parity_is_clean(self):
        report = AdversarialSSDLWorkload(
            seed=19, n_grammars=3, conditions_per_grammar=20).run()
        assert report.summary["parity_mismatches"] == 0
        assert report.summary["parity_checks"] > 0
        assert report.summary["closure_rules"] \
            > report.summary["native_rules"]
