"""Unit tests for IPG (Algorithm 6.1, Figures 4-6) and the pruning rules."""

import pytest

from repro.conditions.canonical import canonicalize
from repro.conditions.parser import parse_condition
from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.errors import ReproError
from repro.planners.base import CheckCounter
from repro.planners.ipg import IPG
from repro.plans.cost import CostModel
from repro.plans.feasible import validate_plan
from repro.plans.nodes import IntersectPlan, Postprocess, SourceQuery, UnionPlan
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder

A = frozenset({"model", "year"})


def make_ipg(source, cost_model, **kwargs):
    checker = CheckCounter(source.closed_description)
    return IPG(source.name, checker, cost_model, **kwargs)


def best(source, cost_model, text, attrs=A, **kwargs):
    ipg = make_ipg(source, cost_model, **kwargs)
    return ipg.best_plan(canonicalize(parse_condition(text)), frozenset(attrs))


class TestPurePlanAndPR1:
    def test_pure_plan_returned_immediately(self, example41, example41_cost):
        plan = best(example41, example41_cost, "make = 'BMW' and price < 40000")
        assert isinstance(plan, SourceQuery)

    def test_pr1_skips_subplan_search(self, example41, example41_cost):
        ipg = make_ipg(example41, example41_cost)
        ipg.best_plan(
            canonicalize(parse_condition("make = 'BMW' and price < 40000")), A
        )
        assert ipg.stats.subplans_considered == 0

    def test_without_pr1_search_continues_same_cost(
        self, example41, example41_cost
    ):
        text = "make = 'BMW' and price < 40000"
        with_pr1 = best(example41, example41_cost, text)
        without = best(example41, example41_cost, text, pr1=False)
        assert example41_cost.cost(with_pr1) == pytest.approx(
            example41_cost.cost(without)
        )


class TestAndProcessing:
    def test_example_51_three_leaf_conjunction(self, example41, example41_cost):
        # price<40000 ^ color=red ^ make=BMW: GenCompact needs no copy
        # rule -- IPG covers {price,make} at the source + color locally.
        plan = best(
            example41, example41_cost,
            "price < 40000 and color = 'red' and make = 'BMW'",
        )
        assert plan is not None
        assert validate_plan(plan, {"cars": example41})
        assert isinstance(plan, (Postprocess, IntersectPlan))

    def test_infeasible_when_child_unplannable(self, example41, example41_cost):
        plan = best(example41, example41_cost, "make = 'BMW' and year = 1999")
        # year is not exported... actually year IS exported by s1/s2 but
        # no rule *evaluates* a year condition; the mediator can still
        # filter year locally only if some source query covers make and
        # exports year.  make alone is not a rule, so: infeasible.
        assert plan is None

    def test_maxeval_local_filtering(self, example41, example41_cost):
        # Figure 1's query: (make ^ price) ^ (color=red v color=black).
        plan = best(
            example41, example41_cost,
            "(make = 'BMW' and price < 40000) and "
            "(color = 'red' or color = 'black')",
        )
        assert plan is not None
        # The OR part cannot reach the source; it must be filtered at the
        # mediator over a source query exporting color.
        assert isinstance(plan, Postprocess)
        assert plan.condition.is_or
        inner = plan.input
        assert isinstance(inner, SourceQuery)
        assert "color" in inner.attrs


class TestOrProcessing:
    def test_union_of_singletons(self, example41, example41_cost):
        plan = best(
            example41, example41_cost,
            "(make = 'BMW' and price < 40000) or "
            "(make = 'Toyota' and price < 30000)",
        )
        assert isinstance(plan, UnionPlan)
        assert len(plan.children) == 2

    def test_infeasible_or(self, example41, example41_cost):
        assert best(
            example41, example41_cost, "color = 'red' or color = 'black'"
        ) is None

    def test_or_subset_pure_plan_used_when_supported(self):
        # A source that supports two-way disjunction lists on size.
        schema = Schema.of(
            "t", [("id", AttrType.INT), ("size", AttrType.STRING),
                  ("make", AttrType.STRING)], key="id"
        )
        desc = (
            DescriptionBuilder("d")
            .rule("pair", "size = $str or size = $str",
                  attributes=["id", "size", "make"])
            .rule("one", "make = $str", attributes=["id", "size", "make"])
            .build()
        )
        rows = [
            {"id": i, "size": s, "make": m}
            for i, (s, m) in enumerate(
                [("compact", "a"), ("midsize", "b"), ("full", "c")] * 5
            )
        ]
        source = CapabilitySource("t", Relation(schema, rows), desc)
        cost_model = CostModel({"t": source.stats})
        plan = best(
            source, cost_model,
            "size = 'compact' or size = 'midsize'",
            attrs=frozenset({"id"}),
        )
        # The two-way list is one supported source query (pure sub-plan
        # covering both children), cheaper than two queries.
        assert isinstance(plan, SourceQuery)
        assert plan.condition.is_or


class TestDownload:
    def test_download_fallback(self):
        schema = Schema.of(
            "t", [("id", AttrType.INT), ("a", AttrType.STRING)], key="id"
        )
        desc = (
            DescriptionBuilder("d")
            .rule("dl", "true", attributes=["id", "a"])
            .build()
        )
        rows = [{"id": i, "a": f"v{i % 3}"} for i in range(9)]
        source = CapabilitySource("t", Relation(schema, rows), desc)
        cost_model = CostModel({"t": source.stats})
        plan = best(source, cost_model, "a = 'v1'", attrs=frozenset({"id"}))
        assert plan is not None
        (query,) = list(plan.source_queries())
        assert query.condition.is_true


class TestGuards:
    def test_max_fanout_raises(self, example41, example41_cost):
        wide = " and ".join(f"price < {i}" for i in range(16))
        with pytest.raises(ReproError):
            best(example41, example41_cost, wide)

    def test_unknown_solver_rejected(self, example41, example41_cost):
        with pytest.raises(ReproError):
            make_ipg(example41, example41_cost, mcsc_solver="magic")


class TestPruningEquivalence:
    """Disabling any pruning rule must not change the optimum (Section 6.3)."""

    QUERIES = [
        "price < 40000 and color = 'red' and make = 'BMW'",
        "(make = 'BMW' and price < 40000) and (color = 'red' or color = 'black')",
        "(make = 'BMW' and price < 40000) or (make = 'Toyota' and price < 30000)",
        "make = 'BMW' and price < 40000 and color = 'red'",
    ]

    @pytest.mark.parametrize("overrides", [
        dict(pr1=False), dict(pr2=False), dict(pr3=False),
        dict(pr1=False, pr2=False, pr3=False),
    ])
    def test_same_cost_with_pruning_disabled(
        self, example41, example41_cost, overrides
    ):
        for text in self.QUERIES:
            baseline = best(example41, example41_cost, text)
            variant = best(example41, example41_cost, text, **overrides)
            assert (baseline is None) == (variant is None)
            if baseline is not None:
                assert example41_cost.cost(variant) == pytest.approx(
                    example41_cost.cost(baseline)
                )

    def test_mcsc_solver_enumerate_matches_dp(self, example41, example41_cost):
        for text in self.QUERIES:
            dp_plan = best(example41, example41_cost, text)
            enum_plan = best(
                example41, example41_cost, text, mcsc_solver="enumerate"
            )
            if dp_plan is not None:
                assert example41_cost.cost(enum_plan) == pytest.approx(
                    example41_cost.cost(dp_plan)
                )
