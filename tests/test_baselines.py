"""Unit tests for the baseline strategies' plan shapes."""


from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.planners.baselines import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    NaivePlanner,
)
from repro.plans.cost import CostModel
from repro.plans.nodes import Postprocess, SourceQuery
from repro.query import TargetQuery
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder

A = frozenset({"model", "year"})


def q(text, attrs=A, source="cars"):
    return TargetQuery(parse_condition(text), frozenset(attrs), source)


def model_for(source):
    return CostModel({source.name: source.stats})


class TestNaive:
    def test_supported_query_is_pure(self, example41):
        result = NaivePlanner().plan(
            q("make = 'BMW' and price < 40000"), example41, model_for(example41)
        )
        assert isinstance(result.plan, SourceQuery)

    def test_order_insensitivity_granted(self, example41):
        # Baselines plan against the closed description.
        result = NaivePlanner().plan(
            q("price < 40000 and make = 'BMW'"), example41, model_for(example41)
        )
        assert result.feasible

    def test_anything_else_infeasible(self, example41):
        result = NaivePlanner().plan(
            q("price < 40000 and color = 'red' and make = 'BMW'"),
            example41,
            model_for(example41),
        )
        assert not result.feasible


class TestDisco:
    def test_pure_when_supported(self, example41):
        result = DiscoPlanner().plan(
            q("make = 'BMW' and color = 'red'"), example41, model_for(example41)
        )
        assert isinstance(result.plan, SourceQuery)

    def test_no_split_ever(self, example41):
        # The conjunction needs splitting; DISCO refuses (no download rule).
        result = DiscoPlanner().plan(
            q("price < 40000 and color = 'red' and make = 'BMW'"),
            example41,
            model_for(example41),
        )
        assert not result.feasible

    def test_download_fallback(self):
        schema = Schema.of("t", [("id", AttrType.INT), ("a", AttrType.STRING)],
                           key="id")
        desc = (
            DescriptionBuilder("d")
            .rule("dl", "true", attributes=["id", "a"])
            .build()
        )
        source = CapabilitySource(
            "t",
            Relation(schema, [{"id": i, "a": "x"} for i in range(5)]),
            desc,
        )
        result = DiscoPlanner().plan(
            q("a = 'x'", attrs={"id"}, source="t"), source, model_for(source)
        )
        assert result.feasible
        (query,) = list(result.plan.source_queries())
        assert query.condition.is_true


class TestCNF:
    def test_pushes_supported_clauses_filters_rest(self, example41):
        # CNF of (make ^ price ^ color-or): clauses [make], [price], [or].
        # make alone / price alone are not rules, but make^price is after
        # greedy accumulation.
        result = CNFPlanner().plan(
            q("make = 'BMW' and price < 40000 and "
              "(color = 'red' or color = 'black')"),
            example41,
            model_for(example41),
        )
        assert result.feasible
        assert isinstance(result.plan, Postprocess)
        inner = result.plan.input
        assert isinstance(inner, SourceQuery)
        assert inner.condition.is_and
        assert "color" in inner.attrs

    def test_infeasible_without_pushable_clause_or_download(self, example41):
        result = CNFPlanner().plan(
            q("color = 'red' or color = 'black'"), example41, model_for(example41)
        )
        assert not result.feasible

    def test_true_condition(self):
        schema = Schema.of("t", [("id", AttrType.INT)], key="id")
        desc = DescriptionBuilder("d").rule("dl", "true", attributes=["id"]).build()
        source = CapabilitySource(
            "t", Relation(schema, [{"id": 1}]), desc
        )
        result = CNFPlanner().plan(
            TargetQuery(TRUE, frozenset({"id"}), "t"), source, model_for(source)
        )
        assert result.feasible


class TestDNF:
    def test_one_query_per_term(self, example41):
        result = DNFPlanner().plan(
            q("(make = 'BMW' and price < 40000) or "
              "(make = 'Toyota' and price < 30000)"),
            example41,
            model_for(example41),
        )
        assert result.feasible
        assert len(list(result.plan.source_queries())) == 2

    def test_term_level_pushdown(self, example41):
        # Each DNF term has an unsupported residue (color) filtered locally.
        result = DNFPlanner().plan(
            q("(make = 'BMW' and price < 40000 and color = 'red') or "
              "(make = 'Toyota' and price < 30000 and color = 'blue')"),
            example41,
            model_for(example41),
        )
        assert result.feasible
        for child in result.plan.children:
            assert isinstance(child, Postprocess)

    def test_any_unplannable_term_sinks_the_plan(self, example41):
        result = DNFPlanner().plan(
            q("(make = 'BMW' and price < 40000) or year = 1999"),
            example41,
            model_for(example41),
        )
        assert not result.feasible

    def test_single_term_no_union(self, example41):
        result = DNFPlanner().plan(
            q("make = 'BMW' and price < 40000"), example41, model_for(example41)
        )
        assert isinstance(result.plan, SourceQuery)
