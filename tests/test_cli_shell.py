"""Tests for the interactive shell command."""


from repro.__main__ import main as repro_main


def feed(monkeypatch, lines):
    iterator = iter(lines)

    def fake_input(prompt=""):
        try:
            return next(iterator)
        except StopIteration:
            raise EOFError

    monkeypatch.setattr("builtins.input", fake_input)


class TestShell:
    def test_query_then_quit(self, monkeypatch, capsys):
        feed(monkeypatch, [
            "SELECT owner FROM bank WHERE branch = 'downtown'",
            "quit",
        ])
        assert repro_main(["shell", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "GenCompact" in out
        assert "source queries" in out
        assert "owner=" in out

    def test_sources_listing(self, monkeypatch, capsys):
        feed(monkeypatch, ["sources", "exit"])
        assert repro_main(["shell"]) == 0
        out = capsys.readouterr().out
        assert "bookstore" in out and "car_guide" in out

    def test_bad_query_reports_and_continues(self, monkeypatch, capsys):
        feed(monkeypatch, [
            "SELECT nothing",          # parse error
            "SELECT balance FROM bank WHERE branch = 'downtown'",  # infeasible
            "quit",
        ])
        assert repro_main(["shell"]) == 0
        out = capsys.readouterr().out
        assert out.count("error:") == 2

    def test_blank_lines_ignored_and_eof_exits(self, monkeypatch, capsys):
        feed(monkeypatch, ["", "   "])
        assert repro_main(["shell"]) == 0

    def test_planner_flag(self, monkeypatch, capsys):
        feed(monkeypatch, [
            "SELECT owner FROM bank WHERE branch = 'downtown'",
            "quit",
        ])
        assert repro_main(["shell", "--planner", "dnf"]) == 0
        assert "[DNF]" in capsys.readouterr().out
