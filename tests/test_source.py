"""Unit tests for the capability-enforcing simulated source."""

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import UnsupportedQueryError
from tests.conftest import make_example41_source


@pytest.fixture
def source():
    return make_example41_source()


class TestExecution:
    def test_supported_query(self, source):
        result = source.execute(
            parse_condition("make = 'BMW' and price < 40000"),
            ["model", "year"],
        )
        assert result.as_row_set() == {("328i", 1998), ("318i", 1997)}

    def test_unsupported_condition_rejected(self, source):
        with pytest.raises(UnsupportedQueryError) as err:
            source.execute(parse_condition("year = 1999"), ["model"])
        assert "not accepted" in str(err.value)

    def test_unsupported_projection_rejected(self, source):
        # s2 matches but cannot export color (the paper's case).
        with pytest.raises(UnsupportedQueryError) as err:
            source.execute(
                parse_condition("make = 'BMW' and color = 'red'"), ["color"]
            )
        assert "cannot export" in str(err.value)

    def test_order_enforced_natively(self, source):
        # Planned (commuted) order is rejected by the *native* form.
        with pytest.raises(UnsupportedQueryError):
            source.execute(
                parse_condition("price < 40000 and make = 'BMW'"), ["model"]
            )

    def test_fix_then_execute(self, source):
        condition = parse_condition("price < 40000 and make = 'BMW'")
        fixed = source.fix(condition, ["model"])
        result = source.execute(fixed, ["model"])
        assert len(result) == 2

    def test_order_insensitive_source_accepts_any_order(self):
        source = make_example41_source()
        source.order_insensitive = True
        result = source.execute(
            parse_condition("price < 40000 and make = 'BMW'"), ["model"]
        )
        assert len(result) == 2

    def test_order_insensitive_fix_is_identity(self):
        source = make_example41_source()
        source.order_insensitive = True
        condition = parse_condition("price < 40000 and make = 'BMW'")
        assert source.fix(condition, ["model"]) == condition


class TestMetering:
    def test_counts_queries_and_tuples(self, source):
        source.execute(
            parse_condition("make = 'Toyota' and price < 22000"),
            ["model"],
        )
        source.execute(
            parse_condition("make = 'BMW' and color = 'red'"), ["model"]
        )
        snap = source.meter.snapshot()
        assert snap.queries == 2
        assert snap.tuples == 4  # 3 Toyotas under 22k + 1 red BMW
        assert snap.cost(100, 1) == 204

    def test_rejections_counted(self, source):
        with pytest.raises(UnsupportedQueryError):
            source.execute(parse_condition("year = 1999"), ["model"])
        assert source.meter.rejected == 1
        assert source.meter.queries == 0

    def test_reset(self, source):
        source.execute(
            parse_condition("make = 'BMW' and color = 'red'"), ["model"]
        )
        source.meter.reset()
        assert source.meter.snapshot().queries == 0

    def test_snapshot_subtraction(self, source):
        before = source.meter.snapshot()
        source.execute(
            parse_condition("make = 'BMW' and color = 'red'"), ["model"]
        )
        delta = source.meter.snapshot() - before
        assert delta.queries == 1 and delta.tuples == 1


class TestPlanningHelpers:
    def test_check_uses_closed_description(self, source):
        # Swapped order supported for planning...
        assert source.supports(
            parse_condition("price < 40000 and make = 'BMW'"), ["model"]
        )
        # ...but the native description still rejects it.
        assert not source.description.check(
            parse_condition("price < 40000 and make = 'BMW'")
        )

    def test_stats_lazily_built_and_cached(self, source):
        first = source.stats
        assert source.stats is first
        assert first.n_rows == len(source.relation)
