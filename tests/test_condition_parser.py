"""Unit tests for the condition text parser."""

import pytest

from repro.conditions.atoms import Op
from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.errors import ConditionParseError


class TestBasics:
    def test_single_atom(self):
        tree = parse_condition("make = 'BMW'")
        assert tree.is_leaf
        assert tree.atom.attribute == "make"
        assert tree.atom.op is Op.EQ
        assert tree.atom.value == "BMW"

    def test_numbers(self):
        assert parse_condition("price < 40000").atom.value == 40000
        assert parse_condition("rate <= 2.5").atom.value == 2.5
        assert parse_condition("delta >= -3").atom.value == -3

    def test_booleans(self):
        assert parse_condition("flag = true").atom.value is True
        assert parse_condition("flag != false").atom.value is False

    def test_true_condition(self):
        assert parse_condition("true") is TRUE

    def test_double_quoted_strings(self):
        assert parse_condition('make = "BMW"').atom.value == "BMW"

    def test_escaped_quote(self):
        assert parse_condition(r"note = 'it\'s'").atom.value == "it's"

    def test_contains(self):
        atom = parse_condition("title contains 'dreams'").atom
        assert atom.op is Op.CONTAINS and atom.value == "dreams"

    def test_in_list(self):
        atom = parse_condition("size in ('compact', 'midsize')").atom
        assert atom.op is Op.IN
        assert set(atom.value) == {"compact", "midsize"}


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        tree = parse_condition("a = 1 or b = 2 and c = 3")
        assert tree.is_or
        assert tree.children[0].is_leaf
        assert tree.children[1].is_and

    def test_flat_chains(self):
        tree = parse_condition("a = 1 and b = 2 and c = 3")
        assert tree.is_and and len(tree.children) == 3
        tree = parse_condition("a = 1 or b = 2 or c = 3")
        assert tree.is_or and len(tree.children) == 3

    def test_parentheses_override(self):
        tree = parse_condition("(a = 1 or b = 2) and c = 3")
        assert tree.is_and
        assert tree.children[0].is_or

    def test_parentheses_preserve_structure(self):
        # (a and b) and c keeps the nested And node -- tree shape matters
        # to structure-sensitive grammars.
        tree = parse_condition("(a = 1 and b = 2) and c = 3")
        assert tree.is_and and len(tree.children) == 2
        assert tree.children[0].is_and

    def test_keywords_case_insensitive(self):
        tree = parse_condition("a = 1 AND b = 2 OR c = 3")
        assert tree.is_or


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "make = 'BMW'",
            "make = 'BMW' and price < 40000",
            "a = 1 and (b = 2 or c = 3)",
            "(a = 1 and b = 2) or (c = 3 and d = 4)",
            "title contains 'dreams' or size in ('compact', 'midsize')",
        ],
    )
    def test_to_text_round_trip(self, text):
        tree = parse_condition(text)
        assert parse_condition(tree.to_text()) == tree


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "make =",
            "= 'BMW'",
            "make = 'BMW' and",
            "make = 'BMW' or or price < 1",
            "(make = 'BMW'",
            "make = 'BMW')",
            "make like 'BMW'",
            "size in ()",
            "price < 'a' extra",
            "a = 1 ; drop",
        ],
    )
    def test_rejects_malformed_input(self, bad):
        with pytest.raises(ConditionParseError):
            parse_condition(bad)

    def test_error_carries_position(self):
        with pytest.raises(ConditionParseError) as err:
            parse_condition("make = 'BMW' @@")
        assert err.value.position is not None
