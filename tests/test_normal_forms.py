"""Unit tests for CNF/DNF conversion (the baseline strategies' substrate)."""

import pytest

from repro.conditions.canonical import is_canonical
from repro.conditions.normal_forms import cnf_clauses, dnf_terms, to_cnf, to_dnf
from repro.conditions.parser import parse_condition
from repro.conditions.semantics import logically_equivalent
from repro.conditions.tree import TRUE
from repro.errors import ConditionError


class TestExamples:
    def test_example_11_dnf(self):
        # (freud or jung) and dreams -> two conjunctive terms.
        tree = parse_condition(
            "(author = 'Freud' or author = 'Jung') and title contains 'dreams'"
        )
        terms = dnf_terms(tree)
        assert len(terms) == 2
        assert all(len(term) == 2 for term in terms)
        assert logically_equivalent(tree, to_dnf(tree))

    def test_example_11_cnf_is_itself(self):
        tree = parse_condition(
            "(author = 'Freud' or author = 'Jung') and title contains 'dreams'"
        )
        clauses = cnf_clauses(tree)
        assert len(clauses) == 2
        assert logically_equivalent(tree, to_cnf(tree))

    def test_example_12_counts(self):
        # The paper: DNF has four terms, CNF six clauses.
        tree = parse_condition(
            "style = 'sedan' and (size = 'compact' or size = 'midsize') and "
            "((make = 'Toyota' and price <= 20000) or "
            "(make = 'BMW' and price <= 40000))"
        )
        assert len(dnf_terms(tree)) == 4
        assert len(cnf_clauses(tree)) == 6
        assert logically_equivalent(tree, to_dnf(tree))
        assert logically_equivalent(tree, to_cnf(tree))


class TestShapes:
    def test_leaf(self):
        tree = parse_condition("a = 1")
        assert to_dnf(tree) == tree
        assert to_cnf(tree) == tree

    def test_true(self):
        assert to_dnf(TRUE) is TRUE
        assert to_cnf(TRUE) is TRUE

    def test_results_are_canonical(self):
        tree = parse_condition(
            "(a = 1 or b = 2) and (c = 3 or (d = 4 and e = 5))"
        )
        assert is_canonical(to_dnf(tree))
        assert is_canonical(to_cnf(tree))

    def test_duplicate_atoms_deduplicated_within_terms(self):
        tree = parse_condition("(a = 1 or b = 2) and a = 1")
        terms = dnf_terms(tree)
        for term in terms:
            assert len(term) == len(set(term))

    def test_dnf_term_count_multiplies(self):
        tree = parse_condition(
            "(a = 1 or a = 2) and (b = 1 or b = 2) and (c = 1 or c = 2)"
        )
        assert len(dnf_terms(tree)) == 8

    def test_budget_exceeded_raises(self):
        tree = parse_condition(
            "(a = 1 or a = 2) and (b = 1 or b = 2) and (c = 1 or c = 2)"
        )
        with pytest.raises(ConditionError):
            dnf_terms(tree, max_terms=7)
