"""Unit tests for the binding-pattern -> SSDL embedding."""

import pytest

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE
from repro.data.schema import AttrType, Schema
from repro.errors import SSDLError
from repro.ssdl.binding_patterns import compile_binding_patterns

FLIGHTS = Schema.of(
    "flight",
    [("origin", AttrType.STRING), ("dest", AttrType.STRING),
     ("price", AttrType.INT)],
)


class TestCompilation:
    def test_bbf_requires_both_bindings(self):
        desc = compile_binding_patterns(FLIGHTS, ["bbf"])
        assert desc.check(parse_condition("origin = 'SFO' and dest = 'BOS'"))
        assert not desc.check(parse_condition("origin = 'SFO'"))
        assert not desc.check(parse_condition("dest = 'BOS'"))
        assert not desc.check(parse_condition("price = 100"))

    def test_bound_attributes_take_equalities_only(self):
        desc = compile_binding_patterns(FLIGHTS, ["bbf"])
        assert not desc.check(
            parse_condition("origin = 'SFO' and dest != 'BOS'")
        )

    def test_optional_binding(self):
        desc = compile_binding_patterns(FLIGHTS, ["bbo"])
        assert desc.check(parse_condition("origin = 'SFO' and dest = 'BOS'"))
        assert desc.check(
            parse_condition("origin = 'SFO' and dest = 'BOS' and price = 100")
        )

    def test_multiple_patterns_union(self):
        desc = compile_binding_patterns(FLIGHTS, ["bbf", "ffb"])
        assert desc.check(parse_condition("origin = 'SFO' and dest = 'BOS'"))
        assert desc.check(parse_condition("price = 100"))
        assert not desc.check(parse_condition("origin = 'SFO' and price = 100"))

    def test_all_free_is_download(self):
        desc = compile_binding_patterns(FLIGHTS, ["fff"])
        assert desc.check(TRUE)

    def test_exports_full_schema(self):
        desc = compile_binding_patterns(FLIGHTS, ["bbf"])
        result = desc.check(parse_condition("origin = 'SFO' and dest = 'BOS'"))
        assert result.supports({"origin", "dest", "price"})

    def test_typed_constant_classes(self):
        desc = compile_binding_patterns(FLIGHTS, ["ffb"])
        assert desc.check(parse_condition("price = 100"))
        assert not desc.check(parse_condition("price = 'cheap'"))


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(SSDLError):
            compile_binding_patterns(FLIGHTS, ["bb"])

    def test_unknown_letters_rejected(self):
        with pytest.raises(SSDLError):
            compile_binding_patterns(FLIGHTS, ["bbx"])

    def test_empty_rejected(self):
        with pytest.raises(SSDLError):
            compile_binding_patterns(FLIGHTS, [])


class TestEndToEnd:
    def test_planning_over_a_binding_pattern_source(self):
        from repro.data.relation import Relation
        from repro.source.source import CapabilitySource
        from repro.wrapper import Wrapper

        rows = [
            {"origin": "SFO", "dest": "BOS", "price": 300},
            {"origin": "SFO", "dest": "BOS", "price": 450},
            {"origin": "SFO", "dest": "JFK", "price": 350},
        ]
        source = CapabilitySource(
            "flight",
            Relation(FLIGHTS, rows),
            compile_binding_patterns(FLIGHTS, ["bbo"]),
        )
        wrapper = Wrapper(source)
        # The mediator can still answer a *range* on price: fetch the
        # route, filter locally (price is exported, just not bindable
        # with <=).
        answer = wrapper.query(
            "origin = 'SFO' and dest = 'BOS' and price <= 400",
            ["origin", "dest", "price"],
        )
        assert answer.result.as_row_set() == {("SFO", "BOS", 300)}
        assert answer.queries_sent == 1
