"""Unit tests for fault injection, retry policies and failover."""

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import (
    PlanExecutionError,
    SourceRateLimitError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
    UnsupportedQueryError,
)
from repro.plans.cost import CostModel
from repro.plans.execute import Executor
from repro.plans.nodes import ChoicePlan, SourceQuery
from repro.plans.retry import RetryPolicy
from repro.source.faults import FaultInjector
from tests.conftest import make_example41_source

A = frozenset({"model"})


def sq(text, attrs=A, source="cars"):
    return SourceQuery(parse_condition(text), frozenset(attrs), source)


BMW = "make = 'BMW' and price < 40000"


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_deterministic_sequence(self):
        a = FaultInjector(seed=42, transient_rate=0.3, timeout_rate=0.2,
                          rate_limit_rate=0.1)
        b = FaultInjector(seed=42, transient_rate=0.3, timeout_rate=0.2,
                          rate_limit_rate=0.1)
        outcomes_a = [type(a.draw("s")).__name__ for _ in range(50)]
        outcomes_b = [type(b.draw("s")).__name__ for _ in range(50)]
        assert outcomes_a == outcomes_b
        assert a.injected == b.injected

    def test_zero_rates_never_fail(self):
        injector = FaultInjector(seed=0)
        assert all(injector.draw("s") is None for _ in range(100))
        assert injector.total_injected == 0

    def test_certain_failure(self):
        injector = FaultInjector(seed=0, transient_rate=1.0)
        fault = injector.draw("s")
        assert isinstance(fault, SourceUnavailableError)
        assert fault.source == "s"

    def test_fault_kinds_carry_metadata(self):
        timeouts = FaultInjector(seed=0, timeout_rate=1.0, timeout_latency=2.5)
        fault = timeouts.draw("s")
        assert isinstance(fault, SourceTimeoutError)
        assert fault.elapsed == 2.5
        limited = FaultInjector(seed=0, rate_limit_rate=1.0, retry_after=1.5)
        fault = limited.draw("s")
        assert isinstance(fault, SourceRateLimitError)
        assert fault.retry_after == 1.5

    def test_take_down_and_restore(self):
        injector = FaultInjector(seed=0)
        injector.take_down()
        assert isinstance(injector.draw("s"), SourceUnavailableError)
        assert injector.injected["outage"] == 1
        injector.restore()
        assert injector.draw("s") is None

    def test_reset_rewinds_rng(self):
        injector = FaultInjector(seed=9, transient_rate=0.5)
        first = [injector.draw("s") is None for _ in range(20)]
        injector.reset()
        again = [injector.draw("s") is None for _ in range(20)]
        assert first == again

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultInjector(transient_rate=0.7, timeout_rate=0.6)
        with pytest.raises(ValueError):
            FaultInjector(transient_rate=-0.1)

    def test_source_meters_failures(self):
        source = make_example41_source()
        source.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        with pytest.raises(SourceUnavailableError):
            source.execute(parse_condition(BMW), ["model"])
        assert source.meter.failures == 1
        assert source.meter.queries == 0
        assert source.meter.rejected == 0


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff=1.0, multiplier=2.0,
                             max_backoff=5.0, jitter=0.0)
        delays = [policy.backoff_delay(a) for a in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff=1.0, jitter=0.5, seed=3)
        one = policy.backoff_delay(1, key="s|c")
        two = policy.backoff_delay(1, key="s|c")
        assert one == two
        assert 0.5 <= one <= 1.0
        # Different keys de-synchronize their delays.
        assert policy.backoff_delay(1, key="other") != one

    def test_rate_limit_floors_the_delay(self):
        policy = RetryPolicy(base_backoff=0.01, jitter=0.0)
        fault = SourceRateLimitError("slow down", retry_after=9.0)
        assert policy.backoff_delay(1, fault=fault) == 9.0

    def test_none_policy_fails_fast(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert not policy.should_retry(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(retry_budget=-1)


# ----------------------------------------------------------------------
# Executor retry behaviour
# ----------------------------------------------------------------------

class TestExecutorRetry:
    def test_recovers_from_transient_failure(self):
        # Random(1) draws ~0.134 then ~0.847: with rate 0.5 the first
        # attempt fails and the retry succeeds.
        source = make_example41_source()
        source.fault_injector = FaultInjector(seed=1, transient_rate=0.5)
        executor = Executor(
            {"cars": source}, retry_policy=RetryPolicy(max_attempts=3)
        )
        report = executor.execute_with_report(sq(BMW))
        assert report.result.as_row_set() == {("328i",), ("318i",)}
        assert report.attempts == 2
        assert report.retries == 1
        assert report.backoff_seconds > 0.0
        assert source.meter.failures == 1
        assert source.meter.retries == 1
        assert source.meter.queries == 1

    def test_no_policy_fails_fast(self):
        source = make_example41_source()
        source.fault_injector = FaultInjector(seed=1, transient_rate=0.5)
        executor = Executor({"cars": source})
        with pytest.raises(TransientSourceError):
            executor.execute(sq(BMW))
        assert source.meter.retries == 0

    def test_gives_up_after_max_attempts(self):
        source = make_example41_source()
        source.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        executor = Executor(
            {"cars": source}, retry_policy=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(SourceUnavailableError):
            executor.execute(sq(BMW))
        assert source.meter.failures == 3
        assert source.meter.retries == 2

    def test_plan_wide_retry_budget(self):
        source = make_example41_source()
        source.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        executor = Executor(
            {"cars": source},
            retry_policy=RetryPolicy(max_attempts=10, retry_budget=2),
        )
        with pytest.raises(SourceUnavailableError):
            executor.execute(sq(BMW))
        # 1 try + a budget of 2 retries, not 10 attempts.
        assert source.meter.failures == 3

    def test_capability_rejections_are_never_retried(self):
        source = make_example41_source()
        executor = Executor(
            {"cars": source},
            fix_queries=False,
            retry_policy=RetryPolicy(max_attempts=5),
        )
        # Reversed conjunct order: the order-sensitive form rejects it.
        with pytest.raises(UnsupportedQueryError):
            executor.execute(sq("price < 40000 and make = 'BMW'"))
        assert source.meter.rejected == 1
        assert source.meter.retries == 0
        assert source.meter.failures == 0

    def test_cache_hit_masks_faults(self):
        from repro.plans.cache import ResultCache

        source = make_example41_source()
        cache = ResultCache(1000)
        executor = Executor({"cars": source}, cache=cache)
        plan = sq(BMW)
        warm = executor.execute(plan)
        source.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        hit = executor.execute(plan)
        assert hit.as_row_set() == warm.as_row_set()
        assert source.meter.failures == 0


# ----------------------------------------------------------------------
# Choice resolution at execution time
# ----------------------------------------------------------------------

class TestChoiceFailover:
    def two_sources(self):
        cheap = make_example41_source("cheap")
        dear = make_example41_source("dear")
        model = CostModel(
            {"cheap": cheap.stats, "dear": dear.stats},
            per_source={"dear": (1000.0, 10.0)},
        )
        return cheap, dear, model

    def test_without_cost_model_choice_still_rejected(self):
        cheap, dear, __ = self.two_sources()
        executor = Executor({"cheap": cheap, "dear": dear})
        choice = ChoicePlan([sq(BMW, source="cheap"), sq(BMW, source="dear")])
        with pytest.raises(PlanExecutionError):
            executor.execute(choice)

    def test_picks_cheapest_alternative(self):
        cheap, dear, model = self.two_sources()
        executor = Executor({"cheap": cheap, "dear": dear}, cost_model=model)
        choice = ChoicePlan([sq(BMW, source="dear"), sq(BMW, source="cheap")])
        result = executor.execute(choice)
        assert result.as_row_set() == {("328i",), ("318i",)}
        assert cheap.meter.queries == 1
        assert dear.meter.queries == 0

    def test_falls_over_to_next_alternative(self):
        cheap, dear, model = self.two_sources()
        cheap.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        executor = Executor({"cheap": cheap, "dear": dear}, cost_model=model)
        choice = ChoicePlan([sq(BMW, source="dear"), sq(BMW, source="cheap")])
        report = executor.execute_with_report(choice)
        assert report.result.as_row_set() == {("328i",), ("318i",)}
        assert report.failovers == 1
        assert dear.meter.queries == 1

    def test_all_alternatives_dead_raises_the_fault(self):
        cheap, dear, model = self.two_sources()
        cheap.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        dear.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        executor = Executor({"cheap": cheap, "dear": dear}, cost_model=model)
        choice = ChoicePlan([sq(BMW, source="dear"), sq(BMW, source="cheap")])
        with pytest.raises(TransientSourceError):
            executor.execute(choice)

    def test_failed_source_skipped_across_choices(self):
        cheap, dear, model = self.two_sources()
        cheap.fault_injector = FaultInjector(seed=0, transient_rate=1.0)
        executor = Executor({"cheap": cheap, "dear": dear}, cost_model=model)
        red = "make = 'BMW' and color = 'red'"
        choice1 = ChoicePlan([sq(BMW, source="cheap"), sq(BMW, source="dear")])
        choice2 = ChoicePlan([sq(red, source="cheap"), sq(red, source="dear")])
        from repro.plans.nodes import IntersectPlan

        report = executor.execute_with_report(IntersectPlan([choice1, choice2]))
        assert report.result.as_row_set() == {("328i",)}
        # The second Choice skips 'cheap' without re-probing it: one
        # failed attempt total, both answers from 'dear'.
        assert cheap.meter.failures == 1
        assert dear.meter.queries == 2


class TestPlanSources:
    def test_sources_includes_choice_branches(self):
        choice = ChoicePlan([sq(BMW, source="a"), sq(BMW, source="b")])
        assert choice.sources() == {"a", "b"}
        assert sq(BMW, source="a").sources() == {"a"}
