"""Unit tests for the Wrapper (Section 2's relational facade)."""

import pytest

from repro.conditions.parser import parse_condition
from repro.errors import InfeasiblePlanError, UnknownAttributeError
from repro.wrapper import Wrapper
from tests.conftest import make_example41_source


@pytest.fixture
def wrapper():
    return Wrapper(make_example41_source())


class TestQueries:
    def test_directly_supported_query(self, wrapper):
        answer = wrapper.query("make = 'BMW' and price < 40000", ["model"])
        assert answer.result.as_row_set() == {("328i",), ("318i",)}
        assert answer.queries_sent == 1

    def test_query_the_form_cannot_take_verbatim(self, wrapper):
        # Three conjuncts in the wrong order: the wrapper splits + fixes.
        answer = wrapper.query(
            "price < 40000 and color = 'red' and make = 'BMW'",
            ["model", "year"],
        )
        assert answer.result.as_row_set() == {("328i", 1998)}

    def test_disjunctive_query(self, wrapper):
        answer = wrapper.query(
            "(make = 'BMW' and price < 40000) or "
            "(make = 'Toyota' and price < 12000)",
            ["model"],
        )
        assert answer.result.as_row_set() == {
            ("328i",), ("318i",), ("Corolla",),
        }
        assert answer.queries_sent == 2

    def test_truly_unanswerable_raises_before_contacting_source(self, wrapper):
        before = wrapper.source.meter.snapshot()
        with pytest.raises(InfeasiblePlanError):
            wrapper.query("year = 1999", ["model"])
        delta = wrapper.source.meter.snapshot() - before
        assert delta.queries == 0 and delta.rejected == 0

    def test_supports_probe(self, wrapper):
        assert wrapper.supports("make = 'BMW' and price < 40000", ["model"])
        assert not wrapper.supports("year = 1999", ["model"])

    def test_unknown_attribute_rejected(self, wrapper):
        with pytest.raises(UnknownAttributeError):
            wrapper.query("ghost = 1", ["model"])
        with pytest.raises(UnknownAttributeError):
            wrapper.query("make = 'BMW' and price < 1", ["ghost"])


class TestPlanCache:
    def test_same_query_planned_once(self, wrapper):
        condition = parse_condition("make = 'BMW' and price < 40000")
        wrapper.query(condition, ["model"])
        size = wrapper.cache_size()
        wrapper.query(condition, ["model"])
        assert wrapper.cache_size() == size

    def test_different_projection_different_entry(self, wrapper):
        condition = parse_condition("make = 'BMW' and price < 40000")
        wrapper.query(condition, ["model"])
        wrapper.query(condition, ["model", "year"])
        assert wrapper.cache_size() == 2

    def test_cached_plan_still_executes(self, wrapper):
        condition = parse_condition("make = 'BMW' and price < 40000")
        first = wrapper.query(condition, ["model"])
        second = wrapper.query(condition, ["model"])
        assert first.result.as_row_set() == second.result.as_row_set()
        assert second.queries_sent == 1
