"""Tests for the command-line interfaces (repro and repro.experiments)."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestSourcesCommand:
    def test_lists_all_library_sources(self, capsys):
        assert repro_main(["sources"]) == 0
        out = capsys.readouterr().out
        for name in ("bookstore", "car_guide", "bank", "flights", "classifieds"):
            assert name in out

    def test_verbose_prints_ssdl(self, capsys):
        assert repro_main(["sources", "-v"]) == 0
        out = capsys.readouterr().out
        assert "->" in out  # grammar arrows
        assert "attributes" in out


class TestPlanCommand:
    QUERY = (
        "SELECT title, author FROM bookstore "
        "WHERE (author = 'Sigmund Freud' or author = 'Carl Jung') "
        "and title contains 'dreams'"
    )

    def test_all_planners_compared(self, capsys):
        assert repro_main(["plan", self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "GenCompact" in out
        assert "DNF" in out
        assert "infeasible" in out  # DISCO / Naive

    def test_single_planner(self, capsys):
        assert repro_main(["plan", "--planner", "cnf", self.QUERY]) == 0
        out = capsys.readouterr().out
        assert "CNF" in out and "GenCompact" not in out

    def test_unknown_planner_is_an_error(self, capsys):
        assert repro_main(["plan", "--planner", "magic", self.QUERY]) == 1
        assert "unknown planner" in capsys.readouterr().err


class TestAskCommand:
    def test_executes_and_prints_rows(self, capsys):
        code = repro_main(
            ["ask", "SELECT owner, branch FROM bank WHERE branch = 'downtown'",
             "--limit", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "source queries" in out
        assert "owner=" in out
        assert "more" in out  # truncation notice

    def test_infeasible_query_reports_error(self, capsys):
        code = repro_main(
            ["ask", "SELECT balance FROM bank WHERE branch = 'downtown'"]
        )
        assert code == 1
        assert "no feasible plan" in capsys.readouterr().err


class TestExperimentsCli:
    def test_runs_selected_experiment(self, capsys):
        assert experiments_main(["--quick", "e8"]) == 0
        out = capsys.readouterr().out
        assert "E8" in out and "completed" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["e42"])
