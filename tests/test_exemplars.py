"""Histogram exemplars: recording policy, exposition, trace pinning.

An exemplar is the (trace id, value) of an extreme observation.  Under
test: the bounded-slot recording policy (fill free slots, then only a
value at least as large as the smallest retained one replaces it), the
snapshot staying byte-compatible when slots are off, the OpenMetrics
exemplar syntax on the right bucket line, and the mediator loop --
an exemplar-recorded ask pins its trace in the ``SamplingTracer`` so
the exported exemplar never points at a dropped trace, and the slow
query log carries the same trace id.
"""

from __future__ import annotations

import pytest

from repro.mediator import Mediator
from repro.observability import (
    Histogram,
    MetricsRegistry,
    SamplingTracer,
    use_metrics,
    use_tracer,
)
from repro.observability.exposition import (
    format_trace_id,
    render_openmetrics,
)
from tests.conftest import make_example41_source

BMW = "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"


class TestRecordingPolicy:
    def test_disabled_by_default_and_free(self):
        histogram = Histogram("h")
        assert histogram.observe(1.0, trace_id=7) is False
        assert "exemplars" not in histogram.snapshot()

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", exemplar_slots=-1)

    def test_observation_without_trace_id_records_nothing(self):
        histogram = Histogram("h", exemplar_slots=2)
        assert histogram.observe(5.0) is False
        assert histogram.snapshot()["exemplars"] == []

    def test_free_slots_fill_first(self):
        histogram = Histogram("h", exemplar_slots=2)
        assert histogram.observe(0.1, trace_id=1) is True
        assert histogram.observe(0.05, trace_id=2) is True  # still free
        values = [e[0] for e in histogram.snapshot()["exemplars"]]
        assert sorted(values) == [0.05, 0.1]

    def test_larger_value_evicts_the_smallest(self):
        histogram = Histogram("h", exemplar_slots=2)
        histogram.observe(0.1, trace_id=1)
        histogram.observe(0.5, trace_id=2)
        assert histogram.observe(0.3, trace_id=3) is True  # beats 0.1
        exemplars = histogram.snapshot()["exemplars"]
        assert [e[0] for e in exemplars] == [0.5, 0.3]  # largest first
        assert [e[1] for e in exemplars] == [2, 3]

    def test_smaller_value_is_ignored(self):
        histogram = Histogram("h", exemplar_slots=1)
        histogram.observe(0.5, trace_id=1)
        assert histogram.observe(0.1, trace_id=2) is False
        assert histogram.snapshot()["exemplars"][0][1] == 1

    def test_ties_refresh_to_the_recent_trace(self):
        histogram = Histogram("h", exemplar_slots=1)
        histogram.observe(0.5, trace_id=1)
        assert histogram.observe(0.5, trace_id=2) is True
        assert histogram.snapshot()["exemplars"][0][1] == 2

    def test_reset_clears_exemplars(self):
        histogram = Histogram("h", exemplar_slots=2)
        histogram.observe(0.5, trace_id=1)
        histogram.reset()
        assert histogram.snapshot()["exemplars"] == []

    def test_registry_passes_slots_on_first_creation_only(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", exemplar_slots=3)
        again = registry.histogram("h", exemplar_slots=9)
        assert again is first
        assert again.exemplar_slots == 3

    def test_snapshot_without_slots_is_byte_compatible(self):
        """The exemplars key appears only when slots are configured, so
        every pre-exemplar golden (snapshots, /snapshot JSON, the
        OpenMetrics golden) is untouched."""
        plain = Histogram("h")
        plain.observe(0.5)
        assert set(plain.snapshot().keys()) == {
            "type", "count", "sum", "min", "max", "mean", "buckets"}


class TestExposition:
    def test_format_trace_id_is_the_wire_form(self):
        assert format_trace_id(0xAB) == "0" * 30 + "ab"
        assert len(format_trace_id(1 << 127)) == 32

    def test_exemplar_renders_on_its_bucket_line(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat", buckets=[0.1, 1.0], exemplar_slots=2)
        histogram.observe(0.05, trace_id=0x1)     # -> le="0.1" bucket
        histogram.observe(5.0, trace_id=0x2)      # -> +Inf bucket
        text = render_openmetrics(registry.snapshot())
        bucket_lines = [line for line in text.splitlines()
                        if "repro_lat_bucket" in line]
        by_le = {line.split('le="')[1].split('"')[0]: line
                 for line in bucket_lines}
        assert f'# {{trace_id="{format_trace_id(1)}"}} 0.05' in by_le["0.1"]
        assert f'# {{trace_id="{format_trace_id(2)}"}} 5' in by_le["+Inf"]
        assert "#" not in by_le["1"]  # the empty middle bucket

    def test_one_exemplar_per_bucket_line_largest_wins(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat", buckets=[1.0], exemplar_slots=4)
        histogram.observe(0.2, trace_id=0x1)
        histogram.observe(0.8, trace_id=0x2)  # same bucket, larger
        text = render_openmetrics(registry.snapshot())
        line = [ln for ln in text.splitlines()
                if 'le="1"' in ln and "repro_lat_bucket" in ln][0]
        assert format_trace_id(2) in line
        assert format_trace_id(1) not in line

    def test_no_exemplars_render_without_slots(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(0.5)
        text = render_openmetrics(registry.snapshot())
        assert "trace_id=" not in text


class TestMediatorPinning:
    def _mediator(self) -> Mediator:
        mediator = Mediator(latency_objective=0.05, exemplar_slots=2)
        mediator.add_source(make_example41_source())
        return mediator

    def test_ask_latency_records_exemplars_with_a_tracer(self):
        mediator = self._mediator()
        with use_tracer(SamplingTracer(ratio=1.0)):
            mediator.ask(BMW)
        exemplars = mediator.ask_latency.snapshot()["exemplars"]
        assert len(exemplars) == 1
        assert exemplars[0][1] > 0  # a real trace id

    def test_exemplar_recorded_trace_is_pinned_through_a_drop(self):
        """ratio=0 would drop every trace; the exemplar-recorded ask
        must be kept anyway, so the exported exemplar resolves."""
        mediator = self._mediator()
        tracer = SamplingTracer(ratio=0.0)
        with use_tracer(tracer):
            mediator.ask(BMW)
        exemplars = mediator.ask_latency.snapshot()["exemplars"]
        assert len(exemplars) == 1
        assert tracer.traces_pinned == 1
        assert tracer.traces_kept == 1
        kept_traces = {s.trace_id for s in tracer.finished_spans()}
        assert exemplars[0][1] in kept_traces

    def test_unremarkable_asks_do_not_pin(self):
        mediator = self._mediator()
        # Occupy both slots with implausibly slow observations so no
        # real ask can beat the retained minimum.
        mediator.ask_latency.observe(60.0, trace_id=0xAAA)
        mediator.ask_latency.observe(60.0, trace_id=0xBBB)
        tracer = SamplingTracer(ratio=0.0)
        with use_tracer(tracer):
            for _ in range(6):
                mediator.ask(BMW)
        assert tracer.traces_pinned == 0
        assert tracer.traces_dropped == 6

    def test_no_tracer_records_no_exemplar(self):
        mediator = self._mediator()
        mediator.ask(BMW)
        assert mediator.ask_latency.snapshot()["exemplars"] == []

    def test_slow_query_log_carries_the_trace_id(self):
        mediator = Mediator(latency_objective=1e-9)
        mediator.add_source(make_example41_source())
        with use_tracer(SamplingTracer(ratio=1.0)) as tracer:
            mediator.ask(BMW)
        entry = mediator.slow_queries.entries()[0]
        assert entry.trace_id is not None
        assert entry.trace_id in {s.trace_id
                                  for s in tracer.finished_spans()}
        assert f"trace_id={entry.trace_id:032x}" in entry.format()

    def test_slow_query_without_tracer_has_no_trace_id(self):
        mediator = Mediator(latency_objective=1e-9)
        mediator.add_source(make_example41_source())
        mediator.ask(BMW)
        entry = mediator.slow_queries.entries()[0]
        assert entry.trace_id is None
        assert "trace_id=" not in entry.format()

    def test_exemplars_flow_to_the_registry_exposition(self):
        """End to end: a served ask's exemplar appears in /metrics-style
        output rendered from the shared registry."""
        registry = MetricsRegistry()
        with use_metrics(registry):
            mediator = self._mediator()
            with use_tracer(SamplingTracer(ratio=1.0)):
                mediator.ask(BMW)
            # The mediator-local SLO histogram carries the exemplars;
            # render it the way the federation view would.
            snapshot = {"mediator.ask_seconds":
                        mediator.ask_latency.snapshot()}
            text = render_openmetrics(snapshot)
        assert "trace_id=" in text
