"""Unit tests for the Earley recognizer on SSDL-style grammars."""

import pytest

from repro.conditions.atoms import Op
from repro.conditions.parser import parse_condition
from repro.errors import GrammarError
from repro.ssdl.earley import EarleyRecognizer
from repro.ssdl.symbols import (
    AND_SYM,
    LPAREN_SYM,
    NT,
    OR_SYM,
    RPAREN_SYM,
    TRUE_SYM,
    ConstClass,
    Template,
    tokenize_condition,
)

MAKE = Template("make", Op.EQ, ConstClass.STR)
PRICE = Template("price", Op.LT, ConstClass.NUM)
COLOR = Template("color", Op.EQ, ConstClass.STR)
SIZE = Template("size", Op.EQ, ConstClass.STR)


def tokens(text):
    return tokenize_condition(parse_condition(text))


class TestBasics:
    def test_single_template(self):
        rec = EarleyRecognizer({"s1": [[MAKE]]})
        assert rec.accepts(tokens("make = 'BMW'"), "s1")
        assert not rec.accepts(tokens("make != 'BMW'"), "s1")
        assert not rec.accepts(tokens("color = 'red'"), "s1")

    def test_fixed_conjunction(self):
        rec = EarleyRecognizer({"s1": [[MAKE, AND_SYM, PRICE]]})
        assert rec.accepts(tokens("make = 'BMW' and price < 40000"), "s1")
        # Order matters: the paper's Section 6.1 example.
        assert not rec.accepts(tokens("price < 40000 and make = 'BMW'"), "s1")

    def test_alternatives(self):
        rec = EarleyRecognizer(
            {"s1": [[MAKE, AND_SYM, PRICE], [MAKE, AND_SYM, COLOR]]}
        )
        assert rec.accepts(tokens("make = 'BMW' and price < 40000"), "s1")
        assert rec.accepts(tokens("make = 'BMW' and color = 'red'"), "s1")
        assert not rec.accepts(tokens("color = 'red' and price < 1"), "s1")

    def test_unknown_start_raises(self):
        rec = EarleyRecognizer({"s1": [[MAKE]]})
        with pytest.raises(GrammarError):
            rec.accepts(tokens("make = 'BMW'"), "nope")

    def test_undefined_nonterminal_raises(self):
        with pytest.raises(GrammarError):
            EarleyRecognizer({"s1": [[NT("ghost")]]})

    def test_empty_input(self):
        rec = EarleyRecognizer({"s1": [[MAKE]]})
        assert not rec.accepts((), "s1")


class TestNestedStructure:
    def test_parenthesized_disjunction(self):
        rec = EarleyRecognizer(
            {
                "s1": [[MAKE, AND_SYM, LPAREN_SYM, NT("colors"), RPAREN_SYM]],
                "colors": [[COLOR, OR_SYM, COLOR], [COLOR, OR_SYM, NT("colors")]],
            }
        )
        assert rec.accepts(
            tokens("make = 'BMW' and (color = 'red' or color = 'black')"), "s1"
        )
        assert rec.accepts(
            tokens(
                "make = 'BMW' and "
                "(color = 'red' or color = 'black' or color = 'blue')"
            ),
            "s1",
        )
        assert not rec.accepts(tokens("make = 'BMW' and color = 'red'"), "s1")

    def test_recursion_depth(self):
        rec = EarleyRecognizer(
            {
                "s1": [[LPAREN_SYM, NT("list"), RPAREN_SYM]],
                "list": [[SIZE, OR_SYM, SIZE], [SIZE, OR_SYM, NT("list")]],
            }
        )
        many = " or ".join(f"size = 's{i}'" for i in range(12))
        assert rec.accepts(tokens(f"make = 'x' and ({many})")[2:], "s1")

    def test_true_rule(self):
        rec = EarleyRecognizer({"dl": [[TRUE_SYM]]})
        from repro.conditions.tree import TRUE

        assert rec.accepts(tokenize_condition(TRUE), "dl")


class TestNullable:
    def test_nullable_nonterminal(self):
        # s1 -> MAKE opt ; opt -> (empty) | AND PRICE
        rec = EarleyRecognizer(
            {"s1": [[MAKE, NT("opt")]], "opt": [[], [AND_SYM, PRICE]]}
        )
        assert rec.accepts(tokens("make = 'BMW'"), "s1")
        assert rec.accepts(tokens("make = 'BMW' and price < 1"), "s1")

    def test_fully_nullable_start(self):
        rec = EarleyRecognizer({"s1": [[]]})
        assert rec.accepts((), "s1")


class TestAmbiguity:
    def test_ambiguous_grammar_still_recognizes(self):
        # Two alternatives match the same string -- closure-style grammars.
        rec = EarleyRecognizer(
            {"s1": [[MAKE, AND_SYM, PRICE], [MAKE, AND_SYM, PRICE]]}
        )
        assert rec.accepts(tokens("make = 'BMW' and price < 40000"), "s1")

    def test_left_recursion(self):
        # list -> list OR SIZE | SIZE  (left recursive; YACC-hostile forms
        # are fine for Earley).
        rec = EarleyRecognizer(
            {"list": [[NT("list"), OR_SYM, SIZE], [SIZE]]}
        )
        assert rec.accepts(tokens("size = 'a'"), "list")
        three = tokens("size = 'a' or size = 'b' or size = 'c'")
        assert rec.accepts(three, "list")
