"""Property-based tests for the planning stack: the paper's guarantees.

The heavyweight invariants:

1. **Correctness** -- executing any planner's feasible plan returns
   exactly SP(C, A, R) evaluated on the full relation (the projection
   includes the key, so the set operations are exact).
2. **Feasibility** -- the enforcing source never rejects a query from a
   planner's plan (queries are fixed first).
3. **GenCompact dominance** -- GenCompact's plan never costs more than
   any baseline's plan, and is feasible whenever any baseline is.
4. **Pruning soundness** -- disabling PR1-PR3 never changes the cost.
5. **Statistics monotonicity** -- dropping a conjunct never shrinks the
   estimate (PR1's foundation).
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.planners.baselines import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    NaivePlanner,
)
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.plans.cost import CostModel
from repro.plans.execute import Executor, reference_answer
from repro.query import TargetQuery
from repro.workloads.synthetic import (
    WorldConfig,
    make_queries,
    make_source,
    random_condition,
)

# Three prebuilt worlds with different capability profiles; building one
# per hypothesis example would dominate the runtime.
_CONFIGS = [
    WorldConfig(n_attributes=5, n_rows=400, richness=0.5, download_prob=1.0,
                seed=21),
    WorldConfig(n_attributes=5, n_rows=400, richness=0.8, download_prob=0.0,
                seed=22),
    WorldConfig(n_attributes=6, n_rows=400, richness=0.3, download_prob=0.5,
                seed=23),
]
_WORLDS = [(config, make_source(config)) for config in _CONFIGS]
_MODELS = [CostModel({source.name: source.stats}) for _, source in _WORLDS]

_BASELINES = [CNFPlanner(), DNFPlanner(), DiscoPlanner(), NaivePlanner()]
_GENCOMPACT = GenCompact()


def _query_for(world_index: int, seed: int, n_atoms: int) -> TargetQuery:
    config, source = _WORLDS[world_index]
    rng = random.Random(seed)
    condition = random_condition(config, n_atoms, rng)
    return TargetQuery(condition, frozenset({"key"}), source.name)


@given(
    st.integers(0, len(_WORLDS) - 1),
    st.integers(0, 10**6),
    st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_plans_execute_correctly_and_feasibly(world_index, seed, n_atoms):
    config, source = _WORLDS[world_index]
    cost_model = _MODELS[world_index]
    query = _query_for(world_index, seed, n_atoms)
    expected = reference_answer(
        source, query.condition, query.attributes
    ).as_row_set()
    executor = Executor({source.name: source})
    for planner in [_GENCOMPACT] + _BASELINES:
        result = planner.plan(query, source, cost_model)
        if not result.feasible:
            continue
        # Invariant 2: the enforcing source accepts every fixed query.
        answer = executor.execute(result.plan)
        # Invariant 1: exact answers (key is projected).
        assert answer.as_row_set() == expected, (
            f"{planner.name} returned a wrong answer for {query}"
        )


@given(
    st.integers(0, len(_WORLDS) - 1),
    st.integers(0, 10**6),
    st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_gencompact_dominates_baselines(world_index, seed, n_atoms):
    __, source = _WORLDS[world_index]
    cost_model = _MODELS[world_index]
    query = _query_for(world_index, seed, n_atoms)
    gc = _GENCOMPACT.plan(query, source, cost_model)
    for baseline in _BASELINES:
        base = baseline.plan(query, source, cost_model)
        if base.feasible:
            # Invariant 3: feasibility subsumption + cost dominance.
            assert gc.feasible, (
                f"{baseline.name} planned {query} but GenCompact did not"
            )
            assert gc.cost <= base.cost + 1e-6, (
                f"GenCompact ({gc.cost}) worse than {baseline.name} "
                f"({base.cost}) on {query}"
            )


@given(
    st.integers(0, len(_WORLDS) - 1),
    st.integers(0, 10**6),
    st.integers(1, 4),
)
@settings(max_examples=15, deadline=None)
def test_pruning_never_changes_the_optimum(world_index, seed, n_atoms):
    __, source = _WORLDS[world_index]
    cost_model = _MODELS[world_index]
    query = _query_for(world_index, seed, n_atoms)
    baseline = _GENCOMPACT.plan(query, source, cost_model)
    unpruned = GenCompact(pr1=False, pr2=False, pr3=False).plan(
        query, source, cost_model
    )
    assert baseline.feasible == unpruned.feasible
    if baseline.feasible:
        assert unpruned.cost == pytest.approx(baseline.cost)


@given(
    st.integers(0, len(_WORLDS) - 1),
    st.integers(0, 10**6),
    st.integers(2, 4),
)
@settings(max_examples=10, deadline=None)
def test_genmodular_never_beats_gencompact_on_small_queries(
    world_index, seed, n_atoms
):
    """IPG on canonical trees subsumes the associativity/copy rewrites, so
    with the same (closed) description GenModular cannot find a cheaper
    plan than GenCompact on small queries."""
    __, source = _WORLDS[world_index]
    cost_model = _MODELS[world_index]
    query = _query_for(world_index, seed, n_atoms)
    gc = _GENCOMPACT.plan(query, source, cost_model)
    gm = GenModular(
        max_rewrites=150, max_rewrite_steps=20000, use_closed_description=True
    ).plan(query, source, cost_model)
    if gm.feasible:
        assert gc.feasible
        assert gc.cost <= gm.cost + 1e-6


@given(st.integers(0, len(_WORLDS) - 1), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_estimates_monotone_under_conjunct_removal(world_index, seed):
    """PR1's foundation: weakening a conjunction only grows the estimate."""
    config, source = _WORLDS[world_index]
    rng = random.Random(seed)
    condition = random_condition(config, 4, rng, or_prob=0.0)
    if not condition.is_and:
        return
    whole = source.stats.estimated_rows(condition)
    children = list(condition.children)
    for drop in range(len(children)):
        rest = children[:drop] + children[drop + 1:]
        weaker = rest[0] if len(rest) == 1 else type(condition)(rest)
        assert source.stats.estimated_rows(weaker) >= whole - 1e-9


@given(st.integers(0, 10**6), st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_fixing_preserves_atoms_and_acceptance(seed, n_atoms):
    """Every source query of a GenCompact plan can be fixed for the
    native grammar without changing its atom multiset."""
    world_index = seed % len(_WORLDS)
    __, source = _WORLDS[world_index]
    cost_model = _MODELS[world_index]
    query = _query_for(world_index, seed, n_atoms)
    result = _GENCOMPACT.plan(query, source, cost_model)
    if not result.feasible:
        return
    for source_query in result.plan.source_queries():
        if source_query.condition.is_true:
            continue
        fixed = source.fix(source_query.condition, source_query.attrs)
        assert sorted(map(str, fixed.atoms())) == sorted(
            map(str, source_query.condition.atoms())
        )
        assert source.description.check(fixed).supports(source_query.attrs)
