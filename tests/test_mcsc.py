"""Unit tests for the MCSC solvers and PR3 domination pruning."""

import random

import pytest

from repro.planners.mcsc import (
    CoverCandidate,
    prune_dominated,
    solve_dp,
    solve_enumerate,
    solve_greedy,
)


def cand(coverage, cost, payload=None):
    return CoverCandidate(frozenset(coverage), float(cost), payload)


class TestExactSolvers:
    def test_trivial_single_set(self):
        solution = solve_dp(2, [cand({0, 1}, 10)])
        assert solution is not None
        assert solution.cost == 10
        assert len(solution.chosen) == 1

    def test_prefers_cheap_combination(self):
        candidates = [
            cand({0, 1, 2}, 100),
            cand({0}, 20), cand({1}, 20), cand({2}, 20),
        ]
        assert solve_dp(3, candidates).cost == 60
        assert solve_enumerate(3, candidates).cost == 60

    def test_prefers_big_set_when_cheaper(self):
        candidates = [
            cand({0, 1, 2}, 50),
            cand({0}, 20), cand({1}, 20), cand({2}, 20),
        ]
        assert solve_dp(3, candidates).cost == 50

    def test_overlapping_cover_allowed(self):
        candidates = [cand({0, 1}, 30), cand({1, 2}, 30)]
        solution = solve_dp(3, candidates)
        assert solution.cost == 60
        assert len(solution.chosen) == 2

    def test_unsolvable_returns_none(self):
        assert solve_dp(3, [cand({0}, 1), cand({1}, 1)]) is None
        assert solve_enumerate(3, [cand({0}, 1)]) is None
        assert solve_greedy(3, [cand({0}, 1)]) is None

    def test_zero_elements(self):
        assert solve_dp(0, []).cost == 0
        assert solve_enumerate(0, []).cost == 0
        assert solve_greedy(0, []).cost == 0

    def test_dp_matches_enumeration_on_random_instances(self):
        rng = random.Random(99)
        for trial in range(30):
            n = rng.randint(2, 6)
            candidates = [
                cand(
                    rng.sample(range(n), rng.randint(1, n)),
                    rng.uniform(1, 100),
                    trial,
                )
                for _ in range(rng.randint(2, 10))
            ]
            dp = solve_dp(n, candidates)
            enum = solve_enumerate(n, candidates)
            if dp is None:
                assert enum is None
            else:
                assert enum is not None
                assert dp.cost == pytest.approx(enum.cost)

    def test_chosen_sets_actually_cover(self):
        rng = random.Random(7)
        for _ in range(20):
            n = rng.randint(2, 6)
            candidates = [
                cand(rng.sample(range(n), rng.randint(1, n)), rng.uniform(1, 100))
                for _ in range(8)
            ] + [cand({i}, 200) for i in range(n)]
            solution = solve_dp(n, candidates)
            covered = frozenset().union(*(c.coverage for c in solution.chosen))
            assert covered == frozenset(range(n))


class TestGreedy:
    def test_never_beats_optimum(self):
        rng = random.Random(5)
        for _ in range(25):
            n = rng.randint(2, 6)
            candidates = [
                cand(rng.sample(range(n), rng.randint(1, n)), rng.uniform(1, 100))
                for _ in range(8)
            ] + [cand({i}, 150) for i in range(n)]
            optimum = solve_dp(n, candidates)
            greedy = solve_greedy(n, candidates)
            assert greedy.cost >= optimum.cost - 1e-9

    def test_greedy_can_be_suboptimal(self):
        # Classic trap: the big cheap-per-element set first, then pay twice.
        candidates = [
            cand({0, 1}, 30),         # ratio 15
            cand({0, 2}, 32),         # ratio 16
            cand({1}, 40), cand({2}, 40),
        ]
        optimum = solve_dp(3, candidates)
        greedy = solve_greedy(3, candidates)
        assert greedy.cost >= optimum.cost


class TestPruneDominated:
    def test_superset_cheaper_dominates(self):
        keep = cand({0, 1}, 10, "keep")
        drop = cand({0}, 20, "drop")
        kept = prune_dominated([keep, drop])
        assert kept == [keep]

    def test_equal_coverage_cheaper_dominates(self):
        cheap = cand({0, 1}, 10, "cheap")
        costly = cand({0, 1}, 20, "costly")
        assert prune_dominated([costly, cheap]) == [cheap]

    def test_exact_ties_keep_one(self):
        first = cand({0}, 10, "first")
        second = cand({0}, 10, "second")
        kept = prune_dominated([first, second])
        assert kept == [first]

    def test_incomparable_candidates_survive(self):
        a = cand({0}, 10)
        b = cand({1}, 5)
        c = cand({0, 1}, 100)
        assert set(
            (tuple(sorted(x.coverage)), x.cost) for x in prune_dominated([a, b, c])
        ) == {((0,), 10.0), ((1,), 5.0), ((0, 1), 100.0)}

    def test_pruning_preserves_optimum(self):
        rng = random.Random(11)
        for _ in range(25):
            n = rng.randint(2, 5)
            candidates = [
                cand(rng.sample(range(n), rng.randint(1, n)), rng.uniform(1, 100))
                for _ in range(10)
            ] + [cand({i}, 120) for i in range(n)]
            full = solve_dp(n, candidates)
            pruned = solve_dp(n, prune_dominated(candidates))
            assert pruned is not None
            assert pruned.cost == pytest.approx(full.cost)
