"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed in fully offline environments that lack the
``wheel`` package (``python setup.py develop`` / ``pip install -e .``
with old tooling).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "GenCompact: capability-sensitive query processing on Internet "
        "sources (ICDE 1999 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
