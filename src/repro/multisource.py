"""Multi-source selection: mirrors and horizontal partitions.

Real mediators rarely see a logical relation behind exactly one form.
Two common multi-source shapes, both built from the paper's
single-source machinery:

* **Mirrors** -- several sources hold the *same* data with different
  capabilities and cost constants (a fast site with a poor form vs. a
  slow site with a rich form).  Planning = plan against every mirror,
  keep the cheapest feasible plan.  A query only one mirror's form can
  express is still answerable -- capability-sensitive source *selection*.
  At execution time the mirrors are also each other's **failover
  targets**: when the chosen mirror dies mid-plan, the failed source
  query is re-planned against a surviving mirror instead of aborting.
* **Partitions** -- each source holds a disjoint horizontal slice (e.g.
  regional listings).  Planning = plan the query per partition and union
  the results; the whole query is feasible iff every partition can
  answer it (a partition that cannot would silently lose tuples).
  ``ask(query, partial=True)`` degrades gracefully instead: partitions
  that are down or cannot express the query are skipped and the answer
  comes back *flagged* as incomplete.

Both groups hold **one** executor for their lifetime (optionally with a
shared :class:`~repro.plans.cache.ResultCache` and a
:class:`~repro.plans.retry.RetryPolicy`), so repeated queries benefit
from caching across calls.  Pass ``parallel_workers=N`` to make that
executor a :class:`~repro.plans.parallel.ParallelExecutor`: a
partitioned query's per-slice source calls then overlap instead of
queueing -- the natural fit, since a partition plan is a Union over
independent slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.relation import Relation
from repro.errors import (
    InfeasiblePlanError,
    SchemaError,
    TransientSourceError,
)
from repro.planners.base import Planner, PlannerStats, PlanningResult
from repro.planners.gencompact import GenCompact
from repro.plans.cache import ResultCache
from repro.plans.cost import CostModel
from repro.plans.execute import ExecutionReport, Executor
from repro.plans.nodes import Plan, SourceQuery, UnionPlan
from repro.plans.parallel import ParallelExecutor
from repro.plans.retry import RetryPolicy
from repro.query import TargetQuery
from repro.source.metering import MeterSnapshot
from repro.source.source import CapabilitySource


def _make_executor(
    catalog: dict[str, CapabilitySource],
    parallel_workers: int | None = None,
    **kwargs,
) -> Executor:
    """The group's long-lived executor: serial, or parallel when asked."""
    if parallel_workers is None:
        return Executor(catalog, **kwargs)
    return ParallelExecutor(catalog, max_workers=parallel_workers, **kwargs)


def _check_same_attributes(sources: list[CapabilitySource], role: str) -> None:
    if len(sources) < 2:
        raise SchemaError(f"a {role} group needs at least two sources")
    names = {s.name for s in sources}
    if len(names) != len(sources):
        raise SchemaError(f"duplicate source names in {role} group")
    first = set(sources[0].schema.attribute_names)
    for source in sources[1:]:
        if set(source.schema.attribute_names) != first:
            raise SchemaError(
                f"{role} group members must share an attribute set; "
                f"{source.name!r} differs from {sources[0].name!r}"
            )


@dataclass
class MirrorChoice:
    """Outcome of mirror planning: which mirror won and all the options."""

    chosen: PlanningResult | None
    per_source: dict[str, PlanningResult]

    @property
    def feasible(self) -> bool:
        return self.chosen is not None and self.chosen.feasible


class MirrorFailover:
    """Re-plans a failed source query against the surviving mirrors.

    The executor hands us the :class:`SourceQuery` that died and the set
    of sources already known to be down; because every mirror holds the
    same data, the query can be re-targeted at any survivor whose form
    can express it.  The cheapest feasible re-plan wins.
    """

    def __init__(self, group: "MirrorGroup"):
        self.group = group

    def replan(self, query: SourceQuery,
               failed: frozenset[str]) -> Plan | None:
        best: PlanningResult | None = None
        for name, source in self.group.sources.items():
            if name in failed:
                continue
            retargeted = TargetQuery(query.condition, query.attrs, name)
            result = self.group.planner.plan(
                retargeted, source, self.group._cost_model
            )
            if result.feasible and (best is None or result.cost < best.cost):
                best = result
        return best.plan if best is not None else None


class MirrorGroup:
    """The same logical relation served by several sources."""

    def __init__(
        self,
        sources: list[CapabilitySource],
        planner: Planner | None = None,
        k1: float = 100.0,
        k2: float = 1.0,
        per_source_constants: dict[str, tuple[float, float]] | None = None,
        cache: ResultCache | None = None,
        retry_policy: RetryPolicy | None = None,
        parallel_workers: int | None = None,
    ):
        """``cache`` (shared across every ``ask``) and ``retry_policy``
        configure the group's single long-lived executor; mirrors double
        as failover targets for each other automatically.
        ``parallel_workers`` makes that executor parallel."""
        _check_same_attributes(sources, "mirror")
        self.sources = {s.name: s for s in sources}
        self.planner = planner if planner is not None else GenCompact()
        self._cost_model = CostModel(
            {s.name: s.stats for s in sources},
            k1,
            k2,
            per_source=per_source_constants,
        )
        self.cache = cache
        self._executor = _make_executor(
            self.sources,
            cache=cache,
            retry_policy=retry_policy,
            failover=MirrorFailover(self),
            cost_model=self._cost_model,
            parallel_workers=parallel_workers,
        )

    def plan(self, query: TargetQuery) -> MirrorChoice:
        """Plan against every mirror; keep the cheapest feasible plan.

        ``query.source`` is ignored (the group *is* the logical source);
        each per-mirror attempt retargets the query.
        """
        per_source: dict[str, PlanningResult] = {}
        best: PlanningResult | None = None
        for name, source in self.sources.items():
            retargeted = TargetQuery(query.condition, query.attributes, name)
            result = self.planner.plan(retargeted, source, self._cost_model)
            per_source[name] = result
            if result.feasible and (best is None or result.cost < best.cost):
                best = result
        return MirrorChoice(best, per_source)

    def ask(self, query: TargetQuery) -> ExecutionReport:
        """Plan across the mirrors and execute the winning plan.

        Executes through the group's shared executor, so results are
        cached across calls and a mirror dying mid-execution fails over
        to a surviving one (report.failovers counts the re-routes).
        """
        choice = self.plan(query)
        if not choice.feasible:
            raise InfeasiblePlanError(
                f"no mirror of the group can answer {query}"
            )
        return self._executor.execute_with_report(choice.chosen.plan)

    def cost_model(self) -> CostModel:
        return self._cost_model


@dataclass
class PartitionPlan:
    """Outcome of partition planning: a union over per-partition plans."""

    plan: Plan | None
    cost: float
    per_source: dict[str, PlanningResult]
    infeasible_partitions: list[str]

    @property
    def feasible(self) -> bool:
        return self.plan is not None


@dataclass
class PartialAnswer:
    """A flagged, possibly incomplete answer from a partitioned source.

    ``complete`` is True only when every partition contributed;
    ``missing_partitions`` names the slices whose tuples are absent
    (down after retries, or unable to express the query at all).
    """

    result: Relation
    complete: bool
    missing_partitions: list[str] = field(default_factory=list)
    report: ExecutionReport | None = None

    @property
    def rows(self) -> list[dict]:
        return self.result.rows


class PartitionedSource:
    """A logical relation horizontally partitioned across sources."""

    def __init__(
        self,
        sources: list[CapabilitySource],
        planner: Planner | None = None,
        k1: float = 100.0,
        k2: float = 1.0,
        cache: ResultCache | None = None,
        retry_policy: RetryPolicy | None = None,
        parallel_workers: int | None = None,
    ):
        """``cache`` and ``retry_policy`` configure the group's single
        long-lived executor (shared across every ``ask``);
        ``parallel_workers`` makes it parallel, so the per-partition
        slices of a union plan are fetched concurrently."""
        _check_same_attributes(sources, "partition")
        self.sources = {s.name: s for s in sources}
        self.planner = planner if planner is not None else GenCompact()
        self._cost_model = CostModel(
            {s.name: s.stats for s in sources}, k1, k2
        )
        self.cache = cache
        self._executor = _make_executor(
            self.sources,
            cache=cache,
            retry_policy=retry_policy,
            cost_model=self._cost_model,
            parallel_workers=parallel_workers,
        )

    def plan(self, query: TargetQuery) -> PartitionPlan:
        """One plan per partition, combined by union.

        Every partition must be plannable: a partition that cannot
        answer the query makes the whole query infeasible (answering
        from the other partitions would silently drop tuples).
        """
        per_source: dict[str, PlanningResult] = {}
        plans: list[Plan] = []
        infeasible: list[str] = []
        total = 0.0
        for name, source in self.sources.items():
            retargeted = TargetQuery(query.condition, query.attributes, name)
            result = self.planner.plan(retargeted, source, self._cost_model)
            per_source[name] = result
            if result.feasible:
                plans.append(result.plan)
                total += result.cost
            else:
                infeasible.append(name)
        if infeasible:
            return PartitionPlan(None, float("inf"), per_source, infeasible)
        plan: Plan = plans[0] if len(plans) == 1 else UnionPlan(plans)
        return PartitionPlan(plan, total, per_source, [])

    def ask(self, query: TargetQuery, partial: bool = False
            ) -> ExecutionReport | PartialAnswer:
        """Plan and execute across all partitions.

        By default the usual all-or-nothing semantics: raise if any
        partition cannot answer (at planning time) and propagate any
        execution failure.  With ``partial=True`` the query degrades
        gracefully -- unplannable or dead partitions are dropped and a
        :class:`PartialAnswer` flags exactly what is missing.  At least
        one partition must answer; losing all of them still raises.
        """
        if partial:
            return self._ask_partial(query)
        outcome = self.plan(query)
        if outcome.plan is None:
            raise InfeasiblePlanError(
                "partitions without a feasible plan: "
                + ", ".join(outcome.infeasible_partitions)
            )
        return self._executor.execute_with_report(outcome.plan)

    def _ask_partial(self, query: TargetQuery) -> PartialAnswer:
        """Per-partition execution, skipping slices that are down."""
        missing: list[str] = []
        merged: Relation | None = None
        reports: list[ExecutionReport] = []
        for name, source in self.sources.items():
            retargeted = TargetQuery(query.condition, query.attributes, name)
            planned = self.planner.plan(retargeted, source, self._cost_model)
            if not planned.feasible:
                missing.append(name)
                continue
            try:
                report = self._executor.execute_with_report(planned.plan)
            except TransientSourceError:
                missing.append(name)
                continue
            reports.append(report)
            merged = report.result if merged is None \
                else merged.union(report.result)
        if merged is None:
            raise InfeasiblePlanError(
                "no partition could answer the query (missing: "
                + ", ".join(missing) + ")"
            )
        per_source: dict[str, MeterSnapshot] = {}
        for report in reports:
            for name, delta in report.per_source.items():
                existing = per_source.get(name)
                per_source[name] = delta if existing is None \
                    else existing + delta
        combined = ExecutionReport(
            merged,
            sum(r.queries for r in reports),
            sum(r.tuples_transferred for r in reports),
            attempts=sum(r.attempts for r in reports),
            retries=sum(r.retries for r in reports),
            failovers=sum(r.failovers for r in reports),
            backoff_seconds=sum(r.backoff_seconds for r in reports),
            duration_seconds=sum(r.duration_seconds for r in reports),
            per_source=per_source,
        )
        return PartialAnswer(merged, not missing, missing, combined)

    def cost_model(self) -> CostModel:
        return self._cost_model


def merge_stats(results: dict[str, PlanningResult]) -> PlannerStats:
    """Aggregate planner stats across a group (for experiment reporting)."""
    merged = PlannerStats()
    for result in results.values():
        merged.merge(result.stats)
    return merged
