"""Multi-source selection: mirrors and horizontal partitions.

Real mediators rarely see a logical relation behind exactly one form.
Two common multi-source shapes, both built from the paper's
single-source machinery:

* **Mirrors** -- several sources hold the *same* data with different
  capabilities and cost constants (a fast site with a poor form vs. a
  slow site with a rich form).  Planning = plan against every mirror,
  keep the cheapest feasible plan.  A query only one mirror's form can
  express is still answerable -- capability-sensitive source *selection*.
* **Partitions** -- each source holds a disjoint horizontal slice (e.g.
  regional listings).  Planning = plan the query per partition and union
  the results; the whole query is feasible iff every partition can
  answer it (a partition that cannot would silently lose tuples).

Both return ordinary :class:`PlanningResult`-like outcomes whose plans
execute through the ordinary :class:`~repro.plans.execute.Executor`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasiblePlanError, SchemaError
from repro.planners.base import Planner, PlannerStats, PlanningResult
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.plans.nodes import Plan, UnionPlan
from repro.query import TargetQuery
from repro.source.source import CapabilitySource


def _check_same_attributes(sources: list[CapabilitySource], role: str) -> None:
    if len(sources) < 2:
        raise SchemaError(f"a {role} group needs at least two sources")
    names = {s.name for s in sources}
    if len(names) != len(sources):
        raise SchemaError(f"duplicate source names in {role} group")
    first = set(sources[0].schema.attribute_names)
    for source in sources[1:]:
        if set(source.schema.attribute_names) != first:
            raise SchemaError(
                f"{role} group members must share an attribute set; "
                f"{source.name!r} differs from {sources[0].name!r}"
            )


@dataclass
class MirrorChoice:
    """Outcome of mirror planning: which mirror won and all the options."""

    chosen: PlanningResult | None
    per_source: dict[str, PlanningResult]

    @property
    def feasible(self) -> bool:
        return self.chosen is not None and self.chosen.feasible


class MirrorGroup:
    """The same logical relation served by several sources."""

    def __init__(
        self,
        sources: list[CapabilitySource],
        planner: Planner | None = None,
        k1: float = 100.0,
        k2: float = 1.0,
        per_source_constants: dict[str, tuple[float, float]] | None = None,
    ):
        _check_same_attributes(sources, "mirror")
        self.sources = {s.name: s for s in sources}
        self.planner = planner if planner is not None else GenCompact()
        self._cost_model = CostModel(
            {s.name: s.stats for s in sources},
            k1,
            k2,
            per_source=per_source_constants,
        )

    def plan(self, query: TargetQuery) -> MirrorChoice:
        """Plan against every mirror; keep the cheapest feasible plan.

        ``query.source`` is ignored (the group *is* the logical source);
        each per-mirror attempt retargets the query.
        """
        per_source: dict[str, PlanningResult] = {}
        best: PlanningResult | None = None
        for name, source in self.sources.items():
            retargeted = TargetQuery(query.condition, query.attributes, name)
            result = self.planner.plan(retargeted, source, self._cost_model)
            per_source[name] = result
            if result.feasible and (best is None or result.cost < best.cost):
                best = result
        return MirrorChoice(best, per_source)

    def ask(self, query: TargetQuery):
        """Plan across the mirrors and execute the winning plan."""
        from repro.plans.execute import Executor

        choice = self.plan(query)
        if not choice.feasible:
            raise InfeasiblePlanError(
                f"no mirror of the group can answer {query}"
            )
        executor = Executor(self.sources)
        return executor.execute_with_report(choice.chosen.plan)

    def cost_model(self) -> CostModel:
        return self._cost_model


@dataclass
class PartitionPlan:
    """Outcome of partition planning: a union over per-partition plans."""

    plan: Plan | None
    cost: float
    per_source: dict[str, PlanningResult]
    infeasible_partitions: list[str]

    @property
    def feasible(self) -> bool:
        return self.plan is not None


class PartitionedSource:
    """A logical relation horizontally partitioned across sources."""

    def __init__(
        self,
        sources: list[CapabilitySource],
        planner: Planner | None = None,
        k1: float = 100.0,
        k2: float = 1.0,
    ):
        _check_same_attributes(sources, "partition")
        self.sources = {s.name: s for s in sources}
        self.planner = planner if planner is not None else GenCompact()
        self._cost_model = CostModel(
            {s.name: s.stats for s in sources}, k1, k2
        )

    def plan(self, query: TargetQuery) -> PartitionPlan:
        """One plan per partition, combined by union.

        Every partition must be plannable: a partition that cannot
        answer the query makes the whole query infeasible (answering
        from the other partitions would silently drop tuples).
        """
        per_source: dict[str, PlanningResult] = {}
        plans: list[Plan] = []
        infeasible: list[str] = []
        total = 0.0
        for name, source in self.sources.items():
            retargeted = TargetQuery(query.condition, query.attributes, name)
            result = self.planner.plan(retargeted, source, self._cost_model)
            per_source[name] = result
            if result.feasible:
                plans.append(result.plan)
                total += result.cost
            else:
                infeasible.append(name)
        if infeasible:
            return PartitionPlan(None, float("inf"), per_source, infeasible)
        plan: Plan = plans[0] if len(plans) == 1 else UnionPlan(plans)
        return PartitionPlan(plan, total, per_source, [])

    def ask(self, query: TargetQuery):
        """Plan and execute across all partitions."""
        from repro.plans.execute import Executor

        outcome = self.plan(query)
        if outcome.plan is None:
            raise InfeasiblePlanError(
                "partitions without a feasible plan: "
                + ", ".join(outcome.infeasible_partitions)
            )
        executor = Executor(self.sources)
        return executor.execute_with_report(outcome.plan)

    def cost_model(self) -> CostModel:
        return self._cost_model


def merge_stats(results: dict[str, PlanningResult]) -> PlannerStats:
    """Aggregate planner stats across a group (for experiment reporting)."""
    merged = PlannerStats()
    for result in results.values():
        merged.merge(result.stats)
    return merged
