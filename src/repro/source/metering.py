"""Metering of source traffic.

The cost model the paper motivates (Section 6.2) is about real resource
use: number of source queries issued and amount of data transferred.
Every simulated source carries a :class:`QueryMeter` so experiments can
report *measured* costs next to the optimizer's estimates (benchmark E2).

Beyond the paper's two cost drivers the meter tracks reliability
accounting: ``rejected`` (capability rejections -- permanent, never
retried), ``failures`` (transient faults injected or observed at the
source) and ``retries`` (re-attempts the executor charged to this
source).  The ``rejected``-vs-``retries`` split is what lets tests
assert that capability rejections are never retried.

Meters are **thread-safe**: the parallel executor hits one source's
meter from many worker threads at once, and the counters are
read-modify-write, so every mutation and :meth:`~QueryMeter.snapshot`
happens under an internal lock.  Snapshots are therefore consistent
cuts (``queries`` and ``tuples`` from the same moment), not torn reads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class MeterSnapshot:
    """Immutable reading of a meter."""

    queries: int = 0
    tuples: int = 0
    rejected: int = 0
    failures: int = 0
    retries: int = 0

    def cost(self, k1: float, k2: float) -> float:
        """Measured cost under the paper's Eq. 1."""
        return self.queries * k1 + self.tuples * k2

    def __sub__(self, other: "MeterSnapshot") -> "MeterSnapshot":
        return MeterSnapshot(
            self.queries - other.queries,
            self.tuples - other.tuples,
            self.rejected - other.rejected,
            self.failures - other.failures,
            self.retries - other.retries,
        )

    def __add__(self, other: "MeterSnapshot") -> "MeterSnapshot":
        return MeterSnapshot(
            self.queries + other.queries,
            self.tuples + other.tuples,
            self.rejected + other.rejected,
            self.failures + other.failures,
            self.retries + other.retries,
        )


@dataclass
class QueryMeter:
    """Counts queries answered, tuples returned, rejections, faults, retries.

    All mutators and :meth:`snapshot` are serialized on a private lock,
    so concurrent executors never lose increments or observe torn
    snapshots.
    """

    queries: int = 0
    tuples: int = 0
    rejected: int = 0
    failures: int = 0
    retries: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, result_size: int) -> None:
        with self._lock:
            self.queries += 1
            self.tuples += result_size

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_failure(self) -> None:
        """A transient fault (outage, timeout, rate limit) hit a call."""
        with self._lock:
            self.failures += 1

    def record_retry(self) -> None:
        """The executor is re-attempting a failed call against this source."""
        with self._lock:
            self.retries += 1

    def snapshot(self) -> MeterSnapshot:
        with self._lock:
            return MeterSnapshot(
                self.queries, self.tuples, self.rejected, self.failures,
                self.retries,
            )

    def reset(self) -> None:
        with self._lock:
            self.queries = 0
            self.tuples = 0
            self.rejected = 0
            self.failures = 0
            self.retries = 0
