"""Fault injection for the simulated Internet sources.

The paper's setting is *autonomous* sources (Section 3): the mediator
does not control them, and real ones are intermittently slow, metered
and down.  A :class:`FaultInjector` attached to a
:class:`~repro.source.source.CapabilitySource` makes the simulation
honest about that: before a call reaches the form, the injector may
raise a transient fault -- an outage, a timeout, or a rate-limit
rejection -- drawn from a **seeded** RNG so every run of an experiment
sees the identical fault sequence.

Faults are *transient* (:class:`~repro.errors.TransientSourceError`
subclasses) and therefore retryable; they are deliberately disjoint
from capability rejections (:class:`~repro.errors.UnsupportedQueryError`),
which are permanent for a given query and must never be retried.

Besides probabilistic faults the injector models hard outages:
:meth:`take_down` makes every subsequent call fail until
:meth:`restore` -- the scenario mirror failover exists for.

The same family includes :class:`SimulatedLatency`: a seeded per-call
delay standing in for the round-trip a real Internet source costs.  It
is what makes parallel execution *measurable* -- with every source call
paying, say, 50 ms, a Union fanned out over four sources finishes in
one round-trip instead of four, and the speedup is reproducible because
the delays are drawn from a seeded RNG, not from the network weather.

Both classes are thread-safe: the parallel executor drives one source
(and thus its injector and latency model) from many worker threads, and
RNG draws plus the accounting counters are serialized on an internal
lock so the drawn sequence is exactly the seeded one, merely consumed
in whatever order the threads arrive.
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import (
    SourceRateLimitError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
)


class FaultInjector:
    """Seeded, deterministic fault source for one simulated site.

    ``transient_rate`` / ``timeout_rate`` / ``rate_limit_rate`` are
    per-call probabilities of the three fault kinds (their sum must not
    exceed 1).  ``timeout_latency`` is the simulated seconds a timed-out
    call wastes; ``retry_after`` is the wait a rate-limit response asks
    for.  No real time passes -- both are accounting values surfaced on
    the raised exception.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        timeout_rate: float = 0.0,
        rate_limit_rate: float = 0.0,
        timeout_latency: float = 0.5,
        retry_after: float = 0.25,
    ):
        if min(transient_rate, timeout_rate, rate_limit_rate) < 0.0:
            raise ValueError("fault rates must be non-negative")
        total = transient_rate + timeout_rate + rate_limit_rate
        if total > 1.0:
            raise ValueError(
                f"fault rates must sum to a probability, got {total}"
            )
        self.seed = seed
        self.transient_rate = transient_rate
        self.timeout_rate = timeout_rate
        self.rate_limit_rate = rate_limit_rate
        self.timeout_latency = timeout_latency
        self.retry_after = retry_after
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.down = False
        #: How many faults of each kind were injected (for assertions).
        self.injected = {"outage": 0, "unavailable": 0, "timeout": 0,
                         "rate_limit": 0}

    # ------------------------------------------------------------------
    def take_down(self) -> None:
        """Hard outage: every call fails until :meth:`restore`."""
        self.down = True

    def restore(self) -> None:
        self.down = False

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def reset(self) -> None:
        """Restore the source and rewind the RNG to the seed."""
        with self._lock:
            self.down = False
            self._rng = random.Random(self.seed)
            for kind in self.injected:
                self.injected[kind] = 0

    # ------------------------------------------------------------------
    def draw(self, source: str) -> TransientSourceError | None:
        """The fault (if any) for the next call against ``source``.

        Advances the seeded RNG exactly once per call, so the fault
        sequence is a pure function of the seed and the call order.
        Serialized on the injector's lock: concurrent callers consume
        the same seeded sequence, one draw each, with no draw lost or
        duplicated.
        """
        with self._lock:
            if self.down:
                self.injected["outage"] += 1
                return SourceUnavailableError(
                    f"source {source!r} is down", source=source
                )
            roll = self._rng.random()
            if roll < self.transient_rate:
                self.injected["unavailable"] += 1
                return SourceUnavailableError(
                    f"source {source!r} dropped the connection", source=source
                )
            roll -= self.transient_rate
            if roll < self.timeout_rate:
                self.injected["timeout"] += 1
                return SourceTimeoutError(
                    f"source {source!r} timed out after "
                    f"{self.timeout_latency:g}s", source=source,
                    elapsed=self.timeout_latency,
                )
            roll -= self.timeout_rate
            if roll < self.rate_limit_rate:
                self.injected["rate_limit"] += 1
                return SourceRateLimitError(
                    f"source {source!r} rate-limited the caller "
                    f"(retry after {self.retry_after:g}s)", source=source,
                    retry_after=self.retry_after,
                )
            return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "DOWN" if self.down else "up"
        return (
            f"FaultInjector(seed={self.seed}, p_fail="
            f"{self.transient_rate + self.timeout_rate + self.rate_limit_rate:g}, "
            f"{state}, injected={self.total_injected})"
        )


class SimulatedLatency:
    """Seeded, deterministic per-call latency for one simulated site.

    Every call against the source pays ``base`` seconds plus a uniform
    draw from ``[0, jitter]`` taken from a **seeded** RNG -- the delay
    *sequence* is a pure function of the seed and the call order, so a
    benchmark run is reproducible in the same sense a
    :class:`FaultInjector` run is.

    With ``real_sleep=True`` (the default) the delay is actually slept,
    which is the whole point: it turns serial-vs-parallel execution
    into a measurable wall-clock difference.  With ``real_sleep=False``
    the delay is only accounted (``slept_seconds``), for tests that
    want the bookkeeping without the waiting.
    """

    def __init__(
        self,
        seed: int = 0,
        base: float = 0.05,
        jitter: float = 0.0,
        real_sleep: bool = True,
    ):
        if base < 0.0 or jitter < 0.0:
            raise ValueError("latency base and jitter must be non-negative")
        self.seed = seed
        self.base = base
        self.jitter = jitter
        self.real_sleep = real_sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: Accounting: calls seen and total (simulated) seconds of delay.
        self.calls = 0
        self.slept_seconds = 0.0

    def reset(self) -> None:
        """Rewind the RNG to the seed and zero the accounting."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self.calls = 0
            self.slept_seconds = 0.0

    def draw(self) -> float:
        """The delay for the next call (advances the seeded RNG once)."""
        with self._lock:
            delay = self.base
            if self.jitter > 0.0:
                delay += self._rng.random() * self.jitter
            self.calls += 1
            self.slept_seconds += delay
            return delay

    def apply(self) -> float:
        """Draw the next delay and (really) spend it; returns the delay.

        The sleep happens *outside* the lock, so concurrent calls
        against the same source overlap their waits -- exactly the
        behaviour a parallel executor exists to exploit.
        """
        delay = self.draw()
        if self.real_sleep and delay > 0.0:
            time.sleep(delay)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulatedLatency(seed={self.seed}, base={self.base:g}, "
            f"jitter={self.jitter:g}, calls={self.calls})"
        )
