"""Simulated capability-limited Internet sources."""

from repro.source.library import (
    bank,
    bank_description,
    bookstore,
    bookstore_description,
    car_guide,
    car_guide_description,
    classifieds,
    classifieds_description,
    flights,
    flights_description,
    standard_catalog,
)
from repro.source.faults import FaultInjector, SimulatedLatency
from repro.source.metering import MeterSnapshot, QueryMeter
from repro.source.source import CapabilitySource

__all__ = [
    "CapabilitySource",
    "FaultInjector",
    "SimulatedLatency",
    "QueryMeter",
    "MeterSnapshot",
    "bookstore",
    "bookstore_description",
    "car_guide",
    "car_guide_description",
    "bank",
    "bank_description",
    "flights",
    "flights_description",
    "classifieds",
    "classifieds_description",
    "standard_catalog",
]
