"""A library of ready-made capability-limited sources.

These mirror the sources the paper evaluates against:

* :func:`bookstore` -- Example 1.1's BarnesAndNoble: one author at a
  time, optional title-word search; no way to ask for two authors in a
  single query, no bulk download.
* :func:`car_guide` -- Example 1.2's Autobytel form: single values for
  ``style``, ``make`` and a ``price`` upper bound, plus a *list* of
  values for ``size``; the form's field order is fixed (order-sensitive
  grammar) which exercises Section 6.1's description rewriting and query
  fixing.
* :func:`bank` -- the Section 4 PIN example: ``balance`` is exported only
  when the query supplies the PIN.
* :func:`flights` -- a route-required travel source (both endpoints
  mandatory).
* :func:`classifieds` -- a small listings source that *does* allow full
  download (``true`` queries), exercising EPG/IPG's download plans.

Every function is pure in ``(n, seed)`` so tests and benchmarks are
reproducible.
"""

from __future__ import annotations

from itertools import combinations, product

from repro.data.generate import (
    generate_accounts,
    generate_books,
    generate_cars,
    generate_flights,
)
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.description import SourceDescription

BOOK_EXPORTS = ["id", "title", "author", "subject", "binding", "price", "year"]


def bookstore_description() -> SourceDescription:
    """SSDL for the bookstore: author and/or title-word search."""
    return (
        DescriptionBuilder("bookstore")
        .rule("by_author", "author = $str", attributes=BOOK_EXPORTS)
        .rule(
            "by_author_title",
            "author = $str and title contains $str",
            attributes=BOOK_EXPORTS,
        )
        .rule("by_title", "title contains $str", attributes=BOOK_EXPORTS)
        .rule(
            "by_subject",
            "subject = $str | subject = $str and title contains $str",
            attributes=BOOK_EXPORTS,
        )
        .build()
    )


def bookstore(n: int = 20000, seed: int = 1999) -> CapabilitySource:
    return CapabilitySource(
        "bookstore", generate_books(n, seed), bookstore_description()
    )


CAR_EXPORTS = ["id", "make", "model", "style", "size", "color", "price", "year"]

#: The form's slots in their fixed on-page order.  Each slot offers one or
#: more grammatical spellings (a size restriction may be a single value or
#: a parenthesized list of alternatives).
_CAR_FORM_SLOTS: tuple[tuple[str, ...], ...] = (
    ("style = $str",),
    ("make = $str",),
    ("price <= $num", "price < $num"),
    ("size = $str", "( size_list )"),
)


def car_guide_description() -> SourceDescription:
    """SSDL for the car form: every nonempty combination of the slots, in
    the form's fixed order (order-sensitive)."""
    builder = DescriptionBuilder("car_guide")
    builder.helper(
        "size_list",
        "size = $str or size = $str | size = $str or size_list",
    )
    seen_rule = False
    for r in range(1, len(_CAR_FORM_SLOTS) + 1):
        for slots in combinations(range(len(_CAR_FORM_SLOTS)), r):
            for spellings in product(*(_CAR_FORM_SLOTS[i] for i in slots)):
                rhs = " and ".join(spellings)
                builder.rule("form", rhs, attributes=None if seen_rule else CAR_EXPORTS)
                seen_rule = True
    builder.rule("by_id", "id = $num", attributes=CAR_EXPORTS + ["mileage"])
    return builder.build()


def car_guide(n: int = 12000, seed: int = 1999) -> CapabilitySource:
    return CapabilitySource("car_guide", generate_cars(n, seed), car_guide_description())


ACCOUNT_PUBLIC = ["account_no", "owner", "branch", "type"]


def bank_description() -> SourceDescription:
    """SSDL for the bank: balance only with a PIN (Section 4's example)."""
    return (
        DescriptionBuilder("bank")
        .rule("by_account", "account_no = $num", attributes=ACCOUNT_PUBLIC)
        .rule(
            "by_account_pin",
            "account_no = $num and pin = $num",
            attributes=ACCOUNT_PUBLIC + ["balance"],
        )
        .rule(
            "by_branch",
            "branch = $str | branch = $str and type = $str",
            attributes=ACCOUNT_PUBLIC,
        )
        .build()
    )


def bank(n: int = 5000, seed: int = 1999) -> CapabilitySource:
    return CapabilitySource("bank", generate_accounts(n, seed), bank_description())


FLIGHT_EXPORTS = ["id", "origin", "destination", "airline", "price", "stops", "day"]


def flights_description() -> SourceDescription:
    """SSDL for the travel source: a route is mandatory."""
    return (
        DescriptionBuilder("flights")
        .rule(
            "route",
            "origin = $str and destination = $str",
            attributes=FLIGHT_EXPORTS,
        )
        .rule(
            "route_airline",
            "origin = $str and destination = $str and airline = $str",
            attributes=FLIGHT_EXPORTS,
        )
        .rule(
            "route_price",
            "origin = $str and destination = $str and price <= $num",
            attributes=FLIGHT_EXPORTS,
        )
        .build()
    )


def flights(n: int = 15000, seed: int = 1999) -> CapabilitySource:
    return CapabilitySource("flights", generate_flights(n, seed), flights_description())


def classifieds_description() -> SourceDescription:
    """SSDL for a small listings site that permits full download."""
    return (
        DescriptionBuilder("classifieds")
        .rule("by_make", "make = $str", attributes=CAR_EXPORTS)
        .rule("everything", "true", attributes=CAR_EXPORTS + ["mileage"])
        .build()
    )


def classifieds(n: int = 800, seed: int = 7) -> CapabilitySource:
    return CapabilitySource(
        "classifieds", generate_cars(n, seed), classifieds_description()
    )


def cars_description() -> SourceDescription:
    """SSDL for Example 4.1's car form: make + price bound, or make +
    color -- the running example of the paper's Sections 4-6."""
    return (
        DescriptionBuilder("cars")
        .rule(
            "by_make_price",
            "make = $str and price < $num",
            attributes=["make", "model", "year", "color", "price"],
        )
        .rule(
            "by_make_color",
            "make = $str and color = $str",
            attributes=["make", "model", "year", "color"],
        )
        .build()
    )


def cars(n: int = 2000, seed: int = 1999) -> CapabilitySource:
    """Example 4.1's ``cars`` source over the generated car relation.

    Not part of :func:`standard_catalog` (whose composition seed
    experiments depend on); the trace CLI adds it explicitly so the
    paper's running example queries work verbatim.
    """
    return CapabilitySource("cars", generate_cars(n, seed), cars_description())


def standard_catalog(seed: int = 1999) -> dict[str, CapabilitySource]:
    """All library sources keyed by name (the examples' default catalog)."""
    return {
        source.name: source
        for source in (
            bookstore(seed=seed),
            car_guide(seed=seed),
            bank(seed=seed),
            flights(seed=seed),
            classifieds(seed=seed % 1000 + 7),
        )
    }
