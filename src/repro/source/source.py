"""The simulated capability-limited Internet source.

A :class:`CapabilitySource` bundles

* a relation (the site's data),
* a **native** SSDL description -- possibly order sensitive, exactly what
  the site's form accepts,
* a lazily built **commutation-closed** description (Section 6.1) that
  planners use so they need not fire the commutativity rewrite rule, and
* statistics and a traffic meter.

The source *enforces* its capabilities: :meth:`execute` re-checks every
incoming query against the native description and raises
:class:`UnsupportedQueryError` otherwise -- the stand-in for a web form
that simply has no field for the condition you wanted to send.  This
independent enforcement is what makes the feasibility guarantees of the
planners testable rather than assumed.
"""

from __future__ import annotations

from typing import Iterable

from repro.conditions.tree import Condition
from repro.data.relation import Relation
from repro.data.stats import TableStats
from repro.errors import UnsupportedQueryError
from repro.source.faults import FaultInjector
from repro.source.metering import QueryMeter
from repro.ssdl.commute import commutation_closure, fix_condition
from repro.ssdl.description import CheckResult, SourceDescription


class CapabilitySource:
    """A relation fronted by an SSDL-described, capability-enforcing interface."""

    def __init__(
        self,
        name: str,
        relation: Relation,
        description: SourceDescription,
        order_insensitive: bool = False,
        fault_injector: FaultInjector | None = None,
    ):
        """``order_insensitive=True`` records that the native grammar's
        conjunct order is immaterial to the real source; the closed
        description is then used for enforcement too (no fixing needed).

        ``fault_injector`` (also assignable after construction) makes
        calls fail transiently with the injector's seeded probabilities
        -- the offline stand-in for a flaky live site.
        """
        self.name = name
        self.relation = relation
        self.description = description
        self.order_insensitive = order_insensitive
        self.fault_injector = fault_injector
        self.meter = QueryMeter()
        self._stats: TableStats | None = None
        self._closed: SourceDescription | None = None

    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self.relation.schema

    @property
    def stats(self) -> TableStats:
        """Table statistics, built on first use."""
        if self._stats is None:
            self._stats = TableStats.from_relation(self.relation)
        return self._stats

    @property
    def closed_description(self) -> SourceDescription:
        """The commutation-closed description (built on first use)."""
        if self._closed is None:
            self._closed = commutation_closure(self.description)
        return self._closed

    @property
    def enforcing_description(self) -> SourceDescription:
        """What :meth:`execute` validates against."""
        return self.closed_description if self.order_insensitive else self.description

    # ------------------------------------------------------------------
    def check(self, condition: Condition) -> CheckResult:
        """``Check(C, R)`` against the planning (closed) description."""
        return self.closed_description.check(condition)

    def supports(self, condition: Condition, attributes: Iterable[str]) -> bool:
        """Is ``SP(condition, attributes, this)`` plannable?"""
        return self.check(condition).supports(attributes)

    def fix(self, condition: Condition, attributes: Iterable[str]) -> Condition:
        """Reorder a planned condition into natively acceptable form."""
        if self.order_insensitive:
            return condition
        return fix_condition(
            condition, self.description, frozenset(attributes)
        )

    # ------------------------------------------------------------------
    def execute(self, condition: Condition, attributes: Iterable[str]) -> Relation:
        """Answer the source query ``SP(condition, attributes, R)``.

        Enforces the native capabilities; meters traffic.  Raises
        :class:`UnsupportedQueryError` for anything the form cannot
        express -- callers are expected to have fixed query order first
        (see :meth:`fix`).

        With a :class:`FaultInjector` attached, the call may instead
        raise a :class:`~repro.errors.TransientSourceError`: the network
        fails before the form can even reject, so faults are drawn
        *before* capability enforcement and metered as ``failures``
        (distinct from ``rejected``).
        """
        if self.fault_injector is not None:
            fault = self.fault_injector.draw(self.name)
            if fault is not None:
                self.meter.record_failure()
                raise fault
        attrs = frozenset(attributes)
        result = self.enforcing_description.check(condition)
        if not result.supports(attrs):
            self.meter.record_rejection()
            if not result:
                reason = "the condition expression is not accepted by the form"
            else:
                exportable = " | ".join(
                    "{" + ", ".join(sorted(s)) + "}" for s in result.attribute_sets
                )
                reason = (
                    f"the form cannot export attributes {sorted(attrs)} for this "
                    f"condition (exportable: {exportable})"
                )
            raise UnsupportedQueryError(
                f"source {self.name!r} rejected SP({condition}, "
                f"{sorted(attrs)}): {reason}",
                condition=condition,
                attributes=attrs,
            )
        answer = self.relation.sp(condition, attrs)
        self.meter.record(len(answer))
        return answer

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CapabilitySource({self.name!r}, {len(self.relation)} rows, "
            f"{self.description.rule_count()} grammar rules)"
        )
