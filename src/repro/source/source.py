"""The simulated capability-limited Internet source.

A :class:`CapabilitySource` bundles

* a relation (the site's data),
* a **native** SSDL description -- possibly order sensitive, exactly what
  the site's form accepts,
* a lazily built **commutation-closed** description (Section 6.1) that
  planners use so they need not fire the commutativity rewrite rule, and
* statistics and a traffic meter.

The source *enforces* its capabilities: :meth:`execute` re-checks every
incoming query against the native description and raises
:class:`UnsupportedQueryError` otherwise -- the stand-in for a web form
that simply has no field for the condition you wanted to send.  This
independent enforcement is what makes the feasibility guarantees of the
planners testable rather than assumed.

Sources are safe to call from several threads at once (the parallel
executor does), and they enforce their *own* concurrency ceiling: a
``max_concurrency`` limit gates :meth:`execute` with a semaphore, the
stand-in for a site that throttles past N simultaneous connections.
The ``max_in_flight`` high-water mark makes the guarantee testable --
no matter how aggressive the caller, it never exceeds the limit.
"""

from __future__ import annotations

import asyncio
import threading
import time
import weakref
from contextlib import asynccontextmanager, contextmanager
from typing import AsyncIterator, Iterable, Iterator

from repro.conditions.tree import Condition
from repro.data.relation import Relation
from repro.data.stats import TableStats
from repro.errors import UnsupportedQueryError
from repro.observability.metrics import get_metrics
from repro.observability.trace import get_tracer
from repro.source.faults import FaultInjector, SimulatedLatency
from repro.source.metering import QueryMeter
from repro.ssdl.commute import commutation_closure, fix_condition
from repro.ssdl.description import CheckResult, SourceDescription


class CapabilitySource:
    """A relation fronted by an SSDL-described, capability-enforcing interface."""

    def __init__(
        self,
        name: str,
        relation: Relation,
        description: SourceDescription,
        order_insensitive: bool = False,
        fault_injector: FaultInjector | None = None,
        latency: SimulatedLatency | None = None,
        max_concurrency: int | None = None,
    ):
        """``order_insensitive=True`` records that the native grammar's
        conjunct order is immaterial to the real source; the closed
        description is then used for enforcement too (no fixing needed).

        ``fault_injector`` (also assignable after construction) makes
        calls fail transiently with the injector's seeded probabilities
        -- the offline stand-in for a flaky live site.

        ``latency`` (also assignable after construction) charges every
        call a seeded round-trip delay -- the offline stand-in for a
        distant live site, and what makes parallel execution pay off.

        ``max_concurrency`` caps simultaneous in-flight :meth:`execute`
        calls (``None`` = unlimited): the source's declared capacity,
        enforced here with a semaphore so no executor -- however
        parallel -- can hammer the site past it.  Assignable after
        construction, but only until the first call arrives.
        """
        if max_concurrency is not None and max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        self.name = name
        self.relation = relation
        self.description = description
        self.order_insensitive = order_insensitive
        self.fault_injector = fault_injector
        self.latency = latency
        self.max_concurrency = max_concurrency
        self.meter = QueryMeter()
        #: High-water mark of simultaneous in-flight calls (for tests
        #: asserting the semaphore is never oversubscribed).
        self.max_in_flight = 0
        self._in_flight = 0
        self._gate: threading.BoundedSemaphore | None = None
        #: Async twins of ``_gate``, one per event loop (a semaphore is
        #: bound to the loop it was created on; keying weakly lets dead
        #: loops drop their gates).  Sync and async callers share the
        #: same *declared* capacity but gate independently -- mixing
        #: both against one throttled source concurrently is not a
        #: supported deployment shape.
        self._async_gates: "weakref.WeakKeyDictionary" = \
            weakref.WeakKeyDictionary()
        self._flight_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._stats: TableStats | None = None
        self._closed: SourceDescription | None = None
        #: Cached registry instruments, invalidated when the process
        #: registry is swapped (kept off the hot path: one identity
        #: check per call instead of name lookups).
        self._metrics_cache: tuple | None = None

    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self.relation.schema

    @property
    def stats(self) -> TableStats:
        """Table statistics, built on first use (thread-safe)."""
        if self._stats is None:
            with self._state_lock:
                if self._stats is None:
                    self._stats = TableStats.from_relation(self.relation)
        return self._stats

    @property
    def closed_description(self) -> SourceDescription:
        """The commutation-closed description (built on first use,
        thread-safe: concurrent first callers build it once)."""
        if self._closed is None:
            with self._state_lock:
                if self._closed is None:
                    self._closed = commutation_closure(self.description)
        return self._closed

    @property
    def enforcing_description(self) -> SourceDescription:
        """What :meth:`execute` validates against."""
        return self.closed_description if self.order_insensitive else self.description

    # ------------------------------------------------------------------
    def compile_capabilities(
        self,
        max_tokens: int | None = None,
        max_sequences: int | None = None,
    ) -> dict[str, "CompilationReport"]:
        """Compile this source's grammars into token-trie recognizers.

        The registration-time step of the capability-compilation story:
        both the planning (commutation-closed) description and the
        native (enforcing) description are compiled, so planner Checks
        *and* execution-time enforcement become token walks.  Grammars
        exceeding the budget keep their Earley recognizer (the reports
        say which).  Idempotent and cheap to repeat; call again after
        mutating a description.
        """
        from repro.ssdl.compiled import (
            DEFAULT_MAX_SEQUENCES,
            DEFAULT_MAX_TOKENS,
        )

        kwargs = {
            "max_tokens": DEFAULT_MAX_TOKENS if max_tokens is None else max_tokens,
            "max_sequences": (
                DEFAULT_MAX_SEQUENCES if max_sequences is None else max_sequences
            ),
        }
        reports = {"native": self.description.compile(**kwargs)}
        closed = self.closed_description
        if closed is not self.description:
            reports["closed"] = closed.compile(**kwargs)
        return reports

    def invalidate_compiled(self) -> None:
        """Drop compiled capability forms (capability drift): Checks
        fall back to Earley until :meth:`compile_capabilities` reruns."""
        self.description.invalidate_compiled()
        if self._closed is not None:
            self._closed.invalidate_compiled()

    def replace_description(
        self,
        description: SourceDescription,
        order_insensitive: bool | None = None,
    ) -> None:
        """Capability drift: the autonomous site changed its form.

        Swaps the native description and drops every piece of state
        derived from the old one -- the commutation closure and (with
        it) the compiled recognizers and Check caches, which all live
        on the discarded description objects.  The caller (normally
        :meth:`~repro.mediator.Mediator.mutate_source`) must bump the
        catalog version so cached plans built against the old grammar
        are invalidated too.
        """
        with self._state_lock:
            self.description = description
            self._closed = None
            if order_insensitive is not None:
                self.order_insensitive = order_insensitive

    @property
    def compiled(self) -> bool:
        """Is the planning description's compiled recognizer active?"""
        return self.closed_description.compiled

    def check(self, condition: Condition) -> CheckResult:
        """``Check(C, R)`` against the planning (closed) description."""
        return self.closed_description.check(condition)

    def supports(self, condition: Condition, attributes: Iterable[str]) -> bool:
        """Is ``SP(condition, attributes, this)`` plannable?"""
        return self.check(condition).supports(attributes)

    def fix(self, condition: Condition, attributes: Iterable[str]) -> Condition:
        """Reorder a planned condition into natively acceptable form."""
        if self.order_insensitive:
            return condition
        return fix_condition(
            condition, self.description, frozenset(attributes)
        )

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """How many :meth:`execute` calls are running right now."""
        return self._in_flight

    @contextmanager
    def concurrency_slot(self) -> Iterator[float]:
        """Hold one of the source's ``max_concurrency`` slots.

        Blocks while the site is at capacity.  :meth:`execute` takes a
        slot automatically; the context manager is public so callers
        batching raw relation access can respect the limit too.

        Yields the **queue wait** in seconds -- how long this call
        blocked on the semaphore before its slot opened (0.0 for
        ungated sources).  The wait is also published to the metrics
        registry, so throttled sites show their queueing next to their
        service time.
        """
        gate = self._concurrency_gate()
        instruments = self._instruments()
        queue_wait = 0.0
        if gate is not None:
            waited_from = time.perf_counter()
            gate.acquire()
            queue_wait = time.perf_counter() - waited_from
            instruments["queue_wait"].observe(queue_wait)
        with self._flight_lock:
            self._in_flight += 1
            if self._in_flight > self.max_in_flight:
                self.max_in_flight = self._in_flight
            watermark = self._in_flight
        instruments["in_flight"].set(watermark)
        try:
            yield queue_wait
        finally:
            with self._flight_lock:
                self._in_flight -= 1
            if gate is not None:
                gate.release()

    def _instruments(self) -> dict:
        """This source's registry instruments (cached per registry).

        The cache is re-keyed by registry identity, so swapping the
        process registry (``use_metrics`` in tests) transparently
        redirects the source's publishing.
        """
        metrics = get_metrics()
        cached = self._metrics_cache
        if cached is None or cached[0] is not metrics:
            prefix = f"source.{self.name}"
            cached = (
                metrics,
                {
                    "queries": metrics.counter(f"{prefix}.queries"),
                    "tuples": metrics.counter(f"{prefix}.tuples"),
                    "rejected": metrics.counter(f"{prefix}.rejected"),
                    "failures": metrics.counter(f"{prefix}.failures"),
                    "in_flight": metrics.gauge(f"{prefix}.in_flight"),
                    "queue_wait": metrics.histogram(
                        f"{prefix}.queue_wait_seconds"
                    ),
                },
            )
            self._metrics_cache = cached
        return cached[1]

    def _concurrency_gate(self) -> threading.BoundedSemaphore | None:
        if self.max_concurrency is None:
            return None
        if self._gate is None:
            with self._flight_lock:
                if self._gate is None:
                    self._gate = threading.BoundedSemaphore(
                        self.max_concurrency
                    )
        return self._gate

    def _async_concurrency_gate(self) -> asyncio.BoundedSemaphore | None:
        """The running loop's gate for this source (created on demand)."""
        if self.max_concurrency is None:
            return None
        loop = asyncio.get_running_loop()
        with self._flight_lock:
            gate = self._async_gates.get(loop)
            if gate is None:
                gate = asyncio.BoundedSemaphore(self.max_concurrency)
                self._async_gates[loop] = gate
        return gate

    @asynccontextmanager
    async def async_concurrency_slot(self) -> AsyncIterator[float]:
        """:meth:`concurrency_slot`'s awaitable twin.

        Waits on an :class:`asyncio.BoundedSemaphore` instead of
        blocking a thread, so a throttled source suspends its callers'
        *tasks* while the event loop keeps serving everyone else.
        Shares the ``in_flight`` bookkeeping (and the ``max_in_flight``
        high-water mark) with the sync path; a caller cancelled while
        queued never takes a slot and never leaks one.
        """
        gate = self._async_concurrency_gate()
        instruments = self._instruments()
        queue_wait = 0.0
        if gate is not None:
            waited_from = time.perf_counter()
            await gate.acquire()
            queue_wait = time.perf_counter() - waited_from
            instruments["queue_wait"].observe(queue_wait)
        with self._flight_lock:
            self._in_flight += 1
            if self._in_flight > self.max_in_flight:
                self.max_in_flight = self._in_flight
            watermark = self._in_flight
        instruments["in_flight"].set(watermark)
        try:
            yield queue_wait
        finally:
            with self._flight_lock:
                self._in_flight -= 1
            if gate is not None:
                gate.release()

    def _draw_fault(self, instruments: dict) -> None:
        """Raise this call's injected fault, if the injector draws one."""
        if self.fault_injector is not None:
            fault = self.fault_injector.draw(self.name)
            if fault is not None:
                self.meter.record_failure()
                instruments["failures"].inc()
                raise fault

    def _enforce_and_answer(
        self, condition: Condition, attributes: Iterable[str],
        instruments: dict, span,
    ) -> Relation:
        """The capability-enforcement + metering core shared by the sync
        and async execute paths (everything after latency and faults)."""
        attrs = frozenset(attributes)
        result = self.enforcing_description.check(condition)
        if not result.supports(attrs):
            self.meter.record_rejection()
            instruments["rejected"].inc()
            if not result:
                reason = (
                    "the condition expression is not accepted by the form"
                )
            else:
                exportable = " | ".join(
                    "{" + ", ".join(sorted(s)) + "}"
                    for s in result.attribute_sets
                )
                reason = (
                    f"the form cannot export attributes {sorted(attrs)} "
                    f"for this condition (exportable: {exportable})"
                )
            raise UnsupportedQueryError(
                f"source {self.name!r} rejected SP({condition}, "
                f"{sorted(attrs)}): {reason}",
                condition=condition,
                attributes=attrs,
            )
        answer = self.relation.sp(condition, attrs)
        self.meter.record(len(answer))
        instruments["queries"].inc()
        instruments["tuples"].inc(len(answer))
        span.set_attribute("rows", len(answer))
        return answer

    def execute(self, condition: Condition, attributes: Iterable[str]) -> Relation:
        """Answer the source query ``SP(condition, attributes, R)``.

        Enforces the native capabilities; meters traffic.  Raises
        :class:`UnsupportedQueryError` for anything the form cannot
        express -- callers are expected to have fixed query order first
        (see :meth:`fix`).

        With a :class:`FaultInjector` attached, the call may instead
        raise a :class:`~repro.errors.TransientSourceError`: the network
        fails before the form can even reject, so faults are drawn
        *before* capability enforcement and metered as ``failures``
        (distinct from ``rejected``).

        With a :class:`SimulatedLatency` attached, every call -- faulted
        or not -- first pays its seeded round-trip delay, held inside
        the concurrency slot so a throttled site really does serialize
        the waits.
        """
        instruments = self._instruments()
        with self.concurrency_slot() as queue_wait, get_tracer().span(
            "source.service", source=self.name
        ) as span:
            span.set_attribute("queue_wait_seconds", queue_wait)
            if self.latency is not None:
                delay = self.latency.apply()
                span.set_attribute("latency_seconds", delay)
            self._draw_fault(instruments)
            return self._enforce_and_answer(
                condition, attributes, instruments, span
            )

    async def execute_async(
        self, condition: Condition, attributes: Iterable[str]
    ) -> Relation:
        """:meth:`execute`'s awaitable twin, with identical semantics.

        Same capability enforcement, metering, tracing, fault drawing
        and concurrency gating -- but the round-trip latency is paid
        with ``await asyncio.sleep`` and the concurrency gate with an
        :class:`asyncio.BoundedSemaphore`, so thousands of in-flight
        calls cost tasks, not threads.  The latency draw itself comes
        from the same seeded stream as the sync path (one draw per
        call), which is what lets benchmarks assert both executors were
        charged identical simulated time.
        """
        instruments = self._instruments()
        async with self.async_concurrency_slot() as queue_wait:
            with get_tracer().span(
                "source.service", source=self.name
            ) as span:
                span.set_attribute("queue_wait_seconds", queue_wait)
                if self.latency is not None:
                    delay = self.latency.draw()
                    if self.latency.real_sleep and delay > 0.0:
                        await asyncio.sleep(delay)
                    span.set_attribute("latency_seconds", delay)
                self._draw_fault(instruments)
                return self._enforce_and_answer(
                    condition, attributes, instruments, span
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CapabilitySource({self.name!r}, {len(self.relation)} rows, "
            f"{self.description.rule_count()} grammar rules)"
        )
