"""GenCompact -- the paper's contribution (Section 6).

GenCompact improves on GenModular by:

1. a **reduced rewrite module** -- only the distributive family of
   rules fires (commutativity is folded into the commutation-closed
   source description, associativity and copy are subsumed by IPG's
   canonical-tree processing);
2. an **integrated plan-generation module** (IPG) that walks each
   canonical CT once, producing the single best plan directly with the
   pruning rules PR1-PR3.

The final plan is produced against the commutation-closed description;
the executor "fixes" the order of each source query of the one plan
that actually runs (Section 6.1).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.conditions.canonical import canonicalize
from repro.conditions.rewrite import GENCOMPACT_RULES, RewriteEngine
from repro.observability.trace import get_tracer, trace_event
from repro.planners.base import CheckCounter, Planner, PlannerStats, PlanningResult
from repro.planners.ipg import IPG
from repro.plans.cost import CostModel
from repro.plans.nodes import Plan
from repro.query import TargetQuery
from repro.source.source import CapabilitySource

logger = logging.getLogger(__name__)


@dataclass
class GenCompact(Planner):
    """The efficient scheme.

    ``pr1``/``pr2``/``pr3`` toggle the pruning rules (benchmark E5's
    ablation); ``mcsc_solver`` picks the set-cover algorithm used in the
    sub-plan combination step (``"dp"``, ``"enumerate"`` = the paper's
    O(2^Q) search, or ``"greedy"``).
    """

    max_rewrites: int = 40
    max_rewrite_steps: int = 4000
    max_size_factor: float = 2.0
    pr1: bool = True
    pr2: bool = True
    pr3: bool = True
    mcsc_solver: str = "dp"
    name: str = field(default="GenCompact", init=False)

    def __post_init__(self) -> None:
        disabled = [
            label
            for label, enabled in (("pr1", self.pr1), ("pr2", self.pr2),
                                   ("pr3", self.pr3))
            if not enabled
        ]
        if disabled:
            self.name = "GenCompact(no " + ",".join(disabled) + ")"

    def plan(
        self,
        query: TargetQuery,
        source: CapabilitySource,
        cost_model: CostModel,
    ) -> PlanningResult:
        def run():
            stats = PlannerStats()
            tracer = get_tracer()
            with tracer.span(
                "planner.plan", planner=self.name, query=str(query),
                source=source.name,
            ) as plan_span:
                checker = CheckCounter(source.closed_description)
                engine = RewriteEngine(
                    rules=GENCOMPACT_RULES,
                    max_trees=self.max_rewrites,
                    max_steps=self.max_rewrite_steps,
                    max_size_factor=self.max_size_factor,
                    canonical=True,
                )
                with tracer.span("planner.rewrite") as rewrite_span:
                    rewriting = engine.explore(query.condition)
                    rewrite_span.set_attributes(
                        trees=len(rewriting.trees),
                        budget_spent=rewriting.steps,
                        truncated=rewriting.truncated,
                    )
                stats.rewrite_truncated = rewriting.truncated

                ipg = IPG(
                    source.name,
                    checker,
                    cost_model,
                    stats,
                    pr1=self.pr1,
                    pr2=self.pr2,
                    pr3=self.pr3,
                    mcsc_solver=self.mcsc_solver,
                )
                best_plan: Plan | None = None
                best_cost = float("inf")
                with tracer.span("planner.generate") as generate_span:
                    for ct in rewriting.trees:
                        stats.cts_processed += 1
                        candidate = ipg.best_plan(
                            canonicalize(ct), query.attributes
                        )
                        if candidate is None:
                            continue
                        with tracer.span("planner.cost") as cost_span:
                            candidate_cost = cost_model.cost(candidate)
                            cost_span.set_attribute("cost", candidate_cost)
                        if candidate_cost < best_cost:
                            best_plan = candidate
                            best_cost = candidate_cost
                    generate_span.set_attributes(
                        cts_processed=stats.cts_processed,
                        Q=stats.subplans_considered,
                        pr1_fires=stats.pr1_fires,
                        pr2_fires=stats.pr2_fires,
                        pr3_fires=stats.pr3_fires,
                    )
                stats.check_calls = checker.calls
                stats.check_compiled = checker.compiled_answers
                stats.check_fallbacks = checker.fallbacks
                plan_span.set_attributes(
                    feasible=best_plan is not None,
                    Q=stats.subplans_considered,
                    pr1_fires=stats.pr1_fires,
                    pr2_fires=stats.pr2_fires,
                    pr3_fires=stats.pr3_fires,
                    check_calls=stats.check_calls,
                    rewrite_budget_spent=rewriting.steps,
                )
                trace_event(
                    logger, logging.DEBUG,
                    "GenCompact planned %s: %d CTs, %d Check calls, best "
                    "cost %s",
                    query, stats.cts_processed, stats.check_calls,
                    f"{best_cost:.1f}" if best_plan is not None
                    else "infeasible",
                    event="planner.planned", planner=self.name,
                    cts_processed=stats.cts_processed,
                    check_calls=stats.check_calls,
                    feasible=best_plan is not None,
                    cost=best_cost if best_plan is not None else None,
                )
            return best_plan, stats, cost_model

        return self._timed(run, query)
