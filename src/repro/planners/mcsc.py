"""Minimum-Cost Set Cover -- the sub-plan combination step (Section 6.4.2/6.4.3).

After IPG collects feasible sub-plans (each covering a subset of a
node's children), it must choose a minimum-total-cost collection of
sub-plans that together cover *all* children.  The paper notes this is
the NP-complete MCSC problem and solves it exactly by enumerating all
sub-plan subsets in O(2^Q), keeping Q small via pruning rule PR3.

Because the paper's cost model is additive over source queries, an
exact dynamic program over covered-children bitmasks gives the same
optimum in O(2^k * Q) for k children -- usually much cheaper.  We
implement **both** (they are cross-checked in tests and compared in
benchmark E8) plus the classical greedy ln(n)-approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generic, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class CoverCandidate(Generic[T]):
    """A candidate set: which elements it covers, its cost, its payload."""

    coverage: frozenset[int]
    cost: float
    payload: T


@dataclass
class CoverSolution(Generic[T]):
    """A cover: total cost and the chosen candidates."""

    cost: float
    chosen: list[CoverCandidate[T]]


def solve_dp(
    n_elements: int, candidates: Sequence[CoverCandidate[T]]
) -> CoverSolution[T] | None:
    """Exact MCSC by dynamic programming over covered-element bitmasks."""
    if n_elements == 0:
        return CoverSolution(0.0, [])
    full = (1 << n_elements) - 1
    masks = [_mask(c.coverage) for c in candidates]
    inf = math.inf
    best_cost = [inf] * (full + 1)
    best_from: list[tuple[int, int] | None] = [None] * (full + 1)
    best_cost[0] = 0.0
    for mask in range(full + 1):
        cost_here = best_cost[mask]
        if cost_here is inf:
            continue
        if mask == full:
            break
        # Branch on the lowest uncovered element: some chosen candidate
        # must cover it, so trying only those is complete.
        uncovered = (~mask) & full
        lowest = uncovered & (-uncovered)
        for index, cand_mask in enumerate(masks):
            if not cand_mask & lowest:
                continue
            new_mask = mask | cand_mask
            new_cost = cost_here + candidates[index].cost
            if new_cost < best_cost[new_mask]:
                best_cost[new_mask] = new_cost
                best_from[new_mask] = (mask, index)
    if best_cost[full] is inf:
        return None
    chosen: list[CoverCandidate[T]] = []
    mask = full
    while mask:
        step = best_from[mask]
        if step is None:
            break
        mask, index = step
        chosen.append(candidates[index])
    return CoverSolution(best_cost[full], chosen)


def solve_enumerate(
    n_elements: int, candidates: Sequence[CoverCandidate[T]]
) -> CoverSolution[T] | None:
    """Exact MCSC by the paper's O(2^Q) enumeration of sub-plan subsets."""
    if n_elements == 0:
        return CoverSolution(0.0, [])
    full = (1 << n_elements) - 1
    masks = [_mask(c.coverage) for c in candidates]
    best: CoverSolution[T] | None = None
    q = len(candidates)
    for subset in range(1, 1 << q):
        covered = 0
        cost = 0.0
        bits = subset
        while bits:
            low = bits & (-bits)
            index = low.bit_length() - 1
            covered |= masks[index]
            cost += candidates[index].cost
            bits ^= low
            if best is not None and cost >= best.cost:
                break
        else:
            if covered == full and (best is None or cost < best.cost):
                chosen = [
                    candidates[i] for i in range(q) if subset & (1 << i)
                ]
                best = CoverSolution(cost, chosen)
    return best


def solve_greedy(
    n_elements: int, candidates: Sequence[CoverCandidate[T]]
) -> CoverSolution[T] | None:
    """Greedy cost-effectiveness heuristic (Hochbaum [6]'s ln-approximation)."""
    if n_elements == 0:
        return CoverSolution(0.0, [])
    full = (1 << n_elements) - 1
    masks = [_mask(c.coverage) for c in candidates]
    covered = 0
    cost = 0.0
    chosen: list[CoverCandidate[T]] = []
    remaining = set(range(len(candidates)))
    while covered != full:
        best_index = -1
        best_ratio = math.inf
        for index in remaining:
            gain = bin(masks[index] & ~covered).count("1")
            if gain == 0:
                continue
            ratio = candidates[index].cost / gain
            if ratio < best_ratio:
                best_ratio = ratio
                best_index = index
        if best_index < 0:
            return None
        covered |= masks[best_index]
        cost += candidates[best_index].cost
        chosen.append(candidates[best_index])
        remaining.discard(best_index)
    return CoverSolution(cost, chosen)


def solve_minmax(
    n_elements: int, candidates: Sequence[CoverCandidate[T]]
) -> CoverSolution[T] | None:
    """Exact *min-max* set cover: minimize the most expensive chosen set.

    The combination step under the bottleneck (response-time) cost
    model: the cover's cost is the maximum of its members' costs, not
    their sum.  Solved exactly by scanning candidate costs in ascending
    order and testing coverability with the prefix; the reported
    ``cost`` is that bottleneck value.
    """
    if n_elements == 0:
        return CoverSolution(0.0, [])
    full = (1 << n_elements) - 1
    order = sorted(range(len(candidates)), key=lambda i: candidates[i].cost)
    masks = [_mask(c.coverage) for c in candidates]
    covered = 0
    chosen: list[CoverCandidate[T]] = []
    for index in order:
        gain = masks[index] & ~covered
        if gain:
            covered |= masks[index]
            chosen.append(candidates[index])
        if covered == full:
            # Every chosen candidate costs <= candidates[index].cost and
            # no cover exists using only cheaper candidates (we added
            # greedily by ascending cost, taking every useful set).
            # Drop early picks made redundant by later ones (cannot
            # raise the max; avoids needless source queries).
            kept: list[CoverCandidate[T]] = []
            kept_masks: list[int] = []
            for candidate in reversed(chosen):
                mask = _mask(candidate.coverage)
                union_others = 0
                for other in kept_masks:
                    union_others |= other
                if mask & ~union_others:
                    kept.append(candidate)
                    kept_masks.append(mask)
            kept.reverse()
            union = 0
            for mask in kept_masks:
                union |= mask
            if union != full:  # safety net; should not happen
                kept = chosen
            return CoverSolution(max(c.cost for c in kept), kept)
    return None


def prune_dominated(
    candidates: Sequence[CoverCandidate[T]],
) -> list[CoverCandidate[T]]:
    """Pruning rule PR3: drop candidates dominated by another candidate.

    Candidate ``a`` dominates ``b`` when ``a`` covers a superset of
    ``b``'s elements at no greater cost.  Any cover using ``b`` can swap
    in ``a`` without covering less or paying more, so dropping ``b``
    never removes the optimum.  Ties (equal coverage and cost) keep the
    earliest candidate.
    """
    kept: list[CoverCandidate[T]] = []
    for index, candidate in enumerate(candidates):
        dominated = False
        for other_index, other in enumerate(candidates):
            if other_index == index:
                continue
            if (
                other.coverage >= candidate.coverage
                and other.cost <= candidate.cost
                and (
                    other.coverage > candidate.coverage
                    or other.cost < candidate.cost
                    or other_index < index
                )
            ):
                dominated = True
                break
        if not dominated:
            kept.append(candidate)
    return kept


def _mask(coverage: frozenset[int]) -> int:
    mask = 0
    for element in coverage:
        mask |= 1 << element
    return mask
