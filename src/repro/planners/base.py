"""Common planner infrastructure: interface, stats, counting Check wrapper.

Every plan-generation scheme in this package (GenModular, GenCompact and
the four baseline strategies) implements :class:`Planner` and returns a
:class:`PlanningResult`, so experiments can swap schemes freely.

:class:`PlannerStats` carries the counters the paper's evaluation is
about -- how many condition trees were processed, how many (sub-)plans
were examined, how many Check calls were made -- plus wall-clock time.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.conditions.tree import Condition
from repro.plans.cost import CostModel, INFINITE_COST
from repro.plans.nodes import Plan
from repro.query import TargetQuery
from repro.source.source import CapabilitySource
from repro.ssdl.description import CheckResult, SourceDescription


@dataclass
class PlannerStats:
    """Counters describing the work a planning run performed.

    ``pr1_fires``/``pr2_fires``/``pr3_fires`` count how often each of
    the paper's pruning rules actually cut something -- PR1 returning
    a pure plan early (or skipping a dominated recursion), PR2
    discarding a non-cheapest sub-plan for a covered subset, PR3
    dropping a dominated cover candidate.  They are what benchmark E5
    ablates and what the planner-phase trace spans surface.
    """

    cts_processed: int = 0
    plans_considered: int = 0
    subplans_considered: int = 0
    check_calls: int = 0
    #: Cache-missing Checks this run answered with the compiled
    #: (token-trie) recognizer vs. ones that fell back to Earley
    #: although a compiled form exists (condition beyond the horizon).
    check_compiled: int = 0
    check_fallbacks: int = 0
    recursive_calls: int = 0
    mcsc_sets: int = 0
    mcsc_problems: int = 0
    pr1_fires: int = 0
    pr2_fires: int = 0
    pr3_fires: int = 0
    rewrite_truncated: bool = False
    elapsed_sec: float = 0.0

    def merge(self, other: "PlannerStats") -> None:
        self.cts_processed += other.cts_processed
        self.plans_considered += other.plans_considered
        self.subplans_considered += other.subplans_considered
        self.check_calls += other.check_calls
        self.check_compiled += other.check_compiled
        self.check_fallbacks += other.check_fallbacks
        self.recursive_calls += other.recursive_calls
        self.mcsc_sets += other.mcsc_sets
        self.mcsc_problems += other.mcsc_problems
        self.pr1_fires += other.pr1_fires
        self.pr2_fires += other.pr2_fires
        self.pr3_fires += other.pr3_fires
        self.rewrite_truncated = self.rewrite_truncated or other.rewrite_truncated
        self.elapsed_sec += other.elapsed_sec


@dataclass
class PlanningResult:
    """Outcome of planning one target query with one scheme."""

    planner: str
    query: TargetQuery
    plan: Plan | None
    cost: float
    stats: PlannerStats = field(default_factory=PlannerStats)
    #: Catalog version this result was planned (or rebound) under; set
    #: by the mediator so drift oracles can prove no stale plan is ever
    #: served (``None`` for results planned outside a mediator).
    catalog_version: int | None = None

    @property
    def feasible(self) -> bool:
        return self.plan is not None

    def describe(self) -> str:
        from repro.plans.printer import to_paper_notation

        status = f"cost={self.cost:.1f}" if self.feasible else "INFEASIBLE"
        return f"[{self.planner}] {status}: {to_paper_notation(self.plan)}"


class CheckCounter:
    """Counts ``Check`` requests a planner issues against a description.

    The description itself caches parses; this wrapper counts *requests*
    (the planner-side work metric the paper's evaluation reports) while
    the description's own ``check_calls`` counts actual parses.
    """

    def __init__(self, description: SourceDescription):
        self.description = description
        self.calls = 0
        self._compiled_before = description.check_compiled
        self._fallbacks_before = description.check_fallbacks

    def check(self, condition: Condition) -> CheckResult:
        self.calls += 1
        return self.description.check(condition)

    def supports(self, condition: Condition, attributes) -> bool:
        return self.check(condition).supports(attributes)

    @property
    def compiled_answers(self) -> int:
        """Description-side compiled-recognizer answers since this
        counter was created (approximate under concurrent planners)."""
        return self.description.check_compiled - self._compiled_before

    @property
    def fallbacks(self) -> int:
        """Description-side Earley fallbacks since this counter was
        created (approximate under concurrent planners)."""
        return self.description.check_fallbacks - self._fallbacks_before


class Planner(ABC):
    """A plan-generation scheme."""

    #: Human-readable scheme name (used in experiment tables).
    name: str = "planner"

    @abstractmethod
    def plan(
        self,
        query: TargetQuery,
        source: CapabilitySource,
        cost_model: CostModel,
    ) -> PlanningResult:
        """Generate the best feasible plan for ``query`` (or None)."""

    def _timed(self, fn, query: TargetQuery) -> PlanningResult:
        """Helper: run ``fn()`` -> (plan, stats) and wrap with timing/cost."""
        started = time.perf_counter()
        plan, stats, cost_model = fn()
        stats.elapsed_sec = time.perf_counter() - started
        cost = cost_model.cost(plan) if plan is not None else INFINITE_COST
        return PlanningResult(self.name, query, plan, cost, stats)
