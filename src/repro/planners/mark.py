"""The mark module (Section 5.2).

For every node ``n`` of a condition tree, compute ``n.export`` -- what
the source can export when asked to evaluate ``Cond(n)``.  Because
condition nodes are immutable, the marking is returned as a mapping
node -> :class:`CheckResult` instead of a mutated field.

Every node is processed "even if one of its ancestors represents a
condition expression that can be evaluated at R", exactly as Example 5.1
explains: EPG needs to consider evaluating any part of the CT at the
source.
"""

from __future__ import annotations

from repro.conditions.tree import Condition
from repro.planners.base import CheckCounter
from repro.ssdl.description import CheckResult


def mark(condition: Condition, checker: CheckCounter) -> dict[Condition, CheckResult]:
    """Compute the export field of every node of the CT."""
    marking: dict[Condition, CheckResult] = {}
    for node in condition.nodes():
        if node not in marking:
            marking[node] = checker.check(node)
    return marking
