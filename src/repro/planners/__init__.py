"""Plan-generation schemes: GenModular, GenCompact and the baselines."""

from repro.planners.base import (
    CheckCounter,
    Planner,
    PlannerStats,
    PlanningResult,
)
from repro.planners.baselines import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    NaivePlanner,
)
from repro.planners.epg import EPG
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.planners.ipg import IPG
from repro.planners.mark import mark
from repro.planners.mcsc import (
    CoverCandidate,
    CoverSolution,
    prune_dominated,
    solve_dp,
    solve_enumerate,
    solve_greedy,
)

__all__ = [
    "Planner",
    "PlannerStats",
    "PlanningResult",
    "CheckCounter",
    "GenModular",
    "GenCompact",
    "EPG",
    "IPG",
    "mark",
    "NaivePlanner",
    "DiscoPlanner",
    "CNFPlanner",
    "DNFPlanner",
    "CoverCandidate",
    "CoverSolution",
    "solve_dp",
    "solve_enumerate",
    "solve_greedy",
    "prune_dominated",
]
