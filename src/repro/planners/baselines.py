"""Baseline strategies the paper compares against (Sections 1 and 2).

* :class:`NaivePlanner` -- "many systems assume that sources have full
  relational capabilities": send the whole query; infeasible whenever
  the source rejects it.
* :class:`DiscoPlanner` -- DISCO considers only the options in which the
  source processes the entire condition expression or no part of it
  (full download); it never splits the condition.
* :class:`CNFPlanner` -- the Garlic strategy: transform the condition to
  CNF, push the conjunction of the supported clauses to the source, and
  evaluate the remaining clauses at the mediator; with no supported
  clause, attempt to download the entire (relevant part of the) source.
* :class:`DNFPlanner` -- a DNF system: one source query per disjunct,
  results unioned; within each disjunct, supported conjuncts are pushed
  and the rest filtered at the mediator.

All baselines plan against the commutation-closed description -- they
are charitably assumed to know that conjunct order can be fixed -- so
every cost difference against GenCompact is due to *strategy*, not
order handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.conditions.normal_forms import cnf_clauses, dnf_terms
from repro.conditions.tree import TRUE, Condition, conjunction, disjunction
from repro.errors import ConditionError
from repro.planners.base import CheckCounter, Planner, PlannerStats, PlanningResult
from repro.plans.nodes import (
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    download_plan,
)


def _push_conjunction(
    parts: list[Condition],
    attributes: frozenset[str],
    checker: CheckCounter,
    source_name: str,
    whole: Condition,
) -> Plan | None:
    """Best-effort plan for ``AND(parts)`` in the CNF/DNF baseline style.

    Pushes the largest source-supported sub-conjunction of the parts
    (kept in their given order) and filters the rest at the mediator;
    falls back to a download plan, then to infeasible (None).  This is
    the maximal-pushdown heuristic of the CNF/DNF systems -- unlike
    GenCompact it considers one source query, never a combination.
    """
    n = len(parts)
    subset_budget = 12  # exhaustive subsets up to 2^12; greedy beyond
    if n <= subset_budget:
        index_subsets = (
            indices
            for size in range(n, 0, -1)
            for indices in combinations(range(n), size)
        )
    else:
        # Greedy accumulation for very wide conjunctions.
        pushed: list[int] = []
        for index, part in enumerate(parts):
            candidate = conjunction([parts[i] for i in pushed] + [part])
            if checker.check(candidate):
                pushed.append(index)
        index_subsets = (
            tuple(pushed[:k]) for k in range(len(pushed), 0, -1)
        )
    for indices in index_subsets:
        chosen = set(indices)
        pushed_cond = conjunction([parts[i] for i in indices])
        local = [parts[i] for i in range(n) if i not in chosen]
        local_cond = conjunction(local)
        needed = attributes | (
            frozenset() if local_cond.is_true else local_cond.attributes()
        )
        if checker.check(pushed_cond).supports(needed):
            inner = SourceQuery(pushed_cond, needed, source_name)
            if local_cond.is_true and needed == attributes:
                return inner
            return Postprocess(local_cond, attributes, inner)
    # Nothing pushable: Garlic "attempts to download the entire source".
    fetch = attributes | whole.attributes()
    if checker.check(TRUE).supports(fetch):
        return download_plan(whole, attributes, source_name)
    return None


@dataclass
class NaivePlanner(Planner):
    """Send the full query; no fallback."""

    name: str = field(default="Naive", init=False)

    def plan(self, query, source, cost_model) -> PlanningResult:
        def run():
            stats = PlannerStats(cts_processed=1)
            checker = CheckCounter(source.closed_description)
            plan: Plan | None = None
            if checker.check(query.condition).supports(query.attributes):
                plan = SourceQuery(query.condition, query.attributes, source.name)
            stats.check_calls = checker.calls
            stats.plans_considered = 1
            return plan, stats, cost_model

        return self._timed(run, query)


@dataclass
class DiscoPlanner(Planner):
    """Whole condition at the source, or whole download -- nothing between."""

    name: str = field(default="DISCO", init=False)

    def plan(self, query, source, cost_model) -> PlanningResult:
        def run():
            stats = PlannerStats(cts_processed=1)
            checker = CheckCounter(source.closed_description)
            plan: Plan | None = None
            if checker.check(query.condition).supports(query.attributes):
                plan = SourceQuery(query.condition, query.attributes, source.name)
            else:
                fetch = query.attributes | query.condition.attributes()
                if checker.check(TRUE).supports(fetch):
                    plan = download_plan(query.condition, query.attributes, source.name)
            stats.check_calls = checker.calls
            stats.plans_considered = 2
            return plan, stats, cost_model

        return self._timed(run, query)


@dataclass
class CNFPlanner(Planner):
    """The Garlic strategy: CNF clauses, supported ones pushed."""

    max_terms: int = 512
    name: str = field(default="CNF (Garlic)", init=False)

    def plan(self, query, source, cost_model) -> PlanningResult:
        def run():
            stats = PlannerStats(cts_processed=1)
            checker = CheckCounter(source.closed_description)
            plan: Plan | None
            try:
                clauses = [
                    disjunction(clause)
                    for clause in cnf_clauses(query.condition, self.max_terms)
                ]
            except ConditionError:
                clauses = None
            if clauses is None:
                plan = None
            elif not clauses:  # condition was TRUE
                plan = (
                    SourceQuery(TRUE, query.attributes, source.name)
                    if checker.check(TRUE).supports(query.attributes)
                    else None
                )
            else:
                plan = _push_conjunction(
                    clauses, query.attributes, checker, source.name, query.condition
                )
            stats.check_calls = checker.calls
            stats.plans_considered = 1
            return plan, stats, cost_model

        return self._timed(run, query)


@dataclass
class DNFPlanner(Planner):
    """A DNF system: one source interaction per disjunct, results unioned."""

    max_terms: int = 512
    name: str = field(default="DNF", init=False)

    def plan(self, query, source, cost_model) -> PlanningResult:
        def run():
            stats = PlannerStats(cts_processed=1)
            checker = CheckCounter(source.closed_description)
            plan: Plan | None
            try:
                terms = dnf_terms(query.condition, self.max_terms)
            except ConditionError:
                terms = None
            if terms is None:
                plan = None
            elif not terms:  # condition was TRUE
                plan = (
                    SourceQuery(TRUE, query.attributes, source.name)
                    if checker.check(TRUE).supports(query.attributes)
                    else None
                )
            else:
                term_plans: list[Plan] = []
                feasible = True
                for term in terms:
                    term_cond = conjunction(term)
                    if checker.check(term_cond).supports(query.attributes):
                        term_plans.append(
                            SourceQuery(term_cond, query.attributes, source.name)
                        )
                        continue
                    sub = _push_conjunction(
                        list(term), query.attributes, checker, source.name, term_cond
                    )
                    if sub is None:
                        feasible = False
                        break
                    term_plans.append(sub)
                if not feasible:
                    plan = None
                elif len(term_plans) == 1:
                    plan = term_plans[0]
                else:
                    plan = UnionPlan(term_plans)
            stats.check_calls = checker.calls
            stats.plans_considered = 1
            return plan, stats, cost_model

        return self._timed(run, query)
