"""GenModular -- the naive, exhaustive four-module scheme (Section 5).

rewrite -> mark -> generate (EPG) -> cost, exactly as Figure 2:

1. The **rewrite** module enumerates condition trees equivalent to the
   target condition using commutative, associative, distributive and
   copy rules (bounded; see :class:`repro.conditions.rewrite.RewriteEngine`).
2. The **mark** module computes every node's export field via Check.
3. The **generate** module runs EPG on each marked CT, producing all
   feasible plans as Choice trees.
4. The **cost** module resolves the Choice operators and picks the
   cheapest plan overall.

GenModular plans against the *native* source description -- its
commutativity rewrite rule is what copes with order-sensitive grammars
(the expensive strategy Section 6.1 replaces in GenCompact).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.conditions.rewrite import GENMODULAR_RULES, RewriteEngine
from repro.observability.trace import get_tracer, trace_event
from repro.planners.base import CheckCounter, Planner, PlannerStats, PlanningResult
from repro.planners.epg import EPG
from repro.planners.mark import mark
from repro.plans.cost import CostModel, count_concrete
from repro.plans.nodes import Plan
from repro.query import TargetQuery
from repro.source.source import CapabilitySource

logger = logging.getLogger(__name__)


@dataclass
class GenModular(Planner):
    """The exhaustive scheme.  Budgets bound the rewrite exploration.

    ``use_closed_description=True`` switches the commutativity burden
    from the rewrite module to the source description (Section 6.1's
    alternative) -- benchmark E9 compares the two configurations.
    """

    max_rewrites: int = 60
    max_rewrite_steps: int = 4000
    max_size_factor: float = 1.5
    use_closed_description: bool = False
    rules: tuple = GENMODULAR_RULES
    name: str = field(default="GenModular", init=False)

    def plan(
        self,
        query: TargetQuery,
        source: CapabilitySource,
        cost_model: CostModel,
    ) -> PlanningResult:
        def run():
            stats = PlannerStats()
            description = (
                source.closed_description
                if self.use_closed_description
                else source.description
            )
            rules = self.rules
            if self.use_closed_description:
                from repro.conditions.rewrite import commutative_rule

                rules = tuple(r for r in rules if r is not commutative_rule)
            checker = CheckCounter(description)
            tracer = get_tracer()
            engine = RewriteEngine(
                rules=rules,
                max_trees=self.max_rewrites,
                max_steps=self.max_rewrite_steps,
                max_size_factor=self.max_size_factor,
            )
            with tracer.span(
                "planner.plan", planner=self.name, query=str(query),
                source=source.name,
            ) as plan_span:
                with tracer.span("planner.rewrite") as rewrite_span:
                    rewriting = engine.explore(query.condition)
                    rewrite_span.set_attributes(
                        trees=len(rewriting.trees),
                        budget_spent=rewriting.steps,
                        truncated=rewriting.truncated,
                    )
                stats.rewrite_truncated = rewriting.truncated

                best_plan: Plan | None = None
                best_cost = float("inf")
                for ct in rewriting.trees:
                    stats.cts_processed += 1
                    with tracer.span("planner.mark"):
                        marking = mark(ct, checker)
                    epg = EPG(source.name, checker, marking, stats)
                    with tracer.span("planner.generate") as generate_span:
                        choice = epg.generate(ct, query.attributes)
                        if choice is not None:
                            q = count_concrete(choice)
                            stats.subplans_considered += q
                            generate_span.set_attribute("Q", q)
                    if choice is None:
                        continue
                    with tracer.span("planner.cost") as cost_span:
                        candidate = cost_model.resolve(choice)
                        candidate_cost = cost_model.cost(candidate)
                        cost_span.set_attribute("cost", candidate_cost)
                    if candidate_cost < best_cost:
                        best_plan = candidate
                        best_cost = candidate_cost
                stats.check_calls = checker.calls
                stats.check_compiled = checker.compiled_answers
                stats.check_fallbacks = checker.fallbacks
                plan_span.set_attributes(
                    feasible=best_plan is not None,
                    Q=stats.subplans_considered,
                    pr1_fires=stats.pr1_fires,
                    pr2_fires=stats.pr2_fires,
                    pr3_fires=stats.pr3_fires,
                    check_calls=stats.check_calls,
                    rewrite_budget_spent=rewriting.steps,
                )
                trace_event(
                    logger, logging.DEBUG,
                    "GenModular planned %s: %d CTs (truncated=%s), best "
                    "cost %s",
                    query, stats.cts_processed, stats.rewrite_truncated,
                    f"{best_cost:.1f}" if best_plan is not None
                    else "infeasible",
                    event="planner.planned", planner=self.name,
                    cts_processed=stats.cts_processed,
                    check_calls=stats.check_calls,
                    feasible=best_plan is not None,
                    cost=best_cost if best_plan is not None else None,
                )
            return best_plan, stats, cost_model

        return self._timed(run, query)
