"""EPG -- the Exhaustive Plan Generator (Algorithm 5.1).

EPG computes *all* feasible plans for ``SP(n, A, R)`` and represents
them compactly with the Choice operator.  For an AND node it combines
child plans by intersection (line 5) and additionally evaluates any
nonempty subset of children remotely while filtering the remaining
conjuncts at the mediator on the joined result (lines 6-8).  For an OR
node it unions the child plans (line 10).  The download option
(lines 11-12) fetches the relevant attributes with a trivially true
source query and evaluates the whole condition at the mediator; the
paper's listing shows it inside the OR branch, but IPG applies it to
every node kind, so we do too (DESIGN.md discusses the listing
ambiguity -- EPG is meant to be exhaustive, and the extra plans are
sound).

Plans embedding an infeasible sub-plan (the paper's ∅) are eliminated by
propagating ``None``.
"""

from __future__ import annotations

from itertools import combinations

from repro.conditions.tree import TRUE, Condition, conjunction
from repro.planners.base import CheckCounter, PlannerStats
from repro.plans.nodes import (
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    download_plan,
    make_choice,
)
from repro.ssdl.description import CheckResult


class EPG:
    """One EPG run over a single (marked) condition tree."""

    def __init__(
        self,
        source_name: str,
        checker: CheckCounter,
        marking: dict[Condition, CheckResult] | None = None,
        stats: PlannerStats | None = None,
    ):
        self.source_name = source_name
        self.checker = checker
        self.marking = marking or {}
        self.stats = stats if stats is not None else PlannerStats()
        self._memo: dict[tuple[Condition, frozenset[str]], Plan | None] = {}

    # ------------------------------------------------------------------
    def _export(self, node: Condition) -> CheckResult:
        """The node's export field (from the marking, else via Check)."""
        result = self.marking.get(node)
        if result is None:
            result = self.checker.check(node)
            self.marking[node] = result
        return result

    def generate(self, node: Condition, attributes: frozenset[str]) -> Plan | None:
        """All feasible plans for ``SP(node, attributes, R)`` as a Choice.

        Returns ``None`` (the paper's ∅) when no feasible plan exists.
        """
        key = (node, attributes)
        if key in self._memo:
            return self._memo[key]
        self.stats.recursive_calls += 1
        plans: list[Plan] = []

        # Line 2-3: the pure plan.
        if self._export(node).supports(attributes):
            plans.append(SourceQuery(node, attributes, self.source_name))

        if node.is_and:
            plans.extend(self._and_plans(node, attributes))
        elif node.is_or:
            plans.extend(self._or_plans(node, attributes))

        # Lines 11-12: the download option (applied to every node kind).
        fetch = attributes | node.attributes()
        if self._export(TRUE).supports(fetch):
            plans.append(download_plan(node, attributes, self.source_name))

        self.stats.plans_considered += len(plans)
        result = make_choice(plans)
        self._memo[key] = result
        return result

    # ------------------------------------------------------------------
    def _and_plans(self, node: Condition, attributes: frozenset[str]) -> list[Plan]:
        children = node.children
        plans: list[Plan] = []
        # Line 5: intersect plans of all children.
        all_child_plans = [self.generate(child, attributes) for child in children]
        if all(plan is not None for plan in all_child_plans):
            plans.append(IntersectPlan(all_child_plans))
        # Lines 6-8: evaluate subset X remotely, the rest (Local) locally.
        indices = range(len(children))
        for size in range(1, len(children)):
            for x_indices in combinations(indices, size):
                x_set = set(x_indices)
                local = [children[i] for i in indices if i not in x_set]
                local_cond = conjunction(local)
                needed = attributes | local_cond.attributes()
                sub_plans = [self.generate(children[i], needed) for i in x_indices]
                if any(plan is None for plan in sub_plans):
                    continue
                inner: Plan
                if len(sub_plans) == 1:
                    inner = sub_plans[0]
                else:
                    inner = IntersectPlan(sub_plans)
                plans.append(Postprocess(local_cond, attributes, inner))
        return plans

    def _or_plans(self, node: Condition, attributes: frozenset[str]) -> list[Plan]:
        # Line 10: union of plans of all children.  (There is "no
        # opportunity" to filter parts of a disjunction on the results of
        # other parts, as Section 5.3 notes.)
        child_plans = [self.generate(child, attributes) for child in node.children]
        if any(plan is None for plan in child_plans):
            return []
        return [UnionPlan(child_plans)]
