"""IPG -- the Integrated Plan Generator (Algorithm 6.1, Figures 4-6).

IPG integrates GenModular's mark, generate and cost modules: it walks a
*canonical* condition tree top-down and returns the single best feasible
plan, using the cost model and pruning rules during the search:

* **PR1** -- if the pure plan ``SP(n, A, R)`` is feasible, return it
  immediately; no impure plan can beat it under the Eq. 1 cost model.
* **PR2** -- keep only the cheapest sub-plan per covered child-subset.
* **PR3** -- before the set-cover step, drop sub-plans dominated by a
  cheaper-or-equal sub-plan covering a superset of children; and skip
  recursive calls that a pure superset sub-plan already dominates
  (Figure 6, line 12).

Each pruning rule can be disabled independently (benchmark E5's
ablation); with all pruning off, IPG degenerates to an exhaustive search
over the same plan space and must find the same optimum -- a property
the test suite checks.

Because IPG processes canonical trees and considers every child subset,
it covers the plans GenModular only reaches through the associativity
and copy rewrite rules (Section 6.4's key observation).
"""

from __future__ import annotations

from itertools import combinations

from repro.conditions.tree import TRUE, Condition, conjunction, disjunction
from repro.errors import ReproError
from repro.planners.base import CheckCounter, PlannerStats
from repro.planners.mcsc import (
    CoverCandidate,
    CoverSolution,
    prune_dominated,
    solve_dp,
    solve_enumerate,
    solve_greedy,
    solve_minmax,
)
from repro.plans.cost import CostModel
from repro.plans.nodes import (
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    download_plan,
)

#: Child-subset enumeration is O(2^k); refuse beyond this fanout.
MAX_FANOUT = 14

_SOLVERS = {
    "dp": solve_dp,
    "enumerate": solve_enumerate,
    "greedy": solve_greedy,
}


class IPG:
    """One IPG run over canonical condition trees of a single source."""

    def __init__(
        self,
        source_name: str,
        checker: CheckCounter,
        cost_model: CostModel,
        stats: PlannerStats | None = None,
        pr1: bool = True,
        pr2: bool = True,
        pr3: bool = True,
        mcsc_solver: str = "dp",
        max_fanout: int = MAX_FANOUT,
    ):
        self.source_name = source_name
        self.checker = checker
        self.cost_model = cost_model
        self.stats = stats if stats is not None else PlannerStats()
        # PR1 assumes the pure plan is never beaten, which holds for
        # additive (Eq. 1) costing but not, e.g., for the bottleneck
        # model -- the model advertises soundness (DESIGN.md).
        self.pr1 = pr1 and getattr(cost_model, "pr1_sound", True)
        self.pr2 = pr2
        self.pr3 = pr3
        self.max_fanout = max_fanout
        if getattr(cost_model, "aggregate_kind", "sum") == "max":
            # The combination step becomes a min-max cover.
            self._solver = solve_minmax
        else:
            try:
                self._solver = _SOLVERS[mcsc_solver]
            except KeyError:
                raise ReproError(
                    f"unknown MCSC solver {mcsc_solver!r}; pick one of "
                    f"{sorted(_SOLVERS)}"
                ) from None
        self._memo: dict[tuple[Condition, frozenset[str]], Plan | None] = {}

    # ------------------------------------------------------------------
    def _cost(self, plan: Plan) -> float:
        return self.cost_model.cost(plan)

    def _cheaper(self, left: Plan | None, right: Plan | None) -> Plan | None:
        return self.cost_model.cheaper(left, right)

    # ------------------------------------------------------------------
    def best_plan(self, node: Condition, attributes: frozenset[str]) -> Plan | None:
        """The best feasible plan for ``SP(node, attributes, R)`` or None."""
        key = (node, attributes)
        if key in self._memo:
            return self._memo[key]
        self.stats.recursive_calls += 1
        result = self._best_plan_uncached(node, attributes)
        self._memo[key] = result
        return result

    def _best_plan_uncached(
        self, node: Condition, attributes: frozenset[str]
    ) -> Plan | None:
        # The pure plan (Algorithm 6.1, first check).
        pure: Plan | None = None
        if self.checker.check(node).supports(attributes):
            pure = SourceQuery(node, attributes, self.source_name)
            if self.pr1:
                self.stats.pr1_fires += 1
                return pure  # PR1: nothing can beat the pure plan.

        # The download option.
        fetch = attributes | node.attributes()
        plan_impure: Plan | None = None
        if self.checker.check(TRUE).supports(fetch):
            plan_impure = download_plan(node, attributes, self.source_name)

        if node.is_leaf or node.is_true:
            return self._cheaper(pure, plan_impure)
        if len(node.children) > self.max_fanout:
            raise ReproError(
                f"connector fanout {len(node.children)} exceeds the supported "
                f"maximum of {self.max_fanout} (child-subset enumeration is "
                "exponential); split the query"
            )
        if node.is_or:
            impure = self._or_impure(node, attributes, plan_impure)
        else:
            impure = self._and_impure(node, attributes, plan_impure)
        return self._cheaper(pure, impure)

    # ------------------------------------------------------------------
    # Sub-plan bookkeeping shared by the OR and AND procedures.
    # ------------------------------------------------------------------
    def _record(
        self,
        table: dict[frozenset[int], list[Plan]],
        subset: frozenset[int],
        plan: Plan,
    ) -> None:
        """Record a sub-plan for ``subset``; PR2 keeps only the cheapest."""
        self.stats.subplans_considered += 1
        bucket = table.setdefault(subset, [])
        if self.pr2:
            if not bucket:
                bucket.append(plan)
            elif self._cost(plan) < self._cost(bucket[0]):
                self.stats.pr2_fires += 1
                bucket[0] = plan
            else:
                self.stats.pr2_fires += 1
        else:
            if plan not in bucket:
                bucket.append(plan)

    def _combine(
        self,
        table: dict[frozenset[int], list[Plan]],
        n_children: int,
        plan_impure: Plan | None,
        combiner,
    ) -> Plan | None:
        """Step 2 of Figures 5/6: the MCSC combination of sub-plans."""
        candidates = [
            CoverCandidate(subset, self._cost(plan), plan)
            for subset, plans in table.items()
            for plan in plans
        ]
        if self.pr3:
            survivors = prune_dominated(candidates)
            self.stats.pr3_fires += len(candidates) - len(survivors)
            candidates = survivors
        self.stats.mcsc_sets += len(candidates)
        self.stats.mcsc_problems += 1
        solution: CoverSolution | None = self._solver(n_children, candidates)
        best = plan_impure
        if solution is not None and solution.chosen:
            if len(solution.chosen) == 1:
                plan = solution.chosen[0].payload
            else:
                plan = combiner([c.payload for c in solution.chosen])
            best = self._cheaper(best, plan)
        return best

    # ------------------------------------------------------------------
    # Figure 5: processing an OR node.
    # ------------------------------------------------------------------
    def _or_impure(
        self, node: Condition, attributes: frozenset[str], plan_impure: Plan | None
    ) -> Plan | None:
        children = node.children
        k = len(children)
        table: dict[frozenset[int], list[Plan]] = {}

        # Lines 3-5: pure sub-plans for every nonempty child subset.
        for size in range(1, k + 1):
            for indices in combinations(range(k), size):
                subset = frozenset(indices)
                cond = disjunction([children[i] for i in indices])
                if self.checker.check(cond).supports(attributes):
                    self._record(
                        table,
                        subset,
                        SourceQuery(cond, attributes, self.source_name),
                    )

        # Lines 6-7: impure sub-plans, for single children only.  PR1
        # skips children that already have a pure sub-plan.
        for i in range(k):
            singleton = frozenset([i])
            if self.pr1 and singleton in table:
                self.stats.pr1_fires += 1
                continue
            sub = self.best_plan(children[i], attributes)
            if sub is not None:
                self._record(table, singleton, sub)

        # Lines 8-14: choose the minimum-cost cover; combine with union.
        return self._combine(table, k, plan_impure, UnionPlan)

    # ------------------------------------------------------------------
    # Figure 6: processing an AND node.
    # ------------------------------------------------------------------
    def _and_impure(
        self, node: Condition, attributes: frozenset[str], plan_impure: Plan | None
    ) -> Plan | None:
        children = node.children
        k = len(children)
        table: dict[frozenset[int], list[Plan]] = {}
        pure_subsets: set[frozenset[int]] = set()

        # Lines 3-9: source-supported conjunctions of child subsets, each
        # optionally extended with mediator-evaluated children whose
        # attributes the source query can export (MaxEval).
        for size in range(1, k + 1):
            for indices in combinations(range(k), size):
                subset = frozenset(indices)
                cond = conjunction([children[i] for i in indices])
                result = self.checker.check(cond)
                if not result:
                    continue
                if result.supports(attributes):
                    pure_subsets.add(subset)
                    self._record(
                        table,
                        subset,
                        SourceQuery(cond, attributes, self.source_name),
                    )
                # MaxEval: children evaluable at the mediator from what
                # this source query can export.
                rest = [j for j in range(k) if j not in subset]
                for exported in result.attribute_sets:
                    addable = [
                        j for j in rest if children[j].attributes() <= exported
                    ]
                    if not addable or not attributes <= exported:
                        continue
                    for m_size in range(1, len(addable) + 1):
                        for m_indices in combinations(addable, m_size):
                            local_cond = conjunction(
                                [children[j] for j in m_indices]
                            )
                            needed = attributes | local_cond.attributes()
                            if not needed <= exported:
                                continue
                            inner = SourceQuery(cond, needed, self.source_name)
                            plan = Postprocess(local_cond, attributes, inner)
                            self._record(table, subset | frozenset(m_indices), plan)

        # Lines 10-13: recursive sub-plans.  Evaluate one child via a
        # recursive IPG call that also exports the attributes of sibling
        # children, which are then filtered at the mediator.
        for i in range(k):
            for size in range(0, k):
                for rest_indices in combinations(
                    [j for j in range(k) if j != i], size
                ):
                    n_prime = frozenset(rest_indices) | {i}
                    if self._dominated_by_pure(n_prime, pure_subsets):
                        continue  # Figure 6 line 12 (PR1 / PR3)
                    local_cond = conjunction([children[j] for j in rest_indices])
                    needed = attributes | (
                        frozenset()
                        if local_cond.is_true
                        else local_cond.attributes()
                    )
                    sub = self.best_plan(children[i], needed)
                    if sub is None:
                        continue
                    if local_cond.is_true:
                        plan = sub
                    else:
                        plan = Postprocess(local_cond, attributes, sub)
                    self._record(table, n_prime, plan)

        # Lines 14-20: choose the minimum-cost cover; combine with
        # intersection.
        return self._combine(table, k, plan_impure, IntersectPlan)

    def _dominated_by_pure(
        self, subset: frozenset[int], pure_subsets: set[frozenset[int]]
    ) -> bool:
        """Figure 6, line 12: skip the recursive call when a pure sub-plan
        covers a superset (PR3) or exactly this subset (PR1)."""
        for pure in pure_subsets:
            if subset == pure:
                if self.pr1:
                    self.stats.pr1_fires += 1
                    return True
            elif subset < pure:
                if self.pr3:
                    self.stats.pr3_fires += 1
                    return True
        return False
