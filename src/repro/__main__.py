"""Command-line interface: query the standard catalog of simulated sources.

Usage::

    python -m repro sources                 # list sources + capabilities
    python -m repro plan  "SELECT ... FROM ... WHERE ..."
    python -m repro ask   "SELECT ... FROM ... WHERE ..."
    python -m repro plan --planner cnf "SELECT ..."   # try a baseline

``plan`` shows every strategy's plan and estimated cost side by side
when ``--planner all`` (the default for ``plan``); ``ask`` executes the
best plan and prints the rows.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.mediator import Mediator
from repro.planners.base import Planner
from repro.planners.baselines import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    NaivePlanner,
)
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.plans.printer import explain
from repro.source.library import standard_catalog
from repro.ssdl.text import format_ssdl

_PLANNERS: dict[str, type | None] = {
    "gencompact": GenCompact,
    "genmodular": GenModular,
    "cnf": CNFPlanner,
    "dnf": DNFPlanner,
    "disco": DiscoPlanner,
    "naive": NaivePlanner,
}


def _make_planner(name: str) -> Planner:
    try:
        return _PLANNERS[name]()
    except KeyError:
        raise ReproError(
            f"unknown planner {name!r}; pick one of {', '.join(_PLANNERS)} or 'all'"
        ) from None


def _build_mediator() -> Mediator:
    mediator = Mediator()
    for source in standard_catalog().values():
        mediator.add_source(source)
    return mediator


def cmd_sources(args) -> int:
    mediator = _build_mediator()
    for name, source in sorted(mediator.catalog.items()):
        print(f"{name}  ({len(source.relation)} rows)")
        print(f"  attributes: {', '.join(source.schema.attribute_names)}")
        if args.verbose:
            for line in format_ssdl(source.description).splitlines():
                print(f"  | {line}")
        else:
            nts = ", ".join(source.description.condition_nonterminals)
            print(f"  forms: {nts}")
        print()
    return 0


def cmd_plan(args) -> int:
    mediator = _build_mediator()
    names = list(_PLANNERS) if args.planner == "all" else [args.planner]
    for name in names:
        result = mediator.plan(args.query, _make_planner(name))
        print(f"--- {result.planner} ---")
        if result.feasible:
            print(f"estimated cost: {result.cost:.1f}")
            print(explain(result.plan, mediator.cost_model()))
        else:
            print("infeasible under this strategy")
        print()
    return 0


def cmd_ask(args) -> int:
    mediator = _build_mediator()
    planner = _make_planner(args.planner) if args.planner != "all" else None
    answer = mediator.ask(args.query, planner)
    print(answer.planning.describe())
    print(
        f"{answer.report.queries} source queries, "
        f"{answer.report.tuples_transferred} tuples transferred, "
        f"{len(answer.rows)} answer rows"
    )
    for row in answer.rows[: args.limit]:
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(row.items())))
    if len(answer.rows) > args.limit:
        print(f"  ... {len(answer.rows) - args.limit} more")
    return 0


def cmd_shell(args) -> int:
    """Interactive loop: type SELECT queries, get plans + answers."""
    mediator = _build_mediator()
    planner = _make_planner(args.planner) if args.planner != "all" else None
    print("capability-sensitive query shell -- type a SELECT query, "
          "'sources' to list sources, or 'quit'.")
    while True:
        try:
            line = input("repro> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        lowered = line.lower()
        if lowered in ("quit", "exit", "\\q"):
            return 0
        if lowered == "sources":
            for name, source in sorted(mediator.catalog.items()):
                print(f"  {name} ({len(source.relation)} rows): "
                      f"{', '.join(source.schema.attribute_names)}")
            continue
        try:
            answer = mediator.ask(line, planner)
        except ReproError as exc:
            print(f"error: {exc}")
            continue
        print(answer.planning.describe())
        print(
            f"{answer.report.queries} source queries, "
            f"{answer.report.tuples_transferred} tuples, "
            f"{len(answer.rows)} rows"
        )
        for row in answer.rows[: args.limit]:
            print("  " + ", ".join(f"{k}={v}" for k, v in sorted(row.items())))
        if len(answer.rows) > args.limit:
            print(f"  ... {len(answer.rows) - args.limit} more")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Capability-sensitive query processing (ICDE 1999 repro).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sources = sub.add_parser("sources", help="list the simulated sources")
    p_sources.add_argument("-v", "--verbose", action="store_true",
                           help="print full SSDL descriptions")
    p_sources.set_defaults(func=cmd_sources)

    p_plan = sub.add_parser("plan", help="plan a query (without executing)")
    p_plan.add_argument("query")
    p_plan.add_argument("--planner", default="all",
                        help="gencompact|genmodular|cnf|dnf|disco|naive|all")
    p_plan.set_defaults(func=cmd_plan)

    p_ask = sub.add_parser("ask", help="plan and execute a query")
    p_ask.add_argument("query")
    p_ask.add_argument("--planner", default="gencompact")
    p_ask.add_argument("--limit", type=int, default=10,
                       help="max rows to print (default 10)")
    p_ask.set_defaults(func=cmd_ask)

    p_shell = sub.add_parser("shell", help="interactive query loop")
    p_shell.add_argument("--planner", default="gencompact")
    p_shell.add_argument("--limit", type=int, default=10)
    p_shell.set_defaults(func=cmd_shell)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
