"""Offline compilation of SSDL grammars into token-trie recognizers.

The paper builds the parser for a source *at integration time* so that
``Check(C, R)`` is cheap at planning time.  The Earley recognizer
(:mod:`repro.ssdl.earley`) already amortizes the parser build, but every
Check still runs a chart parse -- and X11 showed that planning (which is
almost entirely Check calls) dominates a cold ask by ~100x.  Following
the knowledge-compilation playbook ("A Knowledge Compilation Map"): pay
*more* at registration time to make the online operation near-free.

The compiled form is a **token trie / DFA over grammar terminals**:

1. The grammar's language is *enumerated* up to a bounded token horizon
   -- for every nonterminal, the exact set of terminal-symbol sequences
   of length <= ``max_tokens`` it derives, computed as a monotone
   fixpoint over the productions.  SSDL grammars are overwhelmingly
   finite (form rules are fixed conjunctions; commutation closure only
   multiplies alternatives), and the recursive ones (``size_list``-style
   lists) grow strictly with each recursion, so the bounded enumeration
   is exact for every condition that fits the horizon.
2. The sequences of *all* condition nonterminals are merged into one
   acyclic automaton whose construction memoizes shared suffixes (a
   DAWG): accepting states carry the set of condition nonterminals that
   accept there, so one walk answers "which nonterminals match" -- the
   whole Check result -- at once.
3. Matching a condition is then a walk over its token stream.  Edges
   are bucketed per state: keyword edges are an exact dict lookup,
   template edges are keyed by ``(attribute, op)`` with only the
   constant class left to test.  Overlapping templates (a ``$str``
   class *and* a ``'sedan'`` literal) make the walk a small state-set
   simulation rather than a strict DFA step; in practice the frontier
   stays at a handful of states.

Compilation is **budgeted**: a grammar whose enumeration exceeds
``max_sequences`` (deeply ambiguous closures, adversarial recursion)
is not compiled, and a condition longer than the horizon cannot be
answered -- both cases fall back to the Earley recognizer, and
:class:`~repro.ssdl.description.SourceDescription` records the
``ssdl.check.fallback`` metric so the tradeoff is observable.

Everything here is immutable after :func:`compile_productions` returns,
so a compiled checker is safe to share across threads with no locking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.ssdl.symbols import (
    AtomToken,
    ConstClass,
    Keyword,
    KeywordSym,
    NT,
    Symbol,
    Template,
    Token,
)

#: Longest token stream the compiled form answers exactly.  32 tokens
#: covers the E3 mix's 8-atom trees *including* the outer-paren wrapped
#: form (+2 tokens); longer conditions fall back to Earley.
DEFAULT_MAX_TOKENS = 32

#: Budget on enumerated terminal sequences across the whole grammar.
#: Exceeding it abandons compilation (the grammar stays Earley-only).
DEFAULT_MAX_SEQUENCES = 20_000


@dataclass(frozen=True)
class CompilationReport:
    """What compiling one description produced (or why it did not)."""

    compiled: bool
    reason: str = ""
    #: Distinct terminal sequences enumerated across all nonterminals.
    sequences: int = 0
    #: States in the suffix-shared automaton.
    states: int = 0
    #: Token horizon the compiled form answers exactly.
    horizon: int = 0

    def __str__(self) -> str:  # pragma: no cover - debug aid
        if not self.compiled:
            return f"not compiled ({self.reason})"
        return (
            f"compiled: {self.sequences} sequences, {self.states} states, "
            f"horizon {self.horizon}"
        )


class _BudgetExceeded(Exception):
    """Internal: the enumeration outgrew ``max_sequences``."""


class _Node:
    """One automaton state: bucketed out-edges plus accepting labels."""

    __slots__ = ("keyword_edges", "atom_edges", "accepts")

    def __init__(
        self,
        keyword_edges: dict[Keyword, "_Node"],
        atom_edges: dict[tuple[str, object], tuple[tuple[object, "_Node"], ...]],
        accepts: frozenset[str],
    ):
        self.keyword_edges = keyword_edges
        self.atom_edges = atom_edges
        self.accepts = accepts


class CompiledChecker:
    """The compiled recognizer: one walk answers every condition NT.

    :meth:`match` returns the set of condition nonterminals accepting
    the token stream, or ``None`` when the stream is longer than the
    compiled horizon (the caller must fall back to Earley).
    """

    __slots__ = ("_root", "report")

    def __init__(self, root: _Node, report: CompilationReport):
        self._root = root
        self.report = report

    @property
    def horizon(self) -> int:
        return self.report.horizon

    def match(self, tokens: Sequence[Token]) -> frozenset[str] | None:
        """Condition nonterminals accepting ``tokens`` (None = too long)."""
        if len(tokens) > self.report.horizon:
            return None
        states: list[_Node] = [self._root]
        for token in tokens:
            next_states: list[_Node] = []
            if isinstance(token, Keyword):
                for state in states:
                    child = state.keyword_edges.get(token)
                    if child is not None:
                        next_states.append(child)
            else:
                atom = token.atom
                bucket = (atom.attribute, atom.op)
                value = atom.value
                for state in states:
                    for constant, child in state.atom_edges.get(bucket, ()):
                        if (
                            constant.admits(value)
                            if isinstance(constant, ConstClass)
                            else constant == value
                        ):
                            next_states.append(child)
            if not next_states:
                return frozenset()
            if len(next_states) > 1:
                # Suffix sharing can converge distinct frontier states
                # onto one node; dedupe to keep the frontier minimal.
                seen: set[int] = set()
                states = [
                    s for s in next_states
                    if id(s) not in seen and not seen.add(id(s))  # type: ignore[func-returns-value]
                ]
            else:
                states = next_states
        accepted: frozenset[str] = frozenset()
        for state in states:
            accepted |= state.accepts
        return accepted


# ----------------------------------------------------------------------
# Enumeration: the bounded language of every nonterminal
# ----------------------------------------------------------------------

def _enumerate_languages(
    productions: Mapping[str, Sequence[Sequence[Symbol]]],
    max_tokens: int,
    max_sequences: int,
) -> dict[str, set[tuple[Symbol, ...]]]:
    """For each nonterminal, all terminal sequences of length <= horizon.

    A monotone fixpoint: each pass re-expands every alternative against
    the languages known so far; convergence is guaranteed because the
    sets only grow and are bounded by the (finite) sequences over the
    grammar's terminal alphabet up to ``max_tokens``.  The result is
    *exact* for the bounded language: a sequence of length <= horizon is
    derivable iff it appears (concatenation never shrinks, so pruning
    overlong partials loses only overlong sentences).
    """
    languages: dict[str, set[tuple[Symbol, ...]]] = {
        head: set() for head in productions
    }
    total = 0
    changed = True
    while changed:
        changed = False
        for head, alternatives in productions.items():
            known = languages[head]
            for alternative in alternatives:
                for sequence in _expand(
                    alternative, languages, max_tokens, max_sequences
                ):
                    if sequence not in known:
                        known.add(sequence)
                        total += 1
                        if total > max_sequences:
                            raise _BudgetExceeded(
                                f"more than {max_sequences} sequences"
                            )
                        changed = True
    return languages


def _expand(
    alternative: Sequence[Symbol],
    languages: dict[str, set[tuple[Symbol, ...]]],
    max_tokens: int,
    max_sequences: int,
) -> list[tuple[Symbol, ...]]:
    """All bounded terminal sequences of one alternative, given the
    currently known sub-languages."""
    partials: list[tuple[Symbol, ...]] = [()]
    for symbol in alternative:
        if isinstance(symbol, NT):
            expansions = languages[symbol.name]
            if not expansions:
                return []
            grown: list[tuple[Symbol, ...]] = []
            for partial in partials:
                room = max_tokens - len(partial)
                for suffix in expansions:
                    if len(suffix) <= room:
                        grown.append(partial + suffix)
                if len(grown) > max_sequences:
                    raise _BudgetExceeded(
                        f"more than {max_sequences} partial expansions"
                    )
            partials = grown
        else:
            terminal = symbol.keyword if isinstance(symbol, KeywordSym) else symbol
            partials = [
                partial + (terminal,)
                for partial in partials
                if len(partial) < max_tokens
            ]
        if not partials:
            return []
    return partials


# ----------------------------------------------------------------------
# Automaton construction with shared-suffix memoization
# ----------------------------------------------------------------------

def _build_automaton(
    tagged: dict[tuple[Symbol, ...], frozenset[str]],
) -> tuple[_Node, int]:
    """Merge tagged sequences into a suffix-shared acyclic automaton."""
    memo: dict[frozenset, _Node] = {}
    counter = [0]

    def build(items: frozenset) -> _Node:
        cached = memo.get(items)
        if cached is not None:
            return cached
        accepts: frozenset[str] = frozenset()
        buckets: dict[object, list[tuple[tuple[Symbol, ...], frozenset[str]]]] = {}
        for sequence, tags in items:
            if not sequence:
                accepts |= tags
                continue
            buckets.setdefault(sequence[0], []).append((sequence[1:], tags))
        keyword_edges: dict[Keyword, _Node] = {}
        atom_buckets: dict[tuple[str, object], list[tuple[object, _Node]]] = {}
        for first, rest in buckets.items():
            child = build(frozenset(rest))
            if isinstance(first, Keyword):
                keyword_edges[first] = child
            else:
                assert isinstance(first, Template)
                atom_buckets.setdefault((first.attribute, first.op), []).append(
                    (first.constant, child)
                )
        node = _Node(
            keyword_edges,
            {key: tuple(edges) for key, edges in atom_buckets.items()},
            accepts,
        )
        memo[items] = node
        counter[0] += 1
        return node

    root = build(frozenset(tagged.items()))
    return root, counter[0]


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def compile_productions(
    productions: Mapping[str, Sequence[Sequence[Symbol]]],
    condition_nonterminals: Sequence[str],
    max_tokens: int = DEFAULT_MAX_TOKENS,
    max_sequences: int = DEFAULT_MAX_SEQUENCES,
) -> tuple[CompiledChecker | None, CompilationReport]:
    """Compile a grammar into a :class:`CompiledChecker`.

    Returns ``(checker, report)``; ``checker`` is ``None`` when the
    enumeration exceeded ``max_sequences`` (the report says why), in
    which case callers keep using the Earley recognizer.
    """
    try:
        languages = _enumerate_languages(productions, max_tokens, max_sequences)
    except _BudgetExceeded as exc:
        return None, CompilationReport(compiled=False, reason=str(exc))
    tagged: dict[tuple[Symbol, ...], frozenset[str]] = {}
    total = 0
    for nonterminal in condition_nonterminals:
        for sequence in languages[nonterminal]:
            existing = tagged.get(sequence, frozenset())
            tagged[sequence] = existing | {nonterminal}
        total += len(languages[nonterminal])
    root, states = _build_automaton(tagged)
    report = CompilationReport(
        compiled=True,
        sequences=total,
        states=states,
        horizon=max_tokens,
    )
    return CompiledChecker(root, report), report
