"""Binding patterns compiled to SSDL.

Systems contemporary to the paper -- the Information Manifold, and later
work on "binding patterns" -- describe source capabilities as adornment
strings over the schema: each attribute is **b**ound (an equality must
be supplied), **f**ree (output only), or **o**ptionally bound.  Section 2
notes those systems handle only conjunctive queries; SSDL strictly
subsumes the formalism, and this module performs the embedding:
each binding pattern becomes a family of conjunctive SSDL rules.

Example: the classic flight source ``flight(origin^b, dest^b, price^f)``
is ``adornment="bbf"`` -- both endpoints must be bound, price is output.

The compiled grammar accepts, for a pattern, exactly the conjunctions of
equalities on its bound attributes (mandatory) and optionally-bound
attributes (any subset), in declaration order; GenCompact's commutation
closure then makes order irrelevant, as for every description.
"""

from __future__ import annotations

from itertools import combinations

from repro.data.schema import AttrType, Schema
from repro.errors import SSDLError
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.description import SourceDescription

#: Adornment letters.
BOUND = "b"
FREE = "f"
OPTIONAL = "o"


def _const_class(schema: Schema, attribute: str) -> str:
    kind = schema.attribute(attribute).type
    if kind is AttrType.STRING:
        return "$str"
    if kind is AttrType.BOOL:
        return "$bool"
    return "$num"


def compile_binding_patterns(
    schema: Schema,
    adornments: list[str],
    name: str = "",
) -> SourceDescription:
    """Compile adornment strings over ``schema`` into an SSDL description.

    Each adornment has one letter per schema attribute (in schema
    order): ``b`` bound, ``f`` free, ``o`` optionally bound.  Every
    pattern exports the full attribute set (the usual convention for
    capability records; use raw SSDL for export gating).
    """
    if not adornments:
        raise SSDLError("at least one adornment string is required")
    attributes = schema.attribute_names
    builder = DescriptionBuilder(name or f"{schema.name}-bindings")
    exports = list(attributes)
    rule_index = 0
    for adornment in adornments:
        if len(adornment) != len(attributes):
            raise SSDLError(
                f"adornment {adornment!r} has {len(adornment)} letters but the "
                f"schema has {len(attributes)} attributes"
            )
        bad = set(adornment) - {BOUND, FREE, OPTIONAL}
        if bad:
            raise SSDLError(
                f"adornment {adornment!r} uses unknown letters {sorted(bad)}"
            )
        bound = [a for a, c in zip(attributes, adornment) if c == BOUND]
        optional = [a for a, c in zip(attributes, adornment) if c == OPTIONAL]
        if not bound and not optional:
            # A fully free pattern is a download capability.
            builder.rule(f"bp{rule_index}", "true", attributes=exports)
            rule_index += 1
            continue
        for extra_size in range(len(optional) + 1):
            for extra in combinations(optional, extra_size):
                chosen = set(bound) | set(extra)
                # Emit in schema (declaration) order, as documented.
                parts = [
                    f"{a} = {_const_class(schema, a)}"
                    for a in attributes
                    if a in chosen
                ]
                if not parts:
                    continue
                builder.rule(
                    f"bp{rule_index}", " and ".join(parts), attributes=exports
                )
                rule_index += 1
    return builder.build()
