"""Capability discovery: infer an SSDL description by probing a source.

The paper assumes someone wrote the SSDL description when the source
joined the system.  In practice somebody has to *find out* what a form
accepts.  This module automates the tedious part for black-box sources:
it sends probe queries and synthesizes a description from what was
accepted.

Probing strategy (every probe is a real query; the report meters them):

1. **Atomic templates** -- for each attribute, candidate operators by
   type (``=`` for strings; ``=``/``<=``/``>=`` for numbers), each
   instantiated with caller-supplied sample values.  A template is
   accepted only if probes with **two different sample values** succeed,
   so a literal-only form (accepts ``style = 'sedan'`` but nothing else)
   is not over-generalized to ``style = $str``.
2. **Exports** -- for each accepted condition, first try the full
   attribute set; on rejection, probe attribute by attribute and record
   the union of accepted singletons (an under-approximation of the
   paper's export family, and sound: every recorded export was
   individually accepted).
3. **Ordered pairs** -- conjunctions of accepted templates, in both
   orders, so order-sensitive forms are discovered as such.
4. **Download** -- a ``true`` probe.

Guarantees: the inferred description is *sound modulo class
generalization* -- every rule shape was accepted by the live source for
two distinct constants of the class.  It is deliberately incomplete
(width <= ``max_width``, no disjunction lists): it describes what was
verified, nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import TRUE, And, Condition, Leaf
from repro.data.schema import AttrType, Schema
from repro.errors import SSDLError, UnsupportedQueryError
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.description import SourceDescription

#: Operators probed per attribute type.
_OPS_BY_TYPE = {
    AttrType.STRING: (Op.EQ,),
    AttrType.INT: (Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE),
    AttrType.FLOAT: (Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE),
    AttrType.BOOL: (Op.EQ,),
}

_OP_TEXT = {Op.EQ: "=", Op.LT: "<", Op.LE: "<=", Op.GT: ">", Op.GE: ">="}
_CLASS_BY_TYPE = {
    AttrType.STRING: "$str",
    AttrType.INT: "$num",
    AttrType.FLOAT: "$num",
    AttrType.BOOL: "$bool",
}


@dataclass
class DiscoveryReport:
    """The inferred description plus what the probing cost."""

    description: SourceDescription
    probes_sent: int
    probes_accepted: int
    tuples_transferred: int
    #: (attribute, op) templates verified with two distinct values.
    templates: list[tuple[str, Op]] = field(default_factory=list)
    #: Ordered template index pairs accepted as conjunctions.
    accepted_pairs: list[tuple[int, int]] = field(default_factory=list)
    download_allowed: bool = False


class _Prober:
    """Wraps the black-box source; counts probes."""

    def __init__(self, source):
        self.source = source
        self.sent = 0
        self.accepted = 0
        self.tuples = 0

    def try_probe(self, condition: Condition, attributes) -> bool:
        self.sent += 1
        try:
            result = self.source.execute(condition, frozenset(attributes))
        except UnsupportedQueryError:
            return False
        self.accepted += 1
        self.tuples += len(result)
        return True


def discover_description(
    source,
    schema: Schema,
    samples: dict[str, tuple],
    max_width: int = 2,
    probe_projection: str | None = None,
    name: str = "",
) -> DiscoveryReport:
    """Infer a description for a black-box ``source``.

    ``source`` needs only an ``execute(condition, attributes)`` method
    that raises :class:`UnsupportedQueryError` on unsupported queries
    (a :class:`~repro.source.source.CapabilitySource` qualifies, but so
    would a real wrapper).  ``samples`` maps each probeable attribute to
    **two or more distinct sample values** (use selective values -- every
    accepted probe transfers its result).  ``probe_projection`` names
    the attribute projected during condition probes (defaults to the
    probed attribute itself).
    """
    for attribute, values in samples.items():
        if attribute not in schema:
            raise SSDLError(f"sample for unknown attribute {attribute!r}")
        if len(set(values)) < 2:
            raise SSDLError(
                f"need two distinct sample values for {attribute!r} to "
                "avoid over-generalizing literal templates"
            )
    if max_width < 1:
        raise SSDLError("max_width must be at least 1")

    prober = _Prober(source)
    all_attrs = list(schema.attribute_names)

    # Candidate templates: every (attribute, op) the samples allow, each
    # carrying two witness atoms (one per sample value).
    candidates: list[tuple[str, Op, Atom, Atom]] = []
    for attribute, values in samples.items():
        ops = _OPS_BY_TYPE.get(schema.attribute(attribute).type, (Op.EQ,))
        for op in ops:
            candidates.append(
                (attribute, op,
                 Atom(attribute, op, values[0]),
                 Atom(attribute, op, values[1]))
            )

    def probe_shape(conditions: list[Condition], preferred: list[str]) -> bool:
        """Accept a shape iff every witness instantiation is accepted
        under *some* probe projection (export restrictions must not mask
        condition support)."""
        for condition in conditions:
            accepted = False
            for projection in list(dict.fromkeys(preferred)) + [all_attrs[0]]:
                if prober.try_probe(condition, [projection]):
                    accepted = True
                    break
            if not accepted:
                return False
        return True

    # -- step 1: atomic templates, verified with two values -------------
    templates: list[tuple[str, Op]] = []
    witness: dict[tuple[str, Op], Atom] = {}
    accepted_singles: set[int] = set()
    for index, (attribute, op, first, second) in enumerate(candidates):
        preferred = [probe_projection or attribute]
        if probe_shape([Leaf(first), Leaf(second)], preferred):
            accepted_singles.add(index)

    # -- step 2: exports per accepted shape ------------------------------
    def discover_exports(condition: Condition) -> list[str]:
        if prober.try_probe(condition, all_attrs):
            return list(all_attrs)
        exported = []
        for attribute in all_attrs:
            if prober.try_probe(condition, [attribute]):
                exported.append(attribute)
        return exported

    def register_template(index: int) -> int:
        attribute, op, first, __ = candidates[index]
        key = (attribute, op)
        if key not in witness:
            witness[key] = first
            templates.append(key)
        return templates.index(key)

    accepted_rules: list[tuple[tuple[int, ...], list[str]]] = []
    for index in sorted(accepted_singles):
        __, __, first, __ = candidates[index]
        exports = discover_exports(Leaf(first))
        if exports:
            accepted_rules.append(((register_template(index),), exports))

    # -- step 3: ordered pairs over ALL candidates (forms often accept
    # only combinations -- Example 4.1 has no single-field rule at all).
    accepted_pairs: list[tuple[int, int]] = []
    if max_width >= 2:
        for i, j in permutations(range(len(candidates)), 2):
            attr_i, op_i, first_i, second_i = candidates[i]
            attr_j, op_j, first_j, second_j = candidates[j]
            if attr_i == attr_j:
                continue
            shapes = [
                And([Leaf(first_i), Leaf(first_j)]),
                And([Leaf(second_i), Leaf(second_j)]),
            ]
            preferred = [probe_projection or attr_i, attr_j]
            if probe_shape(shapes, preferred):
                exports = discover_exports(shapes[0])
                if exports:
                    ti = register_template(i)
                    tj = register_template(j)
                    accepted_rules.append(((ti, tj), exports))
                    accepted_pairs.append((ti, tj))

    # -- step 4: download -------------------------------------------------
    download_allowed = prober.try_probe(TRUE, all_attrs)

    # -- assemble ----------------------------------------------------------
    builder = DescriptionBuilder(name or f"{schema.name}-discovered")
    if not accepted_rules and not download_allowed:
        raise SSDLError(
            "discovery found no supported queries; supply better samples "
            "or probe more operators"
        )
    for rule_index, (template_indices, exports) in enumerate(accepted_rules):
        parts = []
        for t_index in template_indices:
            attribute, op = templates[t_index]
            const = _CLASS_BY_TYPE[schema.attribute(attribute).type]
            parts.append(f"{attribute} {_OP_TEXT[op]} {const}")
        builder.rule(f"d{rule_index}", " and ".join(parts), attributes=exports)
    if download_allowed:
        builder.rule("d_download", "true", attributes=all_attrs)
    description = builder.build()
    return DiscoveryReport(
        description=description,
        probes_sent=prober.sent,
        probes_accepted=prober.accepted,
        tuples_transferred=prober.tuples,
        templates=templates,
        accepted_pairs=accepted_pairs,
        download_allowed=download_allowed,
    )
