"""Factories for the common query-capability restriction patterns.

Section 4 catalogues the limitations SSDL must express:

* *Condition-Attribute Restrictions* -- disallowing conditions on some
  attributes; requiring that a particular field be filled in.
* *Condition-Expression-Size Restrictions* -- limiting the number of
  conditions in the expression.
* *Condition-Expression-Structure Restrictions* -- atomic-only,
  conjunctive-only, or form-shaped expressions.
* Attribute-export gating (the bank/PIN example).

Hand-writing a grammar for each pattern is mechanical; these factories
generate the SSDL rules.  They compose: each returns a
:class:`DescriptionBuilder` (or extends one passed in), and the caller
finishes with ``.build()``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.errors import SSDLError
from repro.ssdl.builder import DescriptionBuilder

#: Map attribute -> template fragment, e.g. {"make": "make = $str"}.
TemplateMap = dict[str, str]


def _template(templates: TemplateMap, attribute: str) -> str:
    try:
        return templates[attribute]
    except KeyError:
        raise SSDLError(
            f"no condition template declared for attribute {attribute!r}"
        ) from None


def atomic_only(
    templates: TemplateMap,
    exports: Sequence[str],
    name: str = "",
) -> DescriptionBuilder:
    """A source that accepts exactly one atomic condition per query.

    (The "allowing only atomic condition expressions" structure
    restriction.)
    """
    builder = DescriptionBuilder(name or "atomic-only")
    for index, attribute in enumerate(templates):
        builder.rule(
            f"atom{index}", _template(templates, attribute),
            attributes=list(exports),
        )
    return builder


def conjunctive_only(
    templates: TemplateMap,
    exports: Sequence[str],
    max_conditions: int | None = None,
    required: Iterable[str] = (),
    name: str = "",
) -> DescriptionBuilder:
    """A source accepting conjunctions of its templates, any order.

    Covers three Section 4 bullets at once:

    * conjunctive-only structure (no ORs);
    * ``max_conditions`` -- the expression-size restriction;
    * ``required`` -- attributes whose condition *must* be present
      ("requiring that a particular field be filled in").

    The rule set enumerates the admissible attribute subsets (in every
    order up to the commutation closure built later), so keep the
    template count modest (<= 8).
    """
    attributes = list(templates)
    if len(attributes) > 8:
        raise SSDLError(
            f"conjunctive_only enumerates attribute subsets; {len(attributes)} "
            "templates is too many (max 8)"
        )
    required_set = frozenset(required)
    unknown = required_set - set(attributes)
    if unknown:
        raise SSDLError(f"required attributes without templates: {sorted(unknown)}")
    limit = max_conditions if max_conditions is not None else len(attributes)
    builder = DescriptionBuilder(name or "conjunctive-only")
    rule_index = 0
    for size in range(1, min(limit, len(attributes)) + 1):
        for subset in combinations(attributes, size):
            if not required_set <= set(subset):
                continue
            rhs = " and ".join(_template(templates, a) for a in subset)
            builder.rule(f"conj{rule_index}", rhs, attributes=list(exports))
            rule_index += 1
    if rule_index == 0:
        raise SSDLError(
            "no admissible conjunction: the required set exceeds max_conditions"
        )
    return builder


def forbidden_attributes(
    templates: TemplateMap,
    exports: Sequence[str],
    forbidden: Iterable[str],
    max_conditions: int | None = None,
    name: str = "",
) -> DescriptionBuilder:
    """Conjunctive source that disallows conditions on some attributes.

    ("Disallowing condition specification on certain attributes" -- the
    forbidden attributes may still be *exported*, just not filtered on.)
    """
    allowed = {a: t for a, t in templates.items() if a not in set(forbidden)}
    if not allowed:
        raise SSDLError("every template attribute is forbidden")
    return conjunctive_only(
        allowed, exports, max_conditions=max_conditions,
        name=name or "forbidden-attrs",
    )


def gated_exports(
    base_templates: TemplateMap,
    base_exports: Sequence[str],
    gate_template: str,
    gated_attributes: Sequence[str],
    name: str = "",
) -> DescriptionBuilder:
    """Attribute exports unlocked by an extra condition (the PIN pattern).

    Every base conjunction exports ``base_exports``; appending the gate
    condition (e.g. ``pin = $num``) unlocks ``gated_attributes`` too.
    """
    builder = conjunctive_only(base_templates, base_exports,
                               name=name or "gated")
    base_attrs = list(base_templates)
    rule_index = 0
    for size in range(1, len(base_attrs) + 1):
        for subset in combinations(base_attrs, size):
            rhs = " and ".join(
                [_template(base_templates, a) for a in subset] + [gate_template]
            )
            builder.rule(
                f"gated{rule_index}",
                rhs,
                attributes=list(base_exports) + list(gated_attributes),
            )
            rule_index += 1
    return builder


def with_download(
    builder: DescriptionBuilder, exports: Sequence[str]
) -> DescriptionBuilder:
    """Allow full download (a ``true`` rule) on an existing builder."""
    return builder.rule("download_all", "true", attributes=list(exports))
