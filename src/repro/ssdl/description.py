"""The SSDL source description: the paper's triplet ⟨S, G, A⟩ (Section 4).

* ``S`` -- the condition nonterminals (the alternatives of the implicit
  start symbol ``s``);
* ``G`` -- the CFG productions describing acceptable condition
  expressions;
* ``A`` -- for each condition nonterminal, the set of attributes the
  source exports when a query parses under it.

:meth:`SourceDescription.check` implements the paper's ``Check(C, R)``
function.  One deliberate generalization (documented in DESIGN.md): a
condition may parse under *several* condition nonterminals, each with a
different export set; :class:`CheckResult` therefore carries the family
of exportable attribute sets, and a source query ``SP(C, A, R)`` is
supported iff some member of the family contains ``A``.  With a single
matching nonterminal this is exactly the paper's definition.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.conditions.tree import TRUE, Condition
from repro.errors import GrammarError
from repro.observability.metrics import get_metrics
from repro.ssdl.compiled import (
    DEFAULT_MAX_SEQUENCES,
    DEFAULT_MAX_TOKENS,
    CompilationReport,
    CompiledChecker,
    compile_productions,
)
from repro.ssdl.earley import EarleyRecognizer
from repro.ssdl.symbols import Keyword, Symbol, Template, tokenize_condition


@dataclass(frozen=True)
class CheckResult:
    """Result of ``Check(C, R)``.

    ``attribute_sets`` is the family of attribute sets exportable for the
    condition (one per matching condition nonterminal, deduplicated);
    ``matched`` names the matching condition nonterminals.  An empty
    family means the condition is not supported at all.
    """

    attribute_sets: frozenset[frozenset[str]]
    matched: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.attribute_sets)

    def supports(self, attributes: Iterable[str]) -> bool:
        """Is ``SP(C, attributes, R)`` a supported source query?"""
        wanted = frozenset(attributes)
        return any(wanted <= exported for exported in self.attribute_sets)

    @property
    def exported(self) -> frozenset[str]:
        """The union of exportable attributes (the paper's single set when
        only one nonterminal matches; an over-approximation otherwise)."""
        out: frozenset[str] = frozenset()
        for attrs in self.attribute_sets:
            out |= attrs
        return out

    def best_set_for(self, attributes: Iterable[str]) -> frozenset[str] | None:
        """A smallest exportable set containing ``attributes``, or None."""
        wanted = frozenset(attributes)
        candidates = [s for s in self.attribute_sets if wanted <= s]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (len(s), sorted(s)))


#: The empty Check result (condition not supported).
EMPTY_CHECK = CheckResult(frozenset())


class SourceDescription:
    """An SSDL description ⟨S, G, A⟩ with a prebuilt recognizer and cache.

    Parameters
    ----------
    condition_nonterminals:
        The paper's S -- names of the start alternatives, in order.
    productions:
        The paper's G -- every nonterminal's alternatives (must include
        each condition nonterminal; helper nonterminals are allowed and
        carry no attribute sets, per Section 4).
    attributes:
        The paper's A -- exported attribute set per condition nonterminal.
    name:
        Optional label used in error messages.
    """

    def __init__(
        self,
        condition_nonterminals: Sequence[str],
        productions: Mapping[str, Sequence[Sequence[Symbol]]],
        attributes: Mapping[str, Iterable[str]],
        name: str = "",
        cache_checks: bool = True,
        check_cache_entries: int = 8192,
    ):
        """``cache_checks=False`` reparses on every Check call -- only
        useful for the cache-ablation benchmark.  ``check_cache_entries``
        bounds the Check cache (LRU): a description fielding an unbounded
        stream of distinct conditions holds a bounded number of results."""
        if check_cache_entries <= 0:
            raise GrammarError("check_cache_entries must be positive")
        self.name = name
        self.condition_nonterminals = tuple(condition_nonterminals)
        self.productions: dict[str, tuple[tuple[Symbol, ...], ...]] = {
            head: tuple(tuple(alt) for alt in alts)
            for head, alts in productions.items()
        }
        self.attributes: dict[str, frozenset[str]] = {
            nt: frozenset(attrs) for nt, attrs in attributes.items()
        }
        self._validate()
        self._recognizer = EarleyRecognizer(self.productions)
        self.cache_checks = cache_checks
        self.check_cache_entries = check_cache_entries
        self._cache: OrderedDict[Condition, CheckResult] = OrderedDict()
        #: Guards the cache and the counters: Check is called from the
        #: parallel executor's worker threads and the serving layer at
        #: once, and an unguarded dict store / ``+= 1`` under free
        #: threading would lose updates (or corrupt the LRU order).
        self._cache_lock = threading.Lock()
        #: The compiled token-trie checker (None until :meth:`compile`,
        #: or when compilation exceeded its budget).
        self._compiled: CompiledChecker | None = None
        #: The report of the last :meth:`compile` attempt.
        self.compilation: CompilationReport | None = None
        #: Number of Check invocations that missed the cache (stats hook).
        self.check_calls = 0
        #: Number of Check invocations answered from the cache.
        self.check_cache_hits = 0
        #: Cache-missing Checks answered by the compiled recognizer.
        self.check_compiled = 0
        #: Cache-missing Checks that fell back to Earley although a
        #: compiled form exists (condition longer than the horizon).
        self.check_fallbacks = 0

    def _validate(self) -> None:
        if not self.condition_nonterminals:
            raise GrammarError("a description needs at least one condition nonterminal")
        for nt in self.condition_nonterminals:
            if nt not in self.productions:
                raise GrammarError(f"condition nonterminal {nt!r} has no productions")
            if nt not in self.attributes:
                raise GrammarError(
                    f"condition nonterminal {nt!r} has no attribute association"
                )
        for nt in self.attributes:
            if nt not in self.condition_nonterminals:
                raise GrammarError(
                    f"attribute association for {nt!r}, which is not a condition "
                    "nonterminal (Section 4 associates attributes only with "
                    "condition nonterminals)"
                )

    # ------------------------------------------------------------------
    def compile(
        self,
        max_tokens: int = DEFAULT_MAX_TOKENS,
        max_sequences: int = DEFAULT_MAX_SEQUENCES,
    ) -> CompilationReport:
        """Compile the grammar into a token-trie recognizer (offline).

        The registration-time analogue of the paper's build-the-parser
        step, pushed further per the knowledge-compilation tradeoff:
        after a successful compile, :meth:`check` walks the token
        stream instead of running an Earley parse.  Grammars exceeding
        the budget (and conditions longer than the horizon) keep using
        the Earley recognizer; the report says which happened.
        """
        checker, report = compile_productions(
            self.productions,
            self.condition_nonterminals,
            max_tokens=max_tokens,
            max_sequences=max_sequences,
        )
        if not report.compiled:
            get_metrics().counter("ssdl.compile.budget_exceeded").inc()
        self._compiled = checker
        self.compilation = report
        return report

    def invalidate_compiled(self) -> None:
        """Drop the compiled form (capabilities changed): Check falls
        back to the Earley recognizer until :meth:`compile` runs again."""
        self._compiled = None
        self.compilation = None

    @property
    def compiled(self) -> bool:
        """Is a compiled recognizer active?"""
        return self._compiled is not None

    def check(self, condition: Condition) -> CheckResult:
        """The paper's ``Check(C, R)``: exportable attributes for ``C``.

        Results are cached (bounded LRU) per condition tree; the
        recognizer itself was built when the description was
        constructed (the paper's build-parser-at-integration-time
        story), and :meth:`compile` upgrades it to a token-trie walk.
        """
        if self.cache_checks:
            with self._cache_lock:
                cached = self._cache.get(condition)
                if cached is not None:
                    self._cache.move_to_end(condition)
                    self.check_cache_hits += 1
                    return cached
        tokens = tokenize_condition(condition)
        # Outer parentheses are semantically transparent: a grammar rule
        # written as a parenthesized group (e.g. ``( size_list )``, usable
        # inside conjunctions) must also accept the same expression when
        # it *is* the whole condition, where the serializer emits no
        # surrounding parens.  So connector conditions are matched both
        # bare and wrapped -- on the compiled path and the Earley path
        # alike (nested connectors are always parenthesized by the
        # serializer, so only the outermost node needs the dual form).
        wrapped: tuple | None = None
        if condition.is_and or condition.is_or:
            wrapped = (Keyword.LPAREN,) + tokens + (Keyword.RPAREN,)
        result = None
        compiled = self._compiled
        if compiled is not None:
            result = self._check_compiled(compiled, tokens, wrapped)
        if result is None:
            if compiled is not None:
                # A compiled form exists but could not answer (condition
                # longer than the horizon): observable fallback.
                get_metrics().counter("ssdl.check.fallback").inc()
                with self._cache_lock:
                    self.check_fallbacks += 1
            result = self._check_earley(tokens, wrapped)
        with self._cache_lock:
            self.check_calls += 1
            if self.cache_checks:
                self._cache[condition] = result
                self._cache.move_to_end(condition)
                while len(self._cache) > self.check_cache_entries:
                    self._cache.popitem(last=False)
        return result

    def _check_compiled(
        self,
        compiled: CompiledChecker,
        tokens: tuple,
        wrapped: tuple | None,
    ) -> CheckResult | None:
        """Answer a Check with the compiled recognizer (None = too long)."""
        accepted = compiled.match(tokens)
        if accepted is None:
            return None
        if wrapped is not None:
            wrapped_accepted = compiled.match(wrapped)
            if wrapped_accepted is None:
                return None
            accepted |= wrapped_accepted
        with self._cache_lock:
            self.check_compiled += 1
        if not accepted:
            return EMPTY_CHECK
        matched = tuple(
            nt for nt in self.condition_nonterminals if nt in accepted
        )
        sets = frozenset(self.attributes[nt] for nt in matched)
        return CheckResult(sets, matched)

    def _check_earley(self, tokens: tuple, wrapped: tuple | None) -> CheckResult:
        """Answer a Check with the Earley recognizer (always possible)."""
        matched: list[str] = []
        sets: set[frozenset[str]] = set()
        for nt in self.condition_nonterminals:
            if self._recognizer.accepts(tokens, nt) or (
                wrapped is not None and self._recognizer.accepts(wrapped, nt)
            ):
                matched.append(nt)
                sets.add(self.attributes[nt])
        return CheckResult(frozenset(sets), tuple(matched)) if matched else EMPTY_CHECK

    def supports(self, condition: Condition, attributes: Iterable[str]) -> bool:
        """Is the source query ``SP(condition, attributes, R)`` supported?"""
        return self.check(condition).supports(attributes)

    def downloadable(self) -> CheckResult:
        """``Check(true, R)``: what a full download could export (if allowed)."""
        return self.check(TRUE)

    def check_cache_size(self) -> int:
        """How many Check results are currently cached (0 when caching
        is off -- the ablation path must hold memory flat)."""
        with self._cache_lock:
            return len(self._cache)

    # ------------------------------------------------------------------
    def all_attributes(self) -> frozenset[str]:
        """Every attribute exported by any condition nonterminal."""
        out: frozenset[str] = frozenset()
        for attrs in self.attributes.values():
            out |= attrs
        return out

    def templates(self) -> frozenset[Template]:
        """Every atomic-condition template appearing in the grammar."""
        out: set[Template] = set()
        for alts in self.productions.values():
            for alt in alts:
                for symbol in alt:
                    if isinstance(symbol, Template):
                        out.add(symbol)
        return frozenset(out)

    def rule_count(self) -> int:
        """Total number of alternatives across all productions."""
        return sum(len(alts) for alts in self.productions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or "<anonymous>"
        return (
            f"SourceDescription({label}: {len(self.condition_nonterminals)} "
            f"condition nonterminals, {self.rule_count()} rules)"
        )
