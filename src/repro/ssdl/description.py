"""The SSDL source description: the paper's triplet ⟨S, G, A⟩ (Section 4).

* ``S`` -- the condition nonterminals (the alternatives of the implicit
  start symbol ``s``);
* ``G`` -- the CFG productions describing acceptable condition
  expressions;
* ``A`` -- for each condition nonterminal, the set of attributes the
  source exports when a query parses under it.

:meth:`SourceDescription.check` implements the paper's ``Check(C, R)``
function.  One deliberate generalization (documented in DESIGN.md): a
condition may parse under *several* condition nonterminals, each with a
different export set; :class:`CheckResult` therefore carries the family
of exportable attribute sets, and a source query ``SP(C, A, R)`` is
supported iff some member of the family contains ``A``.  With a single
matching nonterminal this is exactly the paper's definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.conditions.tree import TRUE, Condition
from repro.errors import GrammarError
from repro.ssdl.earley import EarleyRecognizer
from repro.ssdl.symbols import Symbol, Template, tokenize_condition


@dataclass(frozen=True)
class CheckResult:
    """Result of ``Check(C, R)``.

    ``attribute_sets`` is the family of attribute sets exportable for the
    condition (one per matching condition nonterminal, deduplicated);
    ``matched`` names the matching condition nonterminals.  An empty
    family means the condition is not supported at all.
    """

    attribute_sets: frozenset[frozenset[str]]
    matched: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.attribute_sets)

    def supports(self, attributes: Iterable[str]) -> bool:
        """Is ``SP(C, attributes, R)`` a supported source query?"""
        wanted = frozenset(attributes)
        return any(wanted <= exported for exported in self.attribute_sets)

    @property
    def exported(self) -> frozenset[str]:
        """The union of exportable attributes (the paper's single set when
        only one nonterminal matches; an over-approximation otherwise)."""
        out: frozenset[str] = frozenset()
        for attrs in self.attribute_sets:
            out |= attrs
        return out

    def best_set_for(self, attributes: Iterable[str]) -> frozenset[str] | None:
        """A smallest exportable set containing ``attributes``, or None."""
        wanted = frozenset(attributes)
        candidates = [s for s in self.attribute_sets if wanted <= s]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (len(s), sorted(s)))


#: The empty Check result (condition not supported).
EMPTY_CHECK = CheckResult(frozenset())


class SourceDescription:
    """An SSDL description ⟨S, G, A⟩ with a prebuilt recognizer and cache.

    Parameters
    ----------
    condition_nonterminals:
        The paper's S -- names of the start alternatives, in order.
    productions:
        The paper's G -- every nonterminal's alternatives (must include
        each condition nonterminal; helper nonterminals are allowed and
        carry no attribute sets, per Section 4).
    attributes:
        The paper's A -- exported attribute set per condition nonterminal.
    name:
        Optional label used in error messages.
    """

    def __init__(
        self,
        condition_nonterminals: Sequence[str],
        productions: Mapping[str, Sequence[Sequence[Symbol]]],
        attributes: Mapping[str, Iterable[str]],
        name: str = "",
        cache_checks: bool = True,
    ):
        """``cache_checks=False`` reparses on every Check call -- only
        useful for the cache-ablation benchmark."""
        self.name = name
        self.condition_nonterminals = tuple(condition_nonterminals)
        self.productions: dict[str, tuple[tuple[Symbol, ...], ...]] = {
            head: tuple(tuple(alt) for alt in alts)
            for head, alts in productions.items()
        }
        self.attributes: dict[str, frozenset[str]] = {
            nt: frozenset(attrs) for nt, attrs in attributes.items()
        }
        self._validate()
        self._recognizer = EarleyRecognizer(self.productions)
        self.cache_checks = cache_checks
        self._cache: dict[Condition, CheckResult] = {}
        #: Number of Check invocations that missed the cache (stats hook).
        self.check_calls = 0
        #: Number of Check invocations answered from the cache.
        self.check_cache_hits = 0

    def _validate(self) -> None:
        if not self.condition_nonterminals:
            raise GrammarError("a description needs at least one condition nonterminal")
        for nt in self.condition_nonterminals:
            if nt not in self.productions:
                raise GrammarError(f"condition nonterminal {nt!r} has no productions")
            if nt not in self.attributes:
                raise GrammarError(
                    f"condition nonterminal {nt!r} has no attribute association"
                )
        for nt in self.attributes:
            if nt not in self.condition_nonterminals:
                raise GrammarError(
                    f"attribute association for {nt!r}, which is not a condition "
                    "nonterminal (Section 4 associates attributes only with "
                    "condition nonterminals)"
                )

    # ------------------------------------------------------------------
    def check(self, condition: Condition) -> CheckResult:
        """The paper's ``Check(C, R)``: exportable attributes for ``C``.

        Results are cached per condition tree; the recognizer itself was
        built when the description was constructed (the paper's
        build-parser-at-integration-time story).
        """
        cached = self._cache.get(condition) if self.cache_checks else None
        if cached is not None:
            self.check_cache_hits += 1
            return cached
        self.check_calls += 1
        tokens = tokenize_condition(condition)
        # Outer parentheses are semantically transparent: a grammar rule
        # written as a parenthesized group (e.g. ``( size_list )``, usable
        # inside conjunctions) must also accept the same expression when
        # it *is* the whole condition, where the serializer emits no
        # surrounding parens.  So connector conditions are matched both
        # bare and wrapped.
        wrapped: tuple | None = None
        if condition.is_and or condition.is_or:
            from repro.ssdl.symbols import Keyword

            wrapped = (Keyword.LPAREN,) + tokens + (Keyword.RPAREN,)
        matched: list[str] = []
        sets: set[frozenset[str]] = set()
        for nt in self.condition_nonterminals:
            if self._recognizer.accepts(tokens, nt) or (
                wrapped is not None and self._recognizer.accepts(wrapped, nt)
            ):
                matched.append(nt)
                sets.add(self.attributes[nt])
        result = CheckResult(frozenset(sets), tuple(matched)) if matched else EMPTY_CHECK
        self._cache[condition] = result
        return result

    def supports(self, condition: Condition, attributes: Iterable[str]) -> bool:
        """Is the source query ``SP(condition, attributes, R)`` supported?"""
        return self.check(condition).supports(attributes)

    def downloadable(self) -> CheckResult:
        """``Check(true, R)``: what a full download could export (if allowed)."""
        return self.check(TRUE)

    # ------------------------------------------------------------------
    def all_attributes(self) -> frozenset[str]:
        """Every attribute exported by any condition nonterminal."""
        out: frozenset[str] = frozenset()
        for attrs in self.attributes.values():
            out |= attrs
        return out

    def templates(self) -> frozenset[Template]:
        """Every atomic-condition template appearing in the grammar."""
        out: set[Template] = set()
        for alts in self.productions.values():
            for alt in alts:
                for symbol in alt:
                    if isinstance(symbol, Template):
                        out.add(symbol)
        return frozenset(out)

    def rule_count(self) -> int:
        """Total number of alternatives across all productions."""
        return sum(len(alts) for alts in self.productions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or "<anonymous>"
        return (
            f"SourceDescription({label}: {len(self.condition_nonterminals)} "
            f"condition nonterminals, {self.rule_count()} rules)"
        )
