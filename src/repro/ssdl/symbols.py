"""Terminal and nonterminal symbols of SSDL grammars, and the tokenizer.

SSDL (Section 4) describes the condition expressions a source accepts
with a context-free grammar.  The *terminals* of that grammar are

* atomic-condition templates such as ``make = $str`` or ``price < $num``
  (``$``-classes stand for constants, as in the paper's ``$m``/``$p``),
  or templates with a fixed literal such as ``style = 'sedan'``;
* the connector keywords ``and`` / ``or``;
* parentheses; and
* the keyword ``true`` (for sources that allow downloading, i.e. accept
  the trivially true condition of EPG lines 11-12 / IPG's download plan).

A condition tree is matched against the grammar by *serializing* it into
a token sequence: leaves become atom tokens, connectors become keyword
tokens, and non-leaf children are wrapped in parentheses.  The top level
is unparenthesized, matching how the paper writes grammar rules
(``s1 -> make = $m ^ price < $p`` matches a two-leaf AND tree).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import Condition


class ConstClass(enum.Enum):
    """Constant classes usable in templates (the paper's ``$m``, ``$p``...)."""

    STR = "$str"
    NUM = "$num"
    BOOL = "$bool"
    LIST = "$list"
    ANY = "$any"

    def admits(self, value) -> bool:
        """Does a constant value belong to this class?"""
        if self is ConstClass.ANY:
            return True
        if self is ConstClass.STR:
            return isinstance(value, str)
        if self is ConstClass.BOOL:
            return isinstance(value, bool)
        if self is ConstClass.NUM:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ConstClass.LIST:
            return isinstance(value, tuple)
        raise AssertionError(self)  # pragma: no cover

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_CONST_BY_TEXT = {c.value: c for c in ConstClass}
# Aliases matching the paper's informal notation.
_CONST_BY_TEXT["$m"] = ConstClass.STR
_CONST_BY_TEXT["$c"] = ConstClass.STR
_CONST_BY_TEXT["$s"] = ConstClass.STR
_CONST_BY_TEXT["$p"] = ConstClass.NUM
_CONST_BY_TEXT["$n"] = ConstClass.NUM
_CONST_BY_TEXT["$v"] = ConstClass.ANY
_CONST_BY_TEXT["$l"] = ConstClass.LIST


def const_class_from_text(text: str) -> ConstClass | None:
    """The :class:`ConstClass` for ``$``-notation, or None if unknown."""
    return _CONST_BY_TEXT.get(text.lower())


class Keyword(enum.Enum):
    """Non-template terminal symbols."""

    AND = "and"
    OR = "or"
    LPAREN = "("
    RPAREN = ")"
    TRUE = "true"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# ----------------------------------------------------------------------
# Tokens (instances appearing in a serialized condition)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AtomToken:
    """A serialized atomic condition."""

    atom: Atom

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.atom.to_text()


#: A token is an atomic condition or a keyword.
Token = Union[AtomToken, Keyword]


def tokenize_condition(condition: Condition) -> tuple[Token, ...]:
    """Serialize a condition tree into the token sequence the grammar sees."""
    out: list[Token] = []
    _serialize(condition, out, top_level=True)
    return tuple(out)


def _serialize(condition: Condition, out: list[Token], top_level: bool) -> None:
    if condition.is_true:
        out.append(Keyword.TRUE)
        return
    if condition.is_leaf:
        out.append(AtomToken(condition.atom))
        return
    keyword = Keyword.AND if condition.is_and else Keyword.OR
    if not top_level:
        out.append(Keyword.LPAREN)
    for index, child in enumerate(condition.children):
        if index:
            out.append(keyword)
        _serialize(child, out, top_level=False)
    if not top_level:
        out.append(Keyword.RPAREN)


# ----------------------------------------------------------------------
# Grammar symbols (what appears on the right-hand side of productions)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Template:
    """An atomic-condition template terminal: ``attr op constant-or-class``.

    ``constant`` is either a :class:`ConstClass` (matches any constant of
    the class) or a literal value (matches only that constant).
    """

    attribute: str
    op: Op
    constant: object

    def matches(self, token: Token) -> bool:
        if not isinstance(token, AtomToken):
            return False
        atom = token.atom
        if atom.attribute != self.attribute or atom.op != self.op:
            return False
        if isinstance(self.constant, ConstClass):
            return self.constant.admits(atom.value)
        return atom.value == self.constant

    def __str__(self) -> str:  # pragma: no cover - debug aid
        const = str(self.constant)
        if isinstance(self.constant, str):
            const = f"'{self.constant}'"
        return f"{self.attribute} {self.op.value} {const}"


@dataclass(frozen=True)
class KeywordSym:
    """A keyword terminal (``and``, ``or``, parens, ``true``)."""

    keyword: Keyword

    def matches(self, token: Token) -> bool:
        return token is self.keyword

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.keyword.value


@dataclass(frozen=True)
class NT:
    """A reference to a nonterminal by name."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.name


#: A grammar symbol is a terminal (Template/KeywordSym) or a nonterminal.
Symbol = Union[Template, KeywordSym, NT]

AND_SYM = KeywordSym(Keyword.AND)
OR_SYM = KeywordSym(Keyword.OR)
LPAREN_SYM = KeywordSym(Keyword.LPAREN)
RPAREN_SYM = KeywordSym(Keyword.RPAREN)
TRUE_SYM = KeywordSym(Keyword.TRUE)


def is_terminal(symbol: Symbol) -> bool:
    return not isinstance(symbol, NT)
