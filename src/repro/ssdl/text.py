"""Textual SSDL: parse source descriptions written like the paper's Example 4.1.

Syntax (``#`` starts a comment; blank lines ignored)::

    s -> s1 | s2
    s1 -> make = $str and price < $num
    s2 -> make = $str and color = $str
    attributes s1 : make, model, year, color
    attributes s2 : make, model, year

* The rule for the start symbol ``s`` is mandatory and each of its
  alternatives must be a single nonterminal -- exactly the paper's
  restriction.  Those nonterminals are the *condition nonterminals*.
* A right-hand side is a sequence of: atomic-condition templates
  (``attr op $class`` or ``attr op 'literal'``), the keywords ``and`` /
  ``or`` / ``true``, parentheses, or nonterminal references.
* Constant classes: ``$str $num $bool $list $any`` (paper-style aliases
  ``$m $c $s $p $n $v $l`` also accepted).
* Helper nonterminals (reachable from condition nonterminals but not
  listed under ``s``) need no ``attributes`` line.
"""

from __future__ import annotations

import re

from repro.conditions.atoms import Op, op_from_text
from repro.errors import SSDLParseError
from repro.ssdl.description import SourceDescription
from repro.ssdl.symbols import (
    AND_SYM,
    LPAREN_SYM,
    NT,
    OR_SYM,
    RPAREN_SYM,
    TRUE_SYM,
    KeywordSym,
    Symbol,
    Template,
    const_class_from_text,
)

_RHS_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<alt>\|)
  | (?P<op><=|>=|!=|<>|==|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<const>\$[A-Za-z]+)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:\\.|[^'\\])*'|"(?:\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


def _lex_rhs(text: str, line_no: int) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _RHS_TOKEN_RE.match(text, pos)
        if match is None:
            raise SSDLParseError(
                f"line {line_no}: unexpected character {text[pos]!r}", line_no
            )
        kind = match.lastgroup or ""
        value = match.group()
        pos = match.end()
        if kind == "ws":
            continue
        tokens.append((kind, value))
    return tokens


def _parse_alternative(
    tokens: list[tuple[str, str]], line_no: int
) -> tuple[Symbol, ...]:
    """One alternative: a sequence of grammar symbols."""
    symbols: list[Symbol] = []
    index = 0
    n = len(tokens)
    while index < n:
        kind, value = tokens[index]
        if kind == "lparen":
            symbols.append(LPAREN_SYM)
            index += 1
        elif kind == "rparen":
            symbols.append(RPAREN_SYM)
            index += 1
        elif kind == "ident" and value.lower() == "and":
            symbols.append(AND_SYM)
            index += 1
        elif kind == "ident" and value.lower() == "or":
            symbols.append(OR_SYM)
            index += 1
        elif kind == "ident" and value.lower() == "true":
            symbols.append(TRUE_SYM)
            index += 1
        elif kind == "ident":
            # Template if followed by an operator, else nonterminal ref.
            if index + 1 < n and tokens[index + 1][0] == "op":
                symbols.append(_parse_template(tokens, index, line_no))
                index += 3
            elif (
                index + 1 < n
                and tokens[index + 1][0] == "ident"
                and tokens[index + 1][1].lower() in ("in", "contains")
            ):
                symbols.append(_parse_template(tokens, index, line_no))
                index += 3
            else:
                symbols.append(NT(value))
                index += 1
        else:
            raise SSDLParseError(
                f"line {line_no}: unexpected token {value!r} in rule body", line_no
            )
    if not symbols:
        raise SSDLParseError(f"line {line_no}: empty alternative", line_no)
    return tuple(symbols)


def _parse_template(
    tokens: list[tuple[str, str]], index: int, line_no: int
) -> Template:
    attr = tokens[index][1]
    op_kind, op_text = tokens[index + 1]
    if op_kind == "op":
        op = op_from_text(op_text)
    else:
        op = Op.IN if op_text.lower() == "in" else Op.CONTAINS
    if index + 2 >= len(tokens):
        raise SSDLParseError(
            f"line {line_no}: template {attr!r} {op_text!r} is missing its constant",
            line_no,
        )
    const_kind, const_text = tokens[index + 2]
    if const_kind == "const":
        const_class = const_class_from_text(const_text)
        if const_class is None:
            raise SSDLParseError(
                f"line {line_no}: unknown constant class {const_text!r}", line_no
            )
        return Template(attr, op, const_class)
    if const_kind == "number":
        value = float(const_text) if "." in const_text else int(const_text)
        return Template(attr, op, value)
    if const_kind == "string":
        body = const_text[1:-1]
        body = body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")
        return Template(attr, op, body)
    raise SSDLParseError(
        f"line {line_no}: expected a constant after {attr} {op_text}, "
        f"found {const_text!r}",
        line_no,
    )


def parse_ssdl(text: str, name: str = "", start: str = "s") -> SourceDescription:
    """Parse a textual SSDL description into a :class:`SourceDescription`."""
    productions: dict[str, list[tuple[Symbol, ...]]] = {}
    attributes: dict[str, list[str]] = {}
    start_alternatives: list[str] | None = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        attr_match = re.match(
            r"^attributes\s+(?:::\s*)?([A-Za-z_][A-Za-z_0-9]*)\s*:\s*(.*)$", line
        )
        if attr_match:
            nt_name, attr_list = attr_match.groups()
            attrs = [a.strip() for a in attr_list.split(",") if a.strip()]
            attributes.setdefault(nt_name, []).extend(attrs)
            continue
        rule_match = re.match(r"^([A-Za-z_][A-Za-z_0-9]*)\s*(?:->|::=|:=)\s*(.*)$", line)
        if not rule_match:
            raise SSDLParseError(f"line {line_no}: cannot parse {line!r}", line_no)
        head, rhs_text = rule_match.groups()
        tokens = _lex_rhs(rhs_text, line_no)
        alternatives: list[list[tuple[str, str]]] = [[]]
        for token in tokens:
            if token[0] == "alt":
                alternatives.append([])
            else:
                alternatives[-1].append(token)
        parsed = [_parse_alternative(alt, line_no) for alt in alternatives]
        if head == start:
            if start_alternatives is not None:
                raise SSDLParseError(
                    f"line {line_no}: duplicate rule for start symbol {start!r}",
                    line_no,
                )
            start_alternatives = []
            for alt in parsed:
                if len(alt) != 1 or not isinstance(alt[0], NT):
                    raise SSDLParseError(
                        f"line {line_no}: every alternative of {start!r} must be a "
                        "single condition nonterminal (Section 4)",
                        line_no,
                    )
                start_alternatives.append(alt[0].name)
        else:
            productions.setdefault(head, []).extend(parsed)

    if start_alternatives is None:
        raise SSDLParseError(f"missing rule for start symbol {start!r}")
    return SourceDescription(
        condition_nonterminals=start_alternatives,
        productions=productions,
        attributes={nt: attrs for nt, attrs in attributes.items()},
        name=name,
    )


def format_ssdl(description: SourceDescription, start: str = "s") -> str:
    """Render a description back to the textual syntax (round-trippable)."""
    lines = [f"{start} -> " + " | ".join(description.condition_nonterminals)]
    for head, alts in description.productions.items():
        rendered = " | ".join(" ".join(_format_symbol(s) for s in alt) for alt in alts)
        lines.append(f"{head} -> {rendered}")
    for nt, attrs in description.attributes.items():
        lines.append(f"attributes {nt} : " + ", ".join(sorted(attrs)))
    return "\n".join(lines)


def _format_symbol(symbol: Symbol) -> str:
    if isinstance(symbol, NT):
        return symbol.name
    if isinstance(symbol, KeywordSym):
        return symbol.keyword.value
    # Template
    const = symbol.constant
    if hasattr(const, "value") and not isinstance(const, (int, float, str)):
        const_text = const.value  # ConstClass
    elif isinstance(const, str):
        escaped = const.replace("\\", "\\\\").replace("'", "\\'")
        const_text = f"'{escaped}'"
    else:
        const_text = repr(const)
    return f"{symbol.attribute} {symbol.op.value} {const_text}"
