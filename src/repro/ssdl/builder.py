"""Programmatic construction of SSDL descriptions.

The workload generator and the tests build many descriptions; this
builder offers a fluent API on top of the textual rule syntax::

    desc = (
        DescriptionBuilder("cars")
        .rule("s1", "make = $str and price < $num",
              attributes=["make", "model", "year", "color"])
        .rule("s2", "make = $str and color = $str",
              attributes=["make", "model", "year"])
        .build()
    )
"""

from __future__ import annotations

from repro.errors import SSDLError
from repro.ssdl.description import SourceDescription
from repro.ssdl.symbols import Symbol
from repro.ssdl.text import _lex_rhs, _parse_alternative


class DescriptionBuilder:
    """Accumulates condition rules and helper rules, then builds."""

    def __init__(self, name: str = ""):
        self.name = name
        self._condition_nts: list[str] = []
        self._productions: dict[str, list[tuple[Symbol, ...]]] = {}
        self._attributes: dict[str, list[str]] = {}

    def rule(self, nt: str, rhs: str, attributes: list[str] | None = None
             ) -> "DescriptionBuilder":
        """Add a condition nonterminal with its rule(s) and export set.

        ``rhs`` uses the textual SSDL syntax and may contain ``|`` for
        alternatives.  Calling ``rule`` again with the same ``nt``
        appends alternatives and attributes.
        """
        if nt not in self._condition_nts:
            self._condition_nts.append(nt)
        self._add_production(nt, rhs)
        if attributes:
            self._attributes.setdefault(nt, []).extend(attributes)
        return self

    def helper(self, nt: str, rhs: str) -> "DescriptionBuilder":
        """Add a helper nonterminal (no attribute association)."""
        if nt in self._condition_nts:
            raise SSDLError(f"{nt!r} is already a condition nonterminal")
        self._add_production(nt, rhs)
        return self

    def _add_production(self, nt: str, rhs: str) -> None:
        tokens = _lex_rhs(rhs, line_no=0)
        alternatives: list[list[tuple[str, str]]] = [[]]
        for token in tokens:
            if token[0] == "alt":
                alternatives.append([])
            else:
                alternatives[-1].append(token)
        parsed = [_parse_alternative(alt, line_no=0) for alt in alternatives]
        self._productions.setdefault(nt, []).extend(parsed)

    def raw_rule(self, nt: str, symbols: list[Symbol],
                 attributes: list[str] | None = None) -> "DescriptionBuilder":
        """Add a rule from already-constructed symbols (generator use)."""
        if attributes is not None and nt not in self._condition_nts:
            self._condition_nts.append(nt)
        self._productions.setdefault(nt, []).append(tuple(symbols))
        if attributes:
            self._attributes.setdefault(nt, []).extend(attributes)
        return self

    def build(self) -> SourceDescription:
        """Validate and return the :class:`SourceDescription`."""
        missing = [nt for nt in self._condition_nts if nt not in self._attributes]
        if missing:
            raise SSDLError(
                "condition nonterminals without attribute sets: "
                + ", ".join(missing)
            )
        return SourceDescription(
            condition_nonterminals=self._condition_nts,
            productions=self._productions,
            attributes=self._attributes,
            name=self.name,
        )
