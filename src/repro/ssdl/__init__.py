"""SSDL -- the Simple Source-Description Language (paper Section 4).

Public surface:

* :class:`SourceDescription` (the ⟨S, G, A⟩ triplet) and
  :class:`CheckResult` -- the ``Check(C, R)`` machinery.
* :func:`parse_ssdl` / :func:`format_ssdl` -- the textual syntax.
* :class:`DescriptionBuilder` -- programmatic construction.
* :func:`commutation_closure` / :func:`fix_condition` -- Section 6.1's
  order-insensitivity machinery.
* Grammar symbol model (:class:`Template`, :class:`NT`, keywords) and the
  :class:`EarleyRecognizer` for advanced uses.
"""

from repro.ssdl.binding_patterns import compile_binding_patterns
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.capabilities import (
    atomic_only,
    conjunctive_only,
    forbidden_attributes,
    gated_exports,
    with_download,
)
from repro.ssdl.commute import commutation_closure, fix_condition
from repro.ssdl.compiled import (
    CompilationReport,
    CompiledChecker,
    compile_productions,
)
from repro.ssdl.description import EMPTY_CHECK, CheckResult, SourceDescription
from repro.ssdl.discovery import DiscoveryReport, discover_description
from repro.ssdl.earley import EarleyRecognizer
from repro.ssdl.forms import (
    CheckboxField,
    FormField,
    KeywordField,
    NumberField,
    SelectField,
    TextField,
    WebForm,
)
from repro.ssdl.symbols import (
    AND_SYM,
    LPAREN_SYM,
    OR_SYM,
    RPAREN_SYM,
    TRUE_SYM,
    AtomToken,
    ConstClass,
    Keyword,
    KeywordSym,
    NT,
    Symbol,
    Template,
    Token,
    is_terminal,
    tokenize_condition,
)
from repro.ssdl.text import format_ssdl, parse_ssdl

__all__ = [
    "SourceDescription",
    "CheckResult",
    "EMPTY_CHECK",
    "parse_ssdl",
    "format_ssdl",
    "DescriptionBuilder",
    "compile_binding_patterns",
    "atomic_only",
    "conjunctive_only",
    "forbidden_attributes",
    "gated_exports",
    "with_download",
    "commutation_closure",
    "fix_condition",
    "CompilationReport",
    "CompiledChecker",
    "compile_productions",
    "EarleyRecognizer",
    "discover_description",
    "DiscoveryReport",
    "WebForm",
    "FormField",
    "TextField",
    "KeywordField",
    "NumberField",
    "SelectField",
    "CheckboxField",
    "ConstClass",
    "Keyword",
    "KeywordSym",
    "Template",
    "NT",
    "Symbol",
    "Token",
    "AtomToken",
    "tokenize_condition",
    "is_terminal",
    "AND_SYM",
    "OR_SYM",
    "LPAREN_SYM",
    "RPAREN_SYM",
    "TRUE_SYM",
]
