"""An Earley recognizer for SSDL grammars.

The paper builds a YACC parser from the SSDL description.  YACC requires
LALR(1) grammars; the commutation closure of Section 6.1 and machine-
generated capability descriptions are frequently ambiguous, so we use an
Earley recognizer instead: it handles *any* context-free grammar and, as
the paper requires, "runs in time linear in the size of the condition
expression" for the non-ambiguous grammars typical of web forms (and at
worst cubically otherwise -- condition expressions are short).

Only recognition is needed: ``Check`` asks "does this token sequence
derive from condition nonterminal s_j?"; no parse tree is materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import GrammarError
from repro.ssdl.symbols import NT, Symbol, Token, is_terminal

#: Productions: nonterminal name -> alternatives, each a symbol sequence.
Productions = Mapping[str, Sequence[Sequence[Symbol]]]


@dataclass(frozen=True)
class _Item:
    """An Earley item: (nonterminal, alternative index, dot, origin)."""

    head: str
    alt: int
    dot: int
    origin: int


class EarleyRecognizer:
    """Recognizes token sequences against a fixed set of productions.

    Build once per source description (the analogue of the paper's
    build-the-parser-when-the-source-joins step); call :meth:`accepts`
    per candidate source query.
    """

    def __init__(self, productions: Productions):
        self._productions: dict[str, list[tuple[Symbol, ...]]] = {
            head: [tuple(alt) for alt in alts] for head, alts in productions.items()
        }
        self._validate()
        # Nonterminals that can derive the empty string (needed for
        # completion of nullable rules).
        self._nullable = self._compute_nullable()

    def _validate(self) -> None:
        for head, alts in self._productions.items():
            for alt in alts:
                for symbol in alt:
                    if isinstance(symbol, NT) and symbol.name not in self._productions:
                        raise GrammarError(
                            f"production for {head!r} references undefined "
                            f"nonterminal {symbol.name!r}"
                        )

    def _compute_nullable(self) -> frozenset[str]:
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for head, alts in self._productions.items():
                if head in nullable:
                    continue
                for alt in alts:
                    if all(isinstance(s, NT) and s.name in nullable for s in alt):
                        nullable.add(head)
                        changed = True
                        break
        return frozenset(nullable)

    # ------------------------------------------------------------------
    def accepts(self, tokens: Sequence[Token], start: str) -> bool:
        """Does ``tokens`` derive from nonterminal ``start``?"""
        if start not in self._productions:
            raise GrammarError(f"unknown start nonterminal {start!r}")
        n = len(tokens)
        if n == 0:
            return start in self._nullable
        chart: list[set[_Item]] = [set() for _ in range(n + 1)]
        agenda: list[_Item] = []

        def add(position: int, item: _Item) -> None:
            if item not in chart[position]:
                chart[position].add(item)
                if position == current:
                    agenda.append(item)

        # Seed with the start productions.
        current = 0
        for alt_index in range(len(self._productions[start])):
            add(0, _Item(start, alt_index, 0, 0))
        for current in range(n + 1):
            agenda = list(chart[current])
            while agenda:
                item = agenda.pop()
                alt = self._productions[item.head][item.alt]
                if item.dot < len(alt):
                    symbol = alt[item.dot]
                    if is_terminal(symbol):
                        # Scan.
                        if current < n and symbol.matches(tokens[current]):  # type: ignore[union-attr]
                            chart[current + 1].add(
                                _Item(item.head, item.alt, item.dot + 1, item.origin)
                            )
                    else:
                        # Predict.
                        name = symbol.name  # type: ignore[union-attr]
                        for alt_index in range(len(self._productions[name])):
                            add(current, _Item(name, alt_index, 0, current))
                        # Magic completion for nullable nonterminals
                        # (Aycock & Horspool): advance over them eagerly.
                        if name in self._nullable:
                            add(
                                current,
                                _Item(item.head, item.alt, item.dot + 1, item.origin),
                            )
                else:
                    # Complete.
                    for parent in list(chart[item.origin]):
                        parent_alt = self._productions[parent.head][parent.alt]
                        if parent.dot < len(parent_alt):
                            expected = parent_alt[parent.dot]
                            if isinstance(expected, NT) and expected.name == item.head:
                                add(
                                    current,
                                    _Item(
                                        parent.head,
                                        parent.alt,
                                        parent.dot + 1,
                                        parent.origin,
                                    ),
                                )
        target_len = {
            len(self._productions[start][alt_index])
            for alt_index in range(len(self._productions[start]))
        }
        for item in chart[n]:
            if (
                item.head == start
                and item.origin == 0
                and item.dot == len(self._productions[start][item.alt])
            ):
                return True
        # `target_len` intentionally unused beyond sanity; kept minimal.
        del target_len
        return False
