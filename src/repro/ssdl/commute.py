"""Commutation closure of source descriptions and source-query "fixing".

Section 6.1: instead of firing the commutativity rewrite rule on every
target query, GenCompact rewrites the *source description once*, when
the source joins the system, so the grammar appears order insensitive.
At execution time the mediator then "fixes" each source query of the one
chosen plan -- reordering its conjuncts/disjuncts into an order the
*native* (original, order-sensitive) grammar accepts.

:func:`commutation_closure` adds, for every production alternative whose
top level is a pure ``and``- (or pure ``or``-) separated sequence, all
permutations of its segments.  A segment is a maximal symbol run between
top-level connector keywords (parenthesized groups count as one
segment).  For recursive rules this closes the rule set, which is a
superset of the single-rule languages but still only accepts
commutative rearrangements of natively acceptable strings.

:func:`fix_condition` searches the commutative orbit of a condition for
an ordering the native description supports -- the paper's "fix the
query" step, whose cost is low because only the queries of the single
plan that will execute are fixed.
"""

from __future__ import annotations

from itertools import islice, permutations

from repro.conditions.rewrite import enumerate_orderings
from repro.conditions.tree import Condition
from repro.errors import QueryFixingError
from repro.ssdl.description import SourceDescription
from repro.ssdl.symbols import (
    AND_SYM,
    LPAREN_SYM,
    OR_SYM,
    RPAREN_SYM,
    KeywordSym,
    Symbol,
)

#: Do not permute sequences with more segments than this (k! blow-up guard).
DEFAULT_MAX_SEGMENTS = 6


def _split_segments(
    alternative: tuple[Symbol, ...], connector: KeywordSym
) -> list[list[Symbol]] | None:
    """Split an alternative into top-level segments around ``connector``.

    Returns None when the alternative is not a pure top-level sequence of
    that connector (mixed connectors at the top level, unbalanced parens,
    or fewer than two segments).
    """
    other = OR_SYM if connector is AND_SYM else AND_SYM
    segments: list[list[Symbol]] = [[]]
    depth = 0
    for symbol in alternative:
        if symbol == LPAREN_SYM:
            depth += 1
            segments[-1].append(symbol)
        elif symbol == RPAREN_SYM:
            depth -= 1
            if depth < 0:
                return None
            segments[-1].append(symbol)
        elif depth == 0 and symbol == connector:
            segments.append([])
        elif depth == 0 and symbol == other:
            return None  # mixed top-level connectors: leave untouched
        else:
            segments[-1].append(symbol)
    if depth != 0 or len(segments) < 2 or any(not seg for seg in segments):
        return None
    return segments


def commutation_closure(
    description: SourceDescription, max_segments: int = DEFAULT_MAX_SEGMENTS
) -> SourceDescription:
    """A description accepting all commutative reorderings of each rule.

    Rules whose top-level connector sequence exceeds ``max_segments``
    segments are left unpermuted (the factorial closure would be too
    large); fixing falls back to searching orderings of the query
    instead.  The returned description shares attribute associations
    with the original.
    """
    new_productions: dict[str, list[tuple[Symbol, ...]]] = {}
    for head, alternatives in description.productions.items():
        seen: dict[tuple[Symbol, ...], None] = {}
        for alternative in alternatives:
            seen.setdefault(tuple(alternative))
            for connector in (AND_SYM, OR_SYM):
                segments = _split_segments(tuple(alternative), connector)
                if segments is None or len(segments) > max_segments:
                    continue
                joined_connector = connector
                for order in permutations(range(len(segments))):
                    permuted: list[Symbol] = []
                    for position, seg_index in enumerate(order):
                        if position:
                            permuted.append(joined_connector)
                        permuted.extend(segments[seg_index])
                    seen.setdefault(tuple(permuted))
        new_productions[head] = list(seen)
    closed = SourceDescription(
        condition_nonterminals=description.condition_nonterminals,
        productions=new_productions,
        attributes=description.attributes,
        name=f"{description.name}+commuted" if description.name else "commuted",
    )
    return closed


def fix_condition(
    condition: Condition,
    native: SourceDescription,
    attributes: frozenset[str] | None = None,
    limit: int = 5000,
) -> Condition:
    """Reorder ``condition`` so the native description supports it.

    Searches the commutative orbit (permutations of every connector
    node's children, at most ``limit`` orderings).  ``attributes`` is
    the projection the fixed query must be able to export; when None
    only grammatical acceptance is required.

    Raises :class:`QueryFixingError` when no ordering is accepted --
    this indicates the commutation-closed description accepted a query
    whose orbit the native grammar rejects entirely (possible only when
    closure was truncated by ``max_segments``).
    """
    wanted = attributes if attributes is not None else frozenset()

    def accepted(candidate: Condition) -> bool:
        result = native.check(candidate)
        if not result:
            return False
        if attributes is None:
            return True
        return result.supports(wanted)

    if accepted(condition):
        return condition
    for candidate in islice(enumerate_orderings(condition, limit), limit):
        if accepted(candidate):
            return candidate
    raise QueryFixingError(
        f"no commutative reordering of {condition} is accepted by the native "
        f"description {native.name or '<anonymous>'!r}"
    )
