"""Web forms compiled to SSDL.

The deepest of Section 4's structure restrictions is "restricting
expressions based on the structure of a form".  Authoring the grammar
for a form by hand is mechanical: every combination of filled-in
optional fields, in the form's fixed field order, is a rule.  This
module models the form directly and compiles it:

    form = WebForm("car_form", fields=[
        SelectField("style", options=["sedan", "coupe"]),
        TextField("make"),
        NumberField("price", op="<="),
        CheckboxField("size"),              # multi-select -> OR list
    ], exports=["id", "make", "model", "price"])
    description = form.compile()

Semantics per field kind:

* :class:`TextField` -- one equality on a string constant.
* :class:`NumberField` -- one comparison (default ``=``) on a number.
* :class:`SelectField` -- an equality restricted to the declared
  options (a literal-template alternative per option).
* :class:`CheckboxField` -- one value or a parenthesized OR-list of
  values (multi-select).

``required=True`` forces the field into every rule ("requiring that a
particular field be filled in"); ``max_filled`` bounds how many fields a
single query may use (the expression-size restriction).  The compiled
grammar is order-sensitive in field order, exactly like the page --
GenCompact's commutation closure and query fixing take it from there.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product

from repro.errors import SSDLError
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.description import SourceDescription


@dataclass(frozen=True)
class FormField:
    """Base class for form fields."""

    attribute: str
    required: bool = False

    def spellings(self, form_name: str) -> list[str]:
        """Grammar fragments this field can contribute when filled in."""
        raise NotImplementedError

    def helpers(self, form_name: str) -> dict[str, str]:
        """Helper nonterminal rules this field needs (name -> rhs)."""
        return {}


@dataclass(frozen=True)
class TextField(FormField):
    """A free-text box matched by equality."""

    def spellings(self, form_name: str) -> list[str]:
        return [f"{self.attribute} = $str"]


@dataclass(frozen=True)
class KeywordField(FormField):
    """A free-text box matched by substring (search boxes)."""

    def spellings(self, form_name: str) -> list[str]:
        return [f"{self.attribute} contains $str"]


@dataclass(frozen=True)
class NumberField(FormField):
    """A numeric box; ``op`` is the comparison the form applies."""

    op: str = "="

    def __post_init__(self) -> None:
        if self.op not in ("=", "<", "<=", ">", ">="):
            raise SSDLError(f"unsupported number-field operator {self.op!r}")

    def spellings(self, form_name: str) -> list[str]:
        return [f"{self.attribute} {self.op} $num"]


@dataclass(frozen=True)
class SelectField(FormField):
    """A single-select dropdown: equality against one of its options."""

    options: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.options:
            raise SSDLError(
                f"select field {self.attribute!r} needs at least one option"
            )
        object.__setattr__(self, "options", tuple(self.options))

    def spellings(self, form_name: str) -> list[str]:
        return [
            f"{self.attribute} = '" + option.replace("'", "\\'") + "'"
            for option in self.options
        ]


@dataclass(frozen=True)
class CheckboxField(FormField):
    """A multi-select: one value, or a parenthesized OR-list of values."""

    def _list_nt(self, form_name: str) -> str:
        return f"{form_name}_{self.attribute}_list"

    def spellings(self, form_name: str) -> list[str]:
        return [
            f"{self.attribute} = $str",
            f"( {self._list_nt(form_name)} )",
        ]

    def helpers(self, form_name: str) -> dict[str, str]:
        nt = self._list_nt(form_name)
        atom = f"{self.attribute} = $str"
        return {nt: f"{atom} or {atom} | {atom} or {nt}"}


@dataclass
class WebForm:
    """A form: ordered fields, an export set, optional size limit."""

    name: str
    fields: list[FormField]
    exports: list[str]
    #: Max number of filled-in fields per query (None = all).
    max_filled: int | None = None
    #: Whether submitting the empty form (a full download) is allowed.
    allow_empty: bool = False

    def compile(self) -> SourceDescription:
        """The SSDL description of this form."""
        if not self.fields:
            raise SSDLError(f"form {self.name!r} has no fields")
        attributes = [f.attribute for f in self.fields]
        if len(set(attributes)) != len(attributes):
            raise SSDLError(f"form {self.name!r} repeats an attribute")
        if len(self.fields) > 8:
            raise SSDLError(
                "forms with more than 8 fields produce too many rules; "
                "split the form"
            )
        required = [i for i, f in enumerate(self.fields) if f.required]
        limit = self.max_filled if self.max_filled is not None else len(self.fields)
        if len(required) > limit:
            raise SSDLError(
                f"form {self.name!r} requires {len(required)} fields but "
                f"max_filled={limit}"
            )
        builder = DescriptionBuilder(self.name)
        for form_field in self.fields:
            for nt, rhs in form_field.helpers(self.name).items():
                builder.helper(nt, rhs)
        rule_count = 0
        indices = range(len(self.fields))
        for size in range(1, limit + 1):
            for chosen in combinations(indices, size):
                if not set(required) <= set(chosen):
                    continue
                spelling_choices = [
                    self.fields[i].spellings(self.name) for i in chosen
                ]
                for spellings in product(*spelling_choices):
                    builder.rule(
                        self.name,
                        " and ".join(spellings),
                        attributes=self.exports if rule_count == 0 else None,
                    )
                    rule_count += 1
        if self.allow_empty:
            builder.rule(
                self.name, "true",
                attributes=self.exports if rule_count == 0 else None,
            )
            rule_count += 1
        if rule_count == 0:
            raise SSDLError(f"form {self.name!r} admits no valid submission")
        return builder.build()
