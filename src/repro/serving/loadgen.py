"""The load harness: replay a query mix against a mediator and measure.

The ROADMAP's north star is "serves heavy traffic from millions of
users"; this module is how the repository *measures* progress toward
it.  A :class:`LoadHarness` replays a list of target queries (typically
the :mod:`repro.workloads.scenarios` mixes or a synthetic
:func:`~repro.workloads.synthetic.make_queries` batch) across N client
threads and reports throughput plus p50/p95/p99 latency, reconciled
against the serving-layer counters.

Two client models, the standard pair from load-testing practice:

* **closed loop** (the default): each client thread issues its next
  request the moment the previous one finishes -- measures capacity
  (how fast can the system go when clients wait politely);
* **open loop**: requests *arrive* on a fixed schedule (``rate``
  requests/second overall) regardless of completions -- measures
  behaviour under offered load, which is what makes admission control
  visible: when arrivals outpace capacity the gate sheds instead of
  letting latency diverge.

Every request ends in exactly one bucket -- ``completed``, ``shed``
(:class:`~repro.errors.OverloadError`) or ``errors`` (any other
:class:`~repro.errors.ReproError`) -- so ``completed + shed + errors ==
requests`` always holds and the stress tests can reconcile the report
against the admission controller and plan cache exactly.  Latencies
are published to the ``serving.request_seconds`` registry histogram,
and the report's p50/p95/p99 come from the **same bucketed estimator**
(:func:`~repro.observability.metrics.quantile_from_snapshot` over the
run's own histogram snapshot), so a LoadReport and a ``/metrics``
scrape of the same run can never disagree about the tail.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import OverloadError, ReproError
from repro.observability.metrics import (
    Histogram,
    get_metrics,
    quantile_from_snapshot,
)
from repro.query import TargetQuery


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``samples``.

    Kept for exact-sample use in tests; the :class:`LoadReport`
    itself reports quantiles from its histogram snapshot (one
    estimator shared with ``/metrics``)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, round(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LoadReport:
    """What one load-harness run measured."""

    mode: str
    threads: int
    requests: int
    completed: int
    shed: int
    errors: int
    duration_seconds: float
    latencies: list[float] = field(default_factory=list, repr=False)
    #: Histogram snapshot of the same latencies (the quantile source).
    latency_snapshot: dict | None = field(default=None, repr=False)

    def _quantile_ms(self, q: float) -> float:
        if self.latency_snapshot is None:
            # Reports built by hand (tests, ad-hoc) fall back to the
            # exact nearest-rank percentile over the raw samples.
            return percentile(self.latencies, q * 100) * 1000
        return quantile_from_snapshot(self.latency_snapshot, q) * 1000

    @property
    def throughput_rps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds

    @property
    def p50_ms(self) -> float:
        return self._quantile_ms(0.50)

    @property
    def p95_ms(self) -> float:
        return self._quantile_ms(0.95)

    @property
    def p99_ms(self) -> float:
        return self._quantile_ms(0.99)

    @property
    def mean_ms(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies) * 1000

    def format(self) -> str:
        """The loadgen one-screen summary (CLI ``--loadgen`` output)."""
        return (
            f"loadgen [{self.mode}] {self.threads} threads, "
            f"{self.requests} requests in {self.duration_seconds:.3f}s: "
            f"{self.completed} ok, {self.shed} shed, {self.errors} errors, "
            f"{self.throughput_rps:.1f} req/s | latency ms "
            f"mean={self.mean_ms:.2f} p50={self.p50_ms:.2f} "
            f"p95={self.p95_ms:.2f} p99={self.p99_ms:.2f}"
        )


class LoadHarness:
    """Replays a query mix against one mediator from N client threads.

    The mediator is shared (that is the point: one plan cache, one
    admission gate, one catalog under concurrent load); queries are
    assigned round-robin from the mix so every thread exercises every
    template.
    """

    def __init__(
        self,
        mediator,
        queries: list[TargetQuery | str],
        threads: int = 4,
        mode: str = "closed",
        rate: float | None = None,
        arrivals: "list[float] | tuple[float, ...] | None" = None,
    ):
        """``mode="open"`` requires ``rate`` (overall requests/second)
        or an explicit ``arrivals`` schedule; a late thread issues
        immediately (it never skips).

        ``rate`` schedules arrival ``i`` at ``i / rate`` from the start
        of the run -- a flat curve.  ``arrivals`` instead gives each
        request index its own offset in seconds from the start
        (non-negative, non-decreasing): the hook for non-uniform load
        shapes such as the diurnal curves of
        :func:`~repro.workloads.replay.diurnal_arrivals`.  ``run``
        refuses to issue more requests than the schedule covers.
        """
        if not queries:
            raise ValueError("the query mix must not be empty")
        if threads < 1:
            raise ValueError("threads must be at least 1")
        if mode not in ("closed", "open"):
            raise ValueError(f"unknown mode {mode!r}; use 'closed' or 'open'")
        if arrivals is not None:
            if mode != "open":
                raise ValueError("an arrivals schedule requires open-loop mode")
            if rate is not None:
                raise ValueError("give either rate or arrivals, not both")
            if len(arrivals) == 0:
                raise ValueError("the arrivals schedule must not be empty")
            previous = 0.0
            for offset in arrivals:
                if offset < previous:
                    raise ValueError(
                        "arrival offsets must be non-negative and "
                        "non-decreasing"
                    )
                previous = offset
        elif mode == "open" and (rate is None or rate <= 0):
            raise ValueError("open-loop mode requires a positive rate")
        self.mediator = mediator
        self.queries = list(queries)
        self.threads = threads
        self.mode = mode
        self.rate = rate
        self.arrivals = None if arrivals is None else tuple(arrivals)

    # ------------------------------------------------------------------
    def run(self, total_requests: int) -> LoadReport:
        """Issue ``total_requests`` and collect the report."""
        if total_requests < 1:
            raise ValueError("total_requests must be at least 1")
        if self.arrivals is not None and total_requests > len(self.arrivals):
            raise ValueError(
                f"the arrivals schedule covers {len(self.arrivals)} "
                f"requests, not {total_requests}"
            )
        latencies: list[list[float]] = [[] for _ in range(self.threads)]
        shed = [0] * self.threads
        errors = [0] * self.threads
        next_index = {"value": 0}
        index_lock = threading.Lock()
        start_barrier = threading.Barrier(self.threads + 1)
        started_at: list[float] = [0.0]
        histogram = get_metrics().histogram("serving.request_seconds")
        # The run's own histogram: same boundaries as the registry one,
        # so the report's quantiles and a /metrics scrape agree.
        run_histogram = Histogram("loadgen.request_seconds",
                                  buckets=histogram.boundaries)

        def take() -> int | None:
            """Claim the next global request index (None = done)."""
            with index_lock:
                index = next_index["value"]
                if index >= total_requests:
                    return None
                next_index["value"] = index + 1
                return index

        def client(slot: int) -> None:
            start_barrier.wait()
            while True:
                index = take()
                if index is None:
                    return
                if self.mode == "open":
                    offset = (self.arrivals[index] if self.arrivals is not None
                              else index / self.rate)
                    due = started_at[0] + offset
                    delay = due - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                query = self.queries[index % len(self.queries)]
                issued = time.perf_counter()
                try:
                    self.mediator.ask(query)
                except OverloadError:
                    shed[slot] += 1
                    continue
                except ReproError:
                    errors[slot] += 1
                    continue
                elapsed = time.perf_counter() - issued
                latencies[slot].append(elapsed)
                histogram.observe(elapsed)
                run_histogram.observe(elapsed)

        workers = [
            threading.Thread(target=client, args=(slot,),
                             name=f"loadgen-{slot}", daemon=True)
            for slot in range(self.threads)
        ]
        for worker in workers:
            worker.start()
        # Stamp the epoch *before* releasing the barrier so every open-loop
        # client sees a valid schedule origin the moment it wakes.
        started_at[0] = time.perf_counter()
        start_barrier.wait()
        for worker in workers:
            worker.join()
        duration = time.perf_counter() - started_at[0]
        merged = [sample for bucket in latencies for sample in bucket]
        return LoadReport(
            mode=self.mode,
            threads=self.threads,
            requests=total_requests,
            completed=len(merged),
            shed=sum(shed),
            errors=sum(errors),
            duration_seconds=duration,
            latencies=merged,
            latency_snapshot=run_histogram.snapshot(),
        )
