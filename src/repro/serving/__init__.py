"""The serving layer: plan caching, admission control, load generation.

Everything a mediator needs to stand in front of repeated traffic:

* :mod:`repro.serving.plan_cache` -- the canonical, versioned,
  thread-safe LRU :class:`PlanCache` that amortizes plan generation
  across equivalent queries, and the skeleton-keyed
  :class:`PlanTemplates` store behind it that rebinds a planned
  query's constants (validated substitution) so constant-varying
  respellings of one query shape skip planning too;
* :mod:`repro.serving.admission` -- the bounded
  :class:`AdmissionController` gate that sheds overload with a typed
  :class:`~repro.errors.OverloadError` instead of queueing without
  bound (and never deadlocks, whatever the executor fan-out);
* :mod:`repro.serving.loadgen` -- the :class:`LoadHarness` that
  replays workload mixes open- or closed-loop and reports throughput
  and tail latency (benchmark X11 is built on it).

``Mediator(plan_cache_entries=..., max_in_flight=...)`` wires the first
two in; the trace CLI exposes all three (``--plan-cache``,
``--max-in-flight``, ``--loadgen``).
"""

from repro.serving.admission import AdmissionController
from repro.serving.loadgen import LoadHarness, LoadReport, percentile
from repro.serving.plan_cache import (
    PlanCache,
    PlanCacheStats,
    PlanTemplates,
    canonical_key,
    plan_cache_key,
    template_cache_key,
)

__all__ = [
    "AdmissionController",
    "LoadHarness",
    "LoadReport",
    "PlanCache",
    "PlanCacheStats",
    "PlanTemplates",
    "canonical_key",
    "percentile",
    "plan_cache_key",
    "template_cache_key",
]
