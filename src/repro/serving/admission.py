"""Admission control: a bounded in-flight gate that sheds, never hangs.

A serving mediator has finite capacity; past it, queueing theory is
merciless -- latency explodes and every client times out.  The classic
remedy is to bound the number of requests *in flight* and shed the
excess quickly with a typed error the client can act on (back off,
retry elsewhere), instead of letting an unbounded queue build.

:class:`AdmissionController` is that gate:

* at most ``max_in_flight`` requests hold the gate at once;
* a request that cannot enter within ``queue_timeout`` seconds is shed
  with :class:`~repro.errors.OverloadError` -- the caller *always* gets
  an answer or a shed within a bounded wait, never a hang;
* the gate is **re-entrant per thread**: a thread already admitted
  passes nested ``admit()`` calls through for free, so a request that
  recursively asks the same mediator (or an executor callback that
  re-enters) can never deadlock against its own admission slot;
* worker threads a :class:`~repro.plans.parallel.ParallelExecutor`
  fans an admitted request out on never touch the gate at all -- the
  unit of admission is the *request*, not the source call -- which is
  what keeps ``max_in_flight=1`` safe above any fan-out.

Accounting goes to both local counters (exact reconciliation in tests:
``admitted + shed`` equals every ``admit()`` outcome) and the metrics
registry: ``serving.admission.admitted`` / ``.shed`` counters, a
``serving.admission.in_flight`` gauge with high-water mark, and a
``serving.admission.queue_wait_seconds`` histogram.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import OverloadError
from repro.observability.metrics import get_metrics
from repro.observability.trace import get_tracer


class AdmissionController:
    """Bounds concurrent requests; sheds after ``queue_timeout`` seconds."""

    def __init__(self, max_in_flight: int, queue_timeout: float = 1.0,
                 metrics_prefix: str = "serving.admission"):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if queue_timeout < 0:
            raise ValueError("queue_timeout must be non-negative")
        self.max_in_flight = max_in_flight
        self.queue_timeout = queue_timeout
        self.metrics_prefix = metrics_prefix
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._in_flight = 0
        #: Requests that entered the gate / were shed at it (exact:
        #: every admit() outcome increments exactly one of the two).
        self.admitted = 0
        self.shed = 0

    @property
    def in_flight(self) -> int:
        """How many admitted requests are currently inside the gate."""
        with self._lock:
            return self._in_flight

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    # ------------------------------------------------------------------
    @contextmanager
    def admit(self) -> Iterator[None]:
        """Enter the gate (or raise :class:`OverloadError` within the
        queue timeout).  Re-entrant: a thread already inside passes."""
        if self._depth() > 0:
            self._local.depth += 1
            try:
                yield
            finally:
                self._local.depth -= 1
            return
        metrics = get_metrics()
        started = time.perf_counter()
        acquired = self._slots.acquire(timeout=self.queue_timeout)
        waited = time.perf_counter() - started
        metrics.histogram(
            f"{self.metrics_prefix}.queue_wait_seconds"
        ).observe(waited)
        if not acquired:
            with self._lock:
                self.shed += 1
            metrics.counter(f"{self.metrics_prefix}.shed").inc()
            get_tracer().event(
                "admission.shed", waited_seconds=waited,
                max_in_flight=self.max_in_flight,
            )
            raise OverloadError(
                f"admission queue full: {self.max_in_flight} requests in "
                f"flight and none finished within {self.queue_timeout:.3f}s",
                waited=waited,
            )
        with self._lock:
            self.admitted += 1
            self._in_flight += 1
            current = self._in_flight
        gauge = metrics.gauge(f"{self.metrics_prefix}.in_flight")
        gauge.set(current)
        metrics.counter(f"{self.metrics_prefix}.admitted").inc()
        self._local.depth = 1
        try:
            yield
        finally:
            self._local.depth = 0
            with self._lock:
                self._in_flight -= 1
                current = self._in_flight
            gauge.set(current)
            self._slots.release()
