"""The canonical plan cache: amortize plan generation across queries.

The paper's expensive, capability-sensitive step is plan *generation*
(Sections 5-6): GenCompact walks the rewrite space, marks the condition
tree against the source grammar and searches sub-plan combinations --
milliseconds of CPU per query, against microseconds to re-execute a
known plan.  A serving mediator sees the same logical query over and
over (dashboards, page reloads, API clients), so the highest-leverage
optimization is to plan once and replay.

Two ideas make the cache *canonical* rather than textual:

* **Canonical keys.**  Condition trees are order-sensitive by design
  (``a AND b`` != ``b AND a`` structurally), but they are *logically*
  interchangeable as target queries -- any feasible plan for one
  answers the other with the identical row set.  :func:`canonical_key`
  therefore flattens the tree (:func:`~repro.conditions.canonical
  .canonicalize`), sorts the children of every connector into a
  deterministic order and drops duplicate siblings, so every commuted /
  reassociated / sibling-duplicated variant of a condition maps to one
  cache entry.  The *plan* stored under the key was generated for the
  first variant seen; executing it is correct for all of them because
  plans are fixed per source query at execution time and the row
  semantics of AND/OR are order-free.

* **Versioned entries.**  A plan is only as good as the catalog it was
  generated against: registering a source (or mutating one) can change
  feasibility and costs.  Every entry records the catalog version it
  was planned under; a lookup with a newer version drops the entry and
  counts an ``invalidation`` -- stale plans can never be served.

The cache is a thread-safe LRU bounded by entry count (plans are tiny;
counting entries, not tuples, is the right budget).  Hits, misses,
invalidations and evictions feed both local stats and the process-wide
:class:`~repro.observability.metrics.MetricsRegistry` under
``<prefix>.hits`` / ``.misses`` / ``.invalidations`` / ``.evictions``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.conditions.canonical import canonicalize
from repro.conditions.tree import Condition
from repro.observability.metrics import get_metrics
from repro.query import TargetQuery


def canonical_key(condition: Condition) -> Hashable:
    """An order-insensitive structural key for a condition tree.

    Equivalent-by-commutation/reassociation trees (everything
    :func:`~repro.conditions.rewrite.commutative_rule` and
    :func:`~repro.conditions.rewrite.associative_rule` can reach) map
    to the same key: the tree is canonicalized (same-kind connectors
    flattened), then every connector's child keys are sorted into a
    deterministic order and deduplicated (AND/OR are idempotent).
    """
    condition = canonicalize(condition)
    return _node_key(condition)


def _node_key(node: Condition) -> Hashable:
    if not node.children:
        # Leaf or TRUE: the node's own structural identity.
        return node._key()
    child_keys = sorted(
        (_node_key(child) for child in node.children), key=repr
    )
    unique: list[Hashable] = []
    for key in child_keys:
        if not unique or key != unique[-1]:
            unique.append(key)
    if len(unique) == 1:
        return unique[0]
    kind = "and" if node.is_and else "or"
    return (kind, tuple(unique))


def plan_cache_key(query: TargetQuery) -> Hashable:
    """The cache key for a target query: source x canonical condition x
    projection.  Equivalent rewritings of the same query collide; any
    difference in source or projected attributes does not."""
    return (query.source, canonical_key(query.condition), query.attributes)


@dataclass
class PlanCacheStats:
    """Local hit/miss/invalidation/eviction counters (one cache's view;
    the registry aggregates across caches sharing a prefix)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A thread-safe LRU of planning results keyed by canonical keys.

    Values are opaque (the mediator stores
    :class:`~repro.planners.base.PlanningResult`, the wrapper also
    stores template tuples); the cache owns keys, versions, eviction and
    accounting.  A ``get`` with a catalog version newer than the
    entry's drops the entry and reports a miss -- the *invalidation*
    path that ``Mediator.add_source`` relies on.
    """

    def __init__(self, max_entries: int = 256,
                 metrics_prefix: str = "serving.plan_cache"):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.metrics_prefix = metrics_prefix
        self._entries: OrderedDict[Hashable, tuple[int, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _count(self, event: str) -> None:
        get_metrics().counter(f"{self.metrics_prefix}.{event}").inc()

    # ------------------------------------------------------------------
    def get(self, key: Hashable, version: int = 0) -> Any | None:
        """The cached value for ``key`` at ``version``, or ``None``.

        An entry stored under an older catalog version is removed and
        counted as an invalidation (plus the miss the caller sees).
        """
        invalidated = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] != version:
                del self._entries[key]
                self.stats.invalidations += 1
                invalidated = True
                entry = None
            if entry is None:
                self.stats.misses += 1
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        if invalidated:
            self._count("invalidations")
        if entry is None:
            self._count("misses")
            return None
        self._count("hits")
        return entry[1]

    def put(self, key: Hashable, value: Any, version: int = 0) -> None:
        """Store ``value`` under ``key`` at ``version`` (LRU-evicting)."""
        evictions = 0
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (version, value)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evictions += 1
        for _ in range(evictions):
            self._count("evictions")

    def invalidate(self) -> int:
        """Drop every entry; returns how many were dropped.

        Bulk invalidation (catalog reloaded, cache poisoned in a test)
        counts each dropped entry, same as the lazy per-get path.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
        for _ in range(dropped):
            self._count("invalidations")
        return dropped
